"""Ablation benches for the design choices called out in DESIGN.md.

1. METG efficiency threshold: §4 argues 50% over "values above 90% [that]
   can misrepresent" and over empty-task throughput (METG(0%)).
2. STF double-buffering (``nb_fields``): in-place semantics over-serialize.
3. Work stealing: helps under imbalance, costs at tiny granularity.
4. Barrier: the bulk-sync/p2p gap grows with node count.
"""

import pytest

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.metg import SimRunner, compute_workload, metg
from repro.runtimes import DataflowExecutor
from repro.sim import ARIES, IDEAL, MachineSpec, get_system, simulate


class TestMETGThreshold:
    """METG(x) sensitivity: the threshold choice matters."""

    @pytest.fixture(scope="class")
    def runner(self):
        return SimRunner("mpi_p2p", MachineSpec(nodes=1, cores_per_node=4))

    def test_threshold_sweep(self, benchmark, runner):
        wl = compute_workload(runner.worker_width, steps=20)

        def sweep():
            return {
                t: metg(runner, wl, target_efficiency=t).metg_seconds
                for t in (0.1, 0.5, 0.9)
            }

        vals = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert vals[0.1] < vals[0.5] < vals[0.9]
        # §4: high thresholds blow up the requirement disproportionately —
        # 90% demands far more than 1.8x the 50% granularity.
        assert vals[0.9] / vals[0.5] > 3

    def test_metg0_rewards_empty_tasks(self, runner):
        """Tasks-per-second limit studies use trivially parallel (empty)
        tasks; §4/§5.5 argue this understates the granularity real
        dependence patterns need.  Compare the empty-task near-0%%
        granularity against METG(50%%) of the stencil."""
        from repro.core import DependenceType

        trivial = compute_workload(runner.worker_width, steps=20,
                                   dependence=DependenceType.TRIVIAL)
        stencil = compute_workload(runner.worker_width, steps=20)
        empty_task_floor = metg(runner, trivial,
                                target_efficiency=0.01).metg_seconds
        useful = metg(runner, stencil, target_efficiency=0.5).metg_seconds
        assert useful / empty_task_floor > 5


class TestNbFieldsAblation:
    """nb_fields=1 forces within-timestep serialization in the STF runtime;
    nb_fields=2 (the official shims' double buffering) pipelines across
    timesteps.

    Wall-clock cannot show this on a GIL-bound single-core host, so the
    ablation measures the *structure*: the critical-path length of the DAG
    the scheduler infers.  Double buffering keeps the critical path at
    ~timesteps; in-place semantics chain columns within each timestep."""

    STEPS, WIDTH = 20, 6

    def _critical_path(self, nb_fields: int) -> int:
        from repro.runtimes.dataflow import STFScheduler

        g = TaskGraph(
            timesteps=self.STEPS,
            max_width=self.WIDTH,
            dependence=DependenceType.STENCIL_1D,
        )
        sched = STFScheduler(workers=1)
        # Discovery only: no workers are started, so the inferred edge
        # structure survives in _successors for inspection.
        order = []
        for t, i in g.points():
            reads = (
                [(0, j, (t - 1) % nb_fields) for j in g.dependency_points(t, i)]
                if t
                else []
            )
            sched.submit((0, t, i), reads, (0, i, t % nb_fields), lambda: None)
            order.append((0, t, i))
        preds = {k: set() for k in order}
        for src, succs in sched._successors.items():
            for dst in succs:
                preds[dst].add(src)
        depth = {}
        for k in order:  # submission order is topological
            depth[k] = 1 + max((depth[p] for p in preds[k]), default=0)
        return max(depth.values())

    def test_in_place_semantics_serialize(self, benchmark):
        cp2 = benchmark.pedantic(
            self._critical_path, args=(2,), rounds=1, iterations=1
        )
        cp1 = self._critical_path(1)
        # double-buffered: critical path ~ timesteps (+1 for the WAW chain)
        assert cp2 <= self.STEPS + 2
        # in-place: columns chain within timesteps -> much longer path
        assert cp1 > cp2 * 2, f"in-place cp={cp1} vs double-buffered cp={cp2}"

    def test_executions_identical_results(self):
        """Both configurations compute the same (validated) graphs."""
        g = TaskGraph(timesteps=8, max_width=4,
                      dependence=DependenceType.STENCIL_1D,
                      kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND,
                                    iterations=4))
        r1 = DataflowExecutor(workers=2, nb_fields=1).run([g])
        r2 = DataflowExecutor(workers=2, nb_fields=2).run([g])
        assert r1.total_tasks == r2.total_tasks == 32


class TestWorkStealingAblation:
    def test_stealing_tradeoff(self, benchmark):
        """Stealing wins under imbalance at large granularity and does not
        win at small granularity (paper §5.7)."""
        machine = MachineSpec(nodes=1, cores_per_node=8)
        chapel = get_system("chapel")
        distrib = get_system("chapel_distrib")

        def run(model, iters):
            gs = [
                TaskGraph(
                    timesteps=15,
                    max_width=8,
                    dependence=DependenceType.NEAREST,
                    radix=5,
                    kernel=Kernel(
                        kernel_type=KernelType.LOAD_IMBALANCE,
                        iterations=iters,
                        imbalance=1.0,
                    ),
                    graph_index=k,
                )
                for k in range(4)
            ]
            return simulate(gs, machine, model, IDEAL).elapsed_seconds

        big = benchmark.pedantic(
            lambda: (run(chapel, 100000), run(distrib, 100000)),
            rounds=1, iterations=1,
        )
        assert big[1] < big[0]  # stealing wins at large granularity
        small = (run(chapel, 10), run(distrib, 10))
        assert small[1] >= small[0] * 0.95  # and does not win at tiny tasks


class TestBarrierAblation:
    def test_barrier_cost_grows_with_nodes(self, benchmark):
        def gap(nodes):
            machine = MachineSpec(nodes=nodes, cores_per_node=4)
            g = TaskGraph(
                timesteps=20,
                max_width=4 * nodes,
                dependence=DependenceType.STENCIL_1D,
                kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=100),
            )
            bulk = simulate([g], machine, get_system("mpi_bulk_sync"), ARIES)
            p2p = simulate([g], machine, get_system("mpi_p2p"), ARIES)
            return bulk.elapsed_seconds - p2p.elapsed_seconds

        gaps = benchmark.pedantic(
            lambda: [gap(n) for n in (2, 16, 64)], rounds=1, iterations=1
        )
        assert gaps[0] < gaps[-1]
