"""Figure 12: efficiency vs task granularity under load imbalance
(nearest, 5 deps/task, 4 graphs, 1 node; per-task duration scaled by a
deterministic uniform [0,1) multiplier).

Paper claims checked (§5.7):
  * the phase structure makes MPI suffer the most — imbalance puts an
    upper bound on its efficiency at large granularity;
  * asynchronous systems (4 concurrent graphs) partially mitigate;
  * on-node work stealing (chapel_distrib) gains the most at large
    granularity but loses to the default scheduler at very small
    granularity.
"""

from repro.analysis import figure12

SYSTEMS = ("mpi_bulk_sync", "mpi_p2p", "charmpp", "chapel", "chapel_distrib")


def test_fig12_load_imbalance(benchmark, cfg, save_figure):
    cfg12 = cfg.with_(
        systems=SYSTEMS,
        problem_sizes=tuple(8**e for e in range(9)),
        cores_per_node=8,
    )
    fig = benchmark.pedantic(figure12, args=(cfg12,), rounds=1, iterations=1)
    save_figure(fig)

    caps = {s.label: max(s.y) for s in fig.series}

    # Bulk-sync MPI is efficiency-capped well below 100%: E[max of n
    # uniforms] ~ 1 vs mean 1/2 puts the cap near 50-60%.
    assert caps["mpi_bulk_sync"] < 0.75

    # Async systems mitigate: higher cap than bulk-sync MPI.
    assert caps["charmpp"] > caps["mpi_bulk_sync"]

    # Work stealing gains further at large granularity...
    assert caps["chapel_distrib"] > caps["chapel"]

    # ...but the default scheduler wins at very small granularity
    # ("Chapel's default scheduler outperforms Chapel distrib at very
    # small task granularities").
    chapel = fig.get("chapel")
    distrib = fig.get("chapel_distrib")
    small_idx = 1  # second-smallest granularity of the sweep
    assert chapel.y[small_idx] >= distrib.y[small_idx] * 0.95
