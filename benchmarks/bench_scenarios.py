"""Application-scenario suite: efficiency of contrasting runtime models on
every named application shape (paper §1's motivation, quantified).

Not a paper figure — a synthesis bench exercising the full scenario
catalog.  Asserts the cross-cutting conclusions: embarrassing parallelism
is easy for everyone; communication-bearing shapes separate low-overhead
phased systems from async systems from controller-bound ones; the
persistent-imbalance (AMR) shape rewards work stealing.
"""

import pathlib

from repro.core import SCENARIOS
from repro.sim import ARIES, MachineSpec, get_system, simulate

RESULTS = pathlib.Path(__file__).parent / "results"
MACHINE = MachineSpec(nodes=4, cores_per_node=4)
SYSTEMS = ("mpi_p2p", "charmpp", "chapel_distrib", "spark")


def _run_suite():
    rows = {}
    for name in sorted(SCENARIOS):
        rows[name] = {}
        for system in SYSTEMS:
            model = get_system(system).with_(runtime_cores_per_node=0)
            graphs = SCENARIOS[name](width=16, steps=20)
            r = simulate(graphs, MACHINE, model, ARIES)
            rows[name][system] = r.flops_per_second / MACHINE.peak_flops
    return rows


def test_scenario_suite(benchmark):
    rows = benchmark.pedantic(_run_suite, rounds=1, iterations=1)

    RESULTS.mkdir(exist_ok=True)
    lines = [f"{'scenario':>24s} " + " ".join(f"{s:>15s}" for s in SYSTEMS)]
    for name, cells in rows.items():
        lines.append(
            f"{name:>24s} " + " ".join(f"{cells[s]:>14.1%} " for s in SYSTEMS)
        )
    (RESULTS / "scenario_suite.txt").write_text("\n".join(lines) + "\n")

    # Trivial parallelism: every HPC-class system near peak.
    ep = rows["embarrassingly_parallel"]
    assert ep["mpi_p2p"] > 0.95 and ep["charmpp"] > 0.9

    # Controller-bound Spark is only viable on the trivial shape (and even
    # there needs far larger tasks than this suite uses).
    for name, cells in rows.items():
        assert cells["spark"] < 0.1, name

    # Communication-bearing shapes run below the trivial shape for
    # everything (communication + dependencies cost something).
    for system in ("mpi_p2p", "charmpp"):
        assert rows["halo_exchange"][system] < ep[system]

    # At these (small) task sizes the stealing scheduler's overhead costs
    # more than balance buys — the §5.7 small-granularity caveat.
    assert rows["halo_exchange"]["chapel_distrib"] < rows["halo_exchange"]["mpi_p2p"]


def test_amr_rewards_stealing_at_scale():
    """With realistically large tasks, the AMR shape (persistent
    imbalance) rewards the stealing scheduler over its non-stealing twin —
    overhead no longer masks the balance benefit."""
    graphs = SCENARIOS["amr_load_imbalance"](
        width=16, steps=20, iterations=300_000
    )
    effs = {}
    for system in ("chapel", "chapel_distrib"):
        model = get_system(system).with_(runtime_cores_per_node=0)
        r = simulate(graphs, MACHINE, model, ARIES)
        effs[system] = r.flops_per_second / MACHINE.peak_flops
    assert effs["chapel_distrib"] > effs["chapel"] * 1.1
