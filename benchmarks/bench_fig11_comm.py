"""Figure 11: communication hiding (spread pattern, 5 deps/task, 4 graphs,
multi-node) at payload sizes from 16 B to 64 KiB.

Paper claims checked (§5.6): asynchronous systems execute smaller task
granularities at higher efficiency than the MPI implementations by
overlapping communication with computation; the cost of communication grows
with the payload."""

import pytest

from repro.analysis import figure11

SYSTEMS = ("mpi_bulk_sync", "mpi_p2p", "charmpp", "realm")
PAYLOADS = (16, 256, 4096, 65536)


def _gran_at_eff(series, target=0.5):
    return min(
        (x for x, y in zip(series.x, series.y) if y >= target),
        default=float("inf"),
    )


@pytest.mark.parametrize("payload", PAYLOADS)
def test_fig11_payload(benchmark, cfg, save_figure, payload):
    nodes = max(n for n in cfg.node_counts if n > 1)
    fig = benchmark.pedantic(
        figure11,
        kwargs={
            "output_bytes": payload,
            "cfg": cfg.with_(systems=SYSTEMS),
            "nodes": nodes,
        },
        rounds=1,
        iterations=1,
    )
    fig = type(fig)(  # disambiguate the four payloads in results/
        figure_id=f"fig11_{payload}B", title=fig.title, xlabel=fig.xlabel,
        ylabel=fig.ylabel, series=fig.series, notes=fig.notes,
    )
    save_figure(fig)

    # Asynchronous Charm++/Realm hit 50% at smaller granularity than the
    # bulk-synchronous MPI variant.
    g_bulk = _gran_at_eff(fig.get("mpi_bulk_sync"))
    g_charm = _gran_at_eff(fig.get("charmpp"))
    g_realm = _gran_at_eff(fig.get("realm"))
    assert min(g_charm, g_realm) < g_bulk


def test_larger_payloads_cost_more(cfg):
    nodes = max(n for n in cfg.node_counts if n > 1)
    small = figure11(output_bytes=16, cfg=cfg.with_(systems=("mpi_p2p",)), nodes=nodes)
    large = figure11(output_bytes=65536, cfg=cfg.with_(systems=("mpi_p2p",)), nodes=nodes)
    assert _gran_at_eff(large.get("mpi_p2p")) > _gran_at_eff(small.get("mpi_p2p"))
