"""Figure 10: METG vs dependencies per task (nearest pattern, 1 node).

Paper claims checked (§5.5): METG grows with the dependency count for every
system; the 0->3 ratio is large for systems doing runtime work inline (12x
for MPI); "choosing a representative dependence pattern is important"."""

from repro.analysis import figure10

SYSTEMS = ("mpi_p2p", "charmpp", "realm", "starpu", "regent")
RADICES = (0, 1, 3, 5, 9)


def test_fig10_metg_vs_dependencies(benchmark, cfg, save_figure):
    # a node wide enough that radix 9 is not clipped by the column count
    cfg10 = cfg.with_(systems=SYSTEMS, cores_per_node=max(cfg.cores_per_node, 12))
    fig = benchmark.pedantic(
        figure10,
        args=(cfg10,),
        kwargs={"radices": RADICES},
        rounds=1,
        iterations=1,
    )
    save_figure(fig)

    for s in fig.series:
        # METG non-decreasing in the number of dependencies
        assert all(b >= a * 0.95 for a, b in zip(s.y, s.y[1:])), s.label

    mpi = fig.get("mpi_p2p")
    ratio_0_to_3 = mpi.y[RADICES.index(3)] / mpi.y[RADICES.index(0)]
    # paper measures 12x for MPI; demand the same order of effect
    assert ratio_0_to_3 > 4, f"MPI 0->3 dep METG ratio only {ratio_0_to_3:.1f}x"

    # MPI's 0-dependency METG is the global minimum of the figure
    all_min = min(min(s.y) for s in fig.series)
    assert mpi.y[0] == all_min
