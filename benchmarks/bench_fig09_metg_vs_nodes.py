"""Figure 9: METG(50%) vs node count for four dependence configurations —
the paper's headline scalability study (§5.3-5.4).

Claims checked:
  * overheads across systems span >= 4-5 orders of magnitude;
  * the best systems' METG rises roughly an order of magnitude from 1 node
    to the largest node count;
  * Spark's centralized controller makes its METG rise immediately;
  * PaRSEC shard (no dynamic checks) scales better than DTD;
  * MPI's advantage shrinks as pattern complexity grows, and reverses
    under task parallelism (4 graphs) where async systems overlap.
"""

import math

import pytest

from repro.analysis import figure9

# A representative subset keeps the default-scale harness fast; paper scale
# (REPRO_BENCH_SCALE=paper) still uses this subset — pass cfg.systems=None
# through FigureConfig to sweep all 15.
SUBSET = (
    "mpi_p2p", "mpi_bulk_sync", "charmpp", "realm", "regent",
    "parsec_dtd", "parsec_shard", "spark",
)


@pytest.fixture(scope="module")
def fig9a(cfg):
    return figure9("a", cfg.with_(systems=SUBSET))


def test_fig9a_stencil(benchmark, cfg, save_figure):
    fig = benchmark.pedantic(
        figure9, args=("a", cfg.with_(systems=SUBSET)), rounds=1, iterations=1
    )
    save_figure(fig)

    mpi = fig.get("mpi_p2p")
    # ~order-of-magnitude METG growth for the best system at scale (§5.4)
    growth = mpi.y[-1] / mpi.y[0]
    assert growth > 3, f"MPI METG grew only {growth:.1f}x"

    # overhead spectrum: several orders of magnitude at 1 node even at
    # reduced machine scale (the full 5-orders claim is checked against
    # MPI's 0-dependency METG in test_five_orders_of_magnitude below)
    at_one_node = {
        s.label: s.y[0] for s in fig.series if s.x and s.x[0] == 1.0
    }
    span = max(at_one_node.values()) / min(at_one_node.values())
    assert span > 3e3, f"overhead span only {span:.1e}"

    # Spark rises immediately with node count (§5.4)
    spark = fig.get("spark")
    if len(spark.y) >= 2:
        assert spark.y[1] > 1.5 * spark.y[0]

    # PaRSEC shard beats DTD at the largest node count (§5.4)
    dtd, shard = fig.get("parsec_dtd"), fig.get("parsec_shard")
    assert shard.y[-1] < dtd.y[-1]


def test_fig9b_nearest(benchmark, cfg, save_figure):
    fig = benchmark.pedantic(
        figure9, args=("b", cfg.with_(systems=("mpi_p2p", "charmpp", "realm"))),
        rounds=1, iterations=1,
    )
    save_figure(fig)
    # 5 dependencies cost more than the 3-dependency stencil for MPI
    fig_a = figure9("a", cfg.with_(systems=("mpi_p2p",)))
    assert fig.get("mpi_p2p").y[0] > fig_a.get("mpi_p2p").y[0]


def test_fig9c_spread(benchmark, cfg, save_figure):
    fig = benchmark.pedantic(
        figure9, args=("c", cfg.with_(systems=("mpi_p2p", "charmpp", "realm"))),
        rounds=1, iterations=1,
    )
    save_figure(fig)
    # spread reaches across the machine: METG at scale exceeds the
    # neighbourly nearest pattern's
    fig_b = figure9("b", cfg.with_(systems=("mpi_p2p",)))
    assert fig.get("mpi_p2p").y[-1] >= fig_b.get("mpi_p2p").y[-1] * 0.9


def test_fig9d_task_parallelism_shrinks_mpi_gap(benchmark, cfg, save_figure):
    """§5.3: "the gap between MPI and other systems shrinks as complexity
    grows, and even reverses as task parallelism is added"."""
    systems = ("mpi_p2p", "charmpp", "realm")
    fig_d = benchmark.pedantic(
        figure9, args=("d", cfg.with_(systems=systems)), rounds=1, iterations=1
    )
    save_figure(fig_d)
    fig_b = figure9("b", cfg.with_(systems=systems))

    def gap(fig, other):
        mpi, o = fig.get("mpi_p2p"), fig.get(other)
        return o.y[-1] / mpi.y[-1]  # >1: MPI ahead; <1: MPI behind

    # with 4 graphs the async systems close on (or pass) MPI at scale
    assert gap(fig_d, "charmpp") < gap(fig_b, "charmpp")


def test_five_orders_of_magnitude(benchmark):
    """§1: "the overheads of the systems we examine vary by more than five
    orders of magnitude" — from MPI's 390 ns best case (trivial
    dependencies, 1 node) to the data-analytics systems' 100+ ms."""
    from repro.core import DependenceType
    from repro.metg import SimRunner, compute_workload, metg
    from repro.sim import CORI_HASWELL

    def spans():
        mpi = SimRunner("mpi_p2p", CORI_HASWELL)
        best = metg(
            mpi,
            compute_workload(mpi.worker_width, steps=30,
                             dependence=DependenceType.NEAREST, radix=0),
        ).metg_seconds
        spark = SimRunner("spark", CORI_HASWELL)
        worst = metg(
            spark, compute_workload(spark.worker_width, steps=10)
        ).metg_seconds
        return best, worst

    best, worst = benchmark.pedantic(spans, rounds=1, iterations=1)
    assert worst / best > 1e5, f"span only {worst / best:.1e}"


def test_100us_bound_claim(fig9a):
    """§1/§7: "100 us is a reasonable bound for most applications running
    at scale with current technologies" — at the largest node count, even
    the most efficient system's METG approaches/exceeds tens of us, and no
    system beats ~1 us at scale."""
    largest = {}
    for s in fig9a.series:
        if s.x:
            largest[s.label] = s.y[-1]  # seconds
    best = min(largest.values())
    assert best * 1e6 > 1.0, "no system should beat ~1 us at scale"


def test_metg_values_monotone_overall(fig9a):
    for s in fig9a.series:
        if len(s.y) >= 2:
            assert s.y[-1] >= s.y[0] * 0.8, f"{s.label} METG should not improve at scale"
        for v in s.y:
            assert math.isfinite(v) and v > 0
