"""Real-executor throughput: the local, laptop-scale counterpart of
Figures 6-7.

Measures each runtime paradigm's task throughput and granularity on this
host with the actual Python kernels.  Absolute numbers are Python-rate
bound; the comparison across paradigms (inline serial cheapest per task,
discovery/controller overhead visible) is the point."""

import pytest

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.runtimes import available_runtimes, make_executor

RUNTIMES = [r for r in available_runtimes() if r != "processes"]


def _graph():
    return TaskGraph(
        timesteps=30,
        max_width=4,
        dependence=DependenceType.STENCIL_1D,
        kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=8),
        output_bytes_per_task=16,
    )


@pytest.mark.parametrize("runtime", RUNTIMES)
def test_executor_throughput(benchmark, runtime):
    ex = make_executor(runtime, workers=2)
    g = _graph()
    result = benchmark(lambda: ex.run([g]))
    assert result.total_tasks == g.total_tasks()


def test_serial_has_lowest_per_task_overhead():
    """The inline serial executor is the Python-level overhead floor —
    the analogue of MPI's position in Figure 7."""
    import time

    g = _graph()

    def best_time(runtime):
        ex = make_executor(runtime, workers=2)
        times = []
        for _ in range(5):
            start = time.perf_counter()
            ex.run([g])
            times.append(time.perf_counter() - start)
        return min(times)

    serial = best_time("serial")
    # schedulers with discovery/dispatch machinery pay more per task
    assert serial <= best_time("centralized") * 1.1
    assert serial <= best_time("dataflow") * 1.1
