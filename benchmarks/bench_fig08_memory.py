"""Figure 8: B/s vs problem size with the memory-bound kernel (stencil,
1 node).

Paper claims checked: throughput saturates at the measured node bandwidth
(79 GB/s on Cori); unlike the compute case, "not all cores are required to
saturate memory bandwidth, reducing the impact of reserving cores" — most
systems hit 100% of peak."""

from repro.analysis import figure8


def test_fig8_memory_throughput(benchmark, cfg, save_figure):
    systems = ("mpi_p2p", "mpi_bulk_sync", "charmpp", "realm", "starpu")
    fig = benchmark.pedantic(
        figure8, args=(cfg,), kwargs={"systems": systems},
        rounds=1, iterations=1,
    )
    save_figure(fig)
    peak = cfg.machine(1).peak_bytes_per_second

    for s in fig.series:
        # monotone rise to (near) the bandwidth ceiling, never above it
        assert s.y == sorted(s.y), s.label
        assert s.y[-1] <= peak * 1.001, s.label

    # MPI saturates the full measured bandwidth.
    assert fig.get("mpi_p2p").y[-1] > 0.9 * peak

    # Core-reserving systems still reach (nearly) full bandwidth: the hit
    # is smaller than in the compute-bound case (paper §5.2).
    assert fig.get("realm").y[-1] > 0.85 * peak
