"""Figures 4-5: MPI weak and strong scaling (stencil).

Paper: large per-task sizes weak-scale flat and strong-scale ideally; small
sizes compress against the overhead floor; the floor's shape follows the
METG curve (§4)."""

from repro.analysis import figure4, figure5
from repro.metg import strong_scaling, strong_scaling_limit_nodes
from repro.sim import get_system


def test_fig4_weak_scaling(benchmark, cfg, save_figure):
    fig = benchmark.pedantic(
        figure4, args=(cfg,), kwargs={"sizes": (8, 512, 32768)},
        rounds=1, iterations=1,
    )
    save_figure(fig)
    large = fig.get("iters=32768")
    small = fig.get("iters=8")
    # flat at the top...
    assert max(large.y) / min(large.y) < 1.3
    # ...rising at the bottom (overhead floor)
    assert small.y[-1] > small.y[0] * 1.5
    # lines compress: the sweep's dynamic range shrinks with node count
    spread_first = large.y[0] / small.y[0]
    spread_last = large.y[-1] / small.y[-1]
    assert spread_last < spread_first


def test_fig5_strong_scaling(benchmark, cfg, save_figure):
    fig = benchmark.pedantic(figure5, args=(cfg,), rounds=1, iterations=1)
    save_figure(fig)
    big = fig.series[-1]
    # ideally-sloped at the top: near-linear speedup across the sweep
    speedup = big.y[0] / big.y[-1]
    nodes_ratio = big.x[-1] / big.x[0]
    assert speedup > 0.5 * nodes_ratio
    # the smallest problem stops scaling
    small = fig.series[0]
    assert small.y[-1] > 0.5 * small.y[0]


def test_strong_scaling_stops_at_metg(cfg):
    """§4: 'METG corresponds to the point at which strong scaling can be
    expected to stop'."""
    model = get_system("mpi_p2p")
    workers = model.worker_cores_per_node(cfg.cores_per_node)
    total = workers * cfg.steps * 2000
    pts = strong_scaling(
        model, list(cfg.node_counts), total,
        machine=cfg.machine(), network=cfg.network, steps=cfg.steps,
    )
    limit = strong_scaling_limit_nodes(pts)
    assert 0 < limit <= max(cfg.node_counts)
    # beyond the limit, granularity is below the 1-node METG scale
    beyond = [p for p in pts if p.nodes > limit]
    if beyond:
        assert beyond[0].efficiency < 0.5
