"""Figures 6-7: all systems' FLOP/s vs problem size and efficiency vs task
granularity (stencil, 1 node).

Paper claims checked: most systems (nearly) reach peak at large sizes;
systems reserving cores take a minor peak hit; the granularity needed for
50% efficiency spans orders of magnitude across systems."""

from repro.analysis import figure6_7


def _gran_at_eff(series, target):
    return min(
        (x for x, y in zip(series.x, series.y) if y >= target),
        default=float("inf"),
    )


def test_fig6_fig7_all_systems(benchmark, cfg, save_figure):
    figs = benchmark.pedantic(figure6_7, args=(cfg,), rounds=1, iterations=1)
    flops, eff = figs["flops"], figs["efficiency"]
    save_figure(flops)
    save_figure(eff)
    peak = cfg.machine(1).peak_flops

    # Every system's FLOP/s rises monotonically with problem size.
    for s in flops.series:
        assert s.y == sorted(s.y), s.label

    # HPC systems essentially reach peak; high-overhead data-analytics
    # systems may not within this sweep (the paper's 6-hour Spark problem).
    assert flops.get("mpi_p2p").y[-1] > 0.95 * peak
    assert flops.get("charmpp").y[-1] > 0.85 * peak

    # Figure 7 headline: 50%-efficiency granularity spans >=3 orders of
    # magnitude between MPI and Spark even at reduced scale.
    g_mpi = _gran_at_eff(eff.get("mpi_p2p"), 0.5)
    g_spark = _gran_at_eff(eff.get("spark"), 0.5)
    if g_spark != float("inf"):
        assert g_spark / g_mpi > 1e3

    # Ordering: MPI reaches 50% at the smallest granularity of all systems.
    others = [
        _gran_at_eff(s, 0.5) for s in eff.series if s.label != "mpi_p2p"
    ]
    assert all(g_mpi <= g for g in others)
