"""Per-task harness overhead A/B: the fast path on vs off (PR 10).

The paper's METG floor on every system is set by per-task *runtime*
overhead, and in this reproduction the hottest non-kernel code used to be
Python interval math (dependence queries per task) and per-input byte
materialization (validation).  :mod:`repro.core.fastpath` replaces both
with precompiled tables and memoized NumPy comparisons, and the process
executors add batched round dispatch.  This bench measures the empty-kernel
per-task overhead and the METG(50%) floor with the fast path on and off,
records the A/B into ``results/hotpath.json``, and asserts the PR's
headline claim: **at least 2x lower empty-kernel per-task overhead** on the
threads and shm_processes executors.

Run as a pytest module (full A/B, writes the results record) or as a
script::

    python benchmarks/bench_hotpath.py --smoke [--baseline results/hotpath.json]

The ``--smoke`` mode is the CI perf leg: a quick overhead measurement that
fails if the fast-path per-task overhead regressed more than 25% against
the committed baseline record.
"""

import argparse
import json
import pathlib
import sys
import time

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.core import fastpath
from repro.metg import RealRunner, compute_workload, metg
from repro.runtimes import make_executor

RESULTS = pathlib.Path(__file__).parent / "results"

#: Executors named by the PR's acceptance criterion.
RUNTIMES = ("threads", "shm_processes")

#: CI regression tolerance for --smoke (fractional).
SMOKE_TOLERANCE = 0.25


def _graph(steps: int, width: int) -> TaskGraph:
    return TaskGraph(
        timesteps=steps,
        max_width=width,
        dependence=DependenceType.STENCIL_1D,
        kernel=Kernel(kernel_type=KernelType.EMPTY),
        output_bytes_per_task=16,
    )


def measure_overhead(
    runtime: str, *, steps: int = 200, width: int = 8, repeats: int = 5
) -> float:
    """Best-of-``repeats`` empty-kernel wall time per task (seconds).

    With an EMPTY kernel every microsecond is harness: dependence queries,
    validation, buffer routing, dispatch.  The executor persists across
    repeats so pools and caches are warm (the regime METG measures).
    Width 8 gives the batch paths enough ready peers per timestep to
    amortize their per-batch fixed costs while staying in the fine-grained
    regime the METG floor cares about.
    """
    ex = make_executor(runtime, workers=2)
    try:
        g = _graph(steps, width)
        ntasks = g.total_tasks()
        ex.run([g])  # warmup: fork pools, compile tables, prime caches
        best = min(
            _timed(ex, g) for _ in range(repeats)
        )
        return best / ntasks
    finally:
        getattr(ex, "close", lambda: None)()


def _timed(ex, g) -> float:
    start = time.perf_counter()
    ex.run([g])
    return time.perf_counter() - start


def _ab(fn, *args, **kwargs):
    """Run ``fn`` with the fast path on and off; returns (on, off)."""
    prev = fastpath.set_enabled(True)
    try:
        on = fn(*args, **kwargs)
        fastpath.set_enabled(False)
        off = fn(*args, **kwargs)
    finally:
        fastpath.set_enabled(prev)
    return on, off


def measure_metg_floor(runtime: str, *, steps: int = 50) -> float:
    """METG(50%) in microseconds for the standard compute workload.

    Measured at one worker: the efficiency reference is ``per-core peak x
    worker count``, so a multi-worker pool on a host with fewer physical
    cores caps below the 50% target and the crossing search diverges.
    One worker keeps the floor comparable across hosts (and matches the
    ``metg_smoke`` convention in ``results/shm_dataplane.json``).
    """
    ex = make_executor(runtime, workers=1)
    try:
        runner = RealRunner(ex)
        res = metg(runner, compute_workload(runner.worker_width, steps=steps))
        return res.metg_microseconds
    finally:
        getattr(ex, "close", lambda: None)()


def collect(*, smoke: bool = False) -> dict:
    """The full A/B record (overhead always; METG floors unless smoke)."""
    record = {"runtimes": {}, "smoke": smoke}
    steps, repeats = (60, 3) if smoke else (200, 5)
    for runtime in RUNTIMES:
        on, off = _ab(measure_overhead, runtime, steps=steps, repeats=repeats)
        entry = {
            "overhead_us_fastpath_on": on * 1e6,
            "overhead_us_fastpath_off": off * 1e6,
            "overhead_speedup": off / on,
        }
        if not smoke:
            m_on, m_off = _ab(measure_metg_floor, runtime)
            entry["metg_us_fastpath_on"] = m_on
            entry["metg_us_fastpath_off"] = m_off
            entry["metg_speedup"] = m_off / m_on
        record["runtimes"][runtime] = entry
    return record


def test_hotpath_overhead_halved(benchmark):
    """PR 10 acceptance: >= 2x lower empty-kernel per-task overhead with
    the fast path on, on threads and shm_processes; record the A/B."""
    record = benchmark.pedantic(collect, rounds=1, iterations=1)
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "hotpath.json").write_text(json.dumps(record, indent=2) + "\n")
    lines = []
    for runtime, e in record["runtimes"].items():
        lines.append(
            f"{runtime}: {e['overhead_us_fastpath_off']:.1f} us/task -> "
            f"{e['overhead_us_fastpath_on']:.1f} us/task "
            f"({e['overhead_speedup']:.2f}x); METG(50%) "
            f"{e['metg_us_fastpath_off']:.1f} -> "
            f"{e['metg_us_fastpath_on']:.1f} us ({e['metg_speedup']:.2f}x)"
        )
    (RESULTS / "hotpath.txt").write_text("\n".join(lines) + "\n")
    for runtime, e in record["runtimes"].items():
        assert e["overhead_speedup"] >= 2.0, (
            f"{runtime}: fast path gives only {e['overhead_speedup']:.2f}x "
            f"lower per-task overhead (need >= 2x)"
        )
        # METG floors must not get worse; the drop is the headline but the
        # crossing search is noisier than the raw overhead ratio.
        assert e["metg_speedup"] > 0.9


def _smoke_main(baseline_path: str | None) -> int:
    record = collect(smoke=True)
    print(json.dumps(record, indent=2))
    failures = []
    for runtime, e in record["runtimes"].items():
        if e["overhead_speedup"] < 1.2:
            failures.append(
                f"{runtime}: fast path speedup {e['overhead_speedup']:.2f}x "
                "< 1.2x smoke floor"
            )
    if baseline_path:
        base = json.loads(pathlib.Path(baseline_path).read_text())
        for runtime, e in record["runtimes"].items():
            ref = base["runtimes"].get(runtime)
            if ref is None:
                continue
            measured = e["overhead_us_fastpath_on"]
            committed = ref["overhead_us_fastpath_on"]
            if measured > committed * (1.0 + SMOKE_TOLERANCE):
                failures.append(
                    f"{runtime}: fast-path overhead {measured:.1f} us/task "
                    f"regressed > {SMOKE_TOLERANCE:.0%} vs committed "
                    f"baseline {committed:.1f} us/task"
                )
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("hotpath smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="quick CI mode: overhead A/B only")
    parser.add_argument("--baseline", default=None,
                        help="committed hotpath.json to regress against")
    opts = parser.parse_args()
    if not opts.smoke:
        parser.error("run under pytest for the full A/B, or pass --smoke")
    raise SystemExit(_smoke_main(opts.baseline))
