"""Serve A/B: warm daemon submission vs cold CLI invocation.

Measures end-to-end latency for the same small ``processes`` cell down
two paths:

* **cold** — a fresh ``python -m repro.cli`` subprocess per run: every
  run pays interpreter start, module imports, and forking a new worker
  pool before any task executes (the pre-daemon workflow).
* **warm** — submissions to a live :class:`repro.serve.Server` over its
  UDS socket: the daemon is already imported and the warm pool hands the
  job an existing fork-pool executor.

Each warm submission varies ``iterations`` so the result cache never
answers — the measurement isolates the warm *executor* path, not the
cache.  Calibration is pinned via ``TASKBENCH_PEAK_FLOPS`` before either
side runs so neither pays it inside a timed window.

Results land in ``benchmarks/results/serve_warm.json`` (plus a text
summary).  The >= 2x acceptance bound applies on hosts with >= 4 cores;
single-core CI boxes record honest numbers without the bound (fork and
scheduling jitter dominate there).
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import subprocess
import sys
import tempfile
import time

from repro.metg.runners import PEAK_FLOPS_ENV, peak_flops_per_core
from repro.serve import ServeClient, ServeConfig, Server

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

RUNS = 5
WORKERS = 2
BASE_ITERATIONS = 2_000  # a few ms of kernel work: startup dominates


def _cell(iterations: int) -> dict:
    return {
        "runtime": "processes", "workers": WORKERS, "pattern": "trivial",
        "width": 2, "steps": 2, "payload_bytes": 16, "metric": "run",
        "iterations": iterations,
    }


def _cold_cli_seconds(iterations: int) -> float:
    cmd = [
        sys.executable, "-m", "repro.cli",
        "-runtime", "processes", "-workers", str(WORKERS),
        "-type", "trivial", "-width", "2", "-steps", "2",
        "-output", "16", "-iter", str(iterations),
    ]
    start = time.perf_counter()
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT
    )
    elapsed = time.perf_counter() - start
    assert proc.returncode == 0, proc.stdout.decode()
    return elapsed


def test_serve_warm_vs_cold_cli():
    host_cores = os.cpu_count() or 1
    previous = os.environ.get(PEAK_FLOPS_ENV)
    os.environ[PEAK_FLOPS_ENV] = repr(peak_flops_per_core())
    sock_dir = tempfile.mkdtemp(prefix="tb-bench-serve-")
    server = Server(ServeConfig(
        address=os.path.join(sock_dir, "serve.sock"), max_jobs=1,
    ))
    server.start()
    try:
        with ServeClient(server.config.address) as client:
            # One untimed warm-up run forks the pool's workers.
            warmup = client.run(_cell(BASE_ITERATIONS), timeout=60)
            assert warmup["status"] == "ok"
            warm = []
            for run in range(RUNS):
                start = time.perf_counter()
                record = client.run(
                    _cell(BASE_ITERATIONS + 1 + run), timeout=60
                )
                warm.append(time.perf_counter() - start)
                assert record["status"] == "ok"
                assert record["served"]["warm"], "warm pool missed"
            stats = client.stats()
        cold = [
            _cold_cli_seconds(BASE_ITERATIONS + 100 + run)
            for run in range(RUNS)
        ]
    finally:
        server.close()
        if previous is None:
            os.environ.pop(PEAK_FLOPS_ENV, None)
        else:
            os.environ[PEAK_FLOPS_ENV] = previous

    warm_median = statistics.median(warm)
    cold_median = statistics.median(cold)
    ratio = cold_median / warm_median if warm_median > 0 else float("inf")

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema_version": 1,
        "scenario": {
            "runtime": "processes",
            "workers": WORKERS,
            "pattern": "trivial",
            "width": 2,
            "steps": 2,
            "iterations_per_task": BASE_ITERATIONS,
            "runs": RUNS,
            "host_cores": host_cores,
        },
        "cold_cli_seconds": cold,
        "warm_submit_seconds": warm,
        "cold_median_seconds": cold_median,
        "warm_median_seconds": warm_median,
        "cold_over_warm": ratio,
        "warm_pool": stats["warm_pool"],
        "speedup_bound_applies": host_cores >= 4,
    }
    (RESULTS_DIR / "serve_warm.json").write_text(
        json.dumps(payload, indent=1) + "\n"
    )

    lines = [
        f"serve warm-vs-cold: processes x{WORKERS}, trivial 2x2, "
        f"{RUNS} runs, host cores {host_cores}",
        f"  cold CLI     median {cold_median * 1e3:8.1f} ms",
        f"  warm submit  median {warm_median * 1e3:8.1f} ms",
        f"  cold/warm  {ratio:6.2f}x"
        + ("" if host_cores >= 4 else "  (host < 4 cores: bound not applied)"),
    ]
    (RESULTS_DIR / "serve_warm.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # Acceptance: on a multi-core host a warm submission must beat a cold
    # CLI invocation by >= 2x — the daemon exists to amortize interpreter
    # start + imports + worker forks.  Single-core hosts record the
    # honest measurement without the bound.
    if host_cores >= 4:
        assert ratio >= 2.0, payload
