"""Span-tracer overhead A/B on the threads executor.

Runs the same stencil graph through ``make_executor("threads")`` twice per
round — once with tracing disabled (the default: every instrumentation
site is one module-attribute read of ``trace.enabled`` and nothing else),
once under :func:`repro.trace.recorder.capture` — and reports the in-run
slowdown for two kernels:

* **empty**: zero per-task compute, so the measurement is pure scheduling
  overhead — the regime METG probes, and the worst case for tracing since
  every span is a clock read + tuple append against almost no work;
* **compute_bound** (the smoke config): each task carries real kernel
  work, which amortizes the per-span cost.  This is the regime ``--trace``
  is meant for, and the acceptance bound below holds the slowdown under
  25%.

The disabled side IS the shipped configuration: untraced runs execute the
same code as before this instrumentation existed, modulo one ``if``
per site, so the ``base_seconds`` column doubles as the regression check
that tracing-off runs are indistinguishable from the seed.  Rounds
interleave the two sides so host drift lands on both sides of the ratio;
the minimum across rounds is compared (timing floors are the stable
statistic on shared hosts).  Trace collection and export happen after the
executor's clock stops, in both the CLI and here, so they are
deliberately outside the measurement.

Results land in ``benchmarks/results/trace_overhead.json`` (plus a
rendered text table); DESIGN.md §11 and the README cite them.
"""

from __future__ import annotations

import json
import pathlib

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.runtimes import make_executor
from repro.trace import recorder as trace

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

STEPS = 30
WIDTH = 16
PAYLOAD_BYTES = 1024
REPEATS = 7
#: The acceptance bound on the compute-bound smoke config.
MAX_SMOKE_OVERHEAD = 0.25

KERNELS = {
    "empty": Kernel(kernel_type=KernelType.EMPTY),
    "compute_bound": Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=500),
}
SMOKE_KERNEL = "compute_bound"


def _graphs(kernel_name: str) -> list:
    return [
        TaskGraph(
            timesteps=STEPS,
            max_width=WIDTH,
            dependence=DependenceType.STENCIL_1D,
            output_bytes_per_task=PAYLOAD_BYTES,
            kernel=KERNELS[kernel_name],
        )
    ]


def _run_plain(kernel_name: str) -> float:
    assert not trace.enabled
    ex = make_executor("threads", workers=2)
    try:
        return ex.run(_graphs(kernel_name)).elapsed_seconds
    finally:
        if hasattr(ex, "close"):
            ex.close()


def _run_traced(kernel_name: str) -> tuple:
    graphs = _graphs(kernel_name)
    ex = make_executor("threads", workers=2)
    try:
        with trace.capture() as rec:
            elapsed = ex.run(graphs).elapsed_seconds
            collected = rec.collect()
    finally:
        if hasattr(ex, "close"):
            ex.close()
    # The instrumentation really ran: one kernel span per task, no drops.
    assert len(collected.kernel_spans()) == sum(
        g.total_tasks() for g in graphs
    ), kernel_name
    assert collected.dropped == 0
    return elapsed, collected


def test_trace_overhead():
    rows = {}
    for kernel_name in KERNELS:
        _run_plain(kernel_name)  # warm-up round
        _run_traced(kernel_name)
        base, traced = [], []
        collected = None
        for _ in range(REPEATS):
            base.append(_run_plain(kernel_name))
            elapsed, collected = _run_traced(kernel_name)
            traced.append(elapsed)
        ratio = min(traced) / min(base)
        spans, instants, counters, dropped = trace.trace_stats(collected)
        rows[kernel_name] = {
            "base_seconds": min(base),
            "traced_seconds": min(traced),
            "overhead_ratio": ratio,
            "spans": spans,
            "instants": instants,
            "counter_samples": counters,
            "dropped": dropped,
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema_version": 1,
        "scenario": {
            "runtime": "threads",
            "workers": 2,
            "dependence": "stencil_1d",
            "timesteps": STEPS,
            "max_width": WIDTH,
            "output_bytes_per_task": PAYLOAD_BYTES,
            "repeats": REPEATS,
            "kernels": {
                "empty": {"iterations": 0},
                "compute_bound": {
                    "iterations": KERNELS["compute_bound"].iterations
                },
            },
            "smoke_kernel": SMOKE_KERNEL,
            "max_smoke_overhead": MAX_SMOKE_OVERHEAD,
        },
        "rows": rows,
    }
    (RESULTS_DIR / "trace_overhead.json").write_text(
        json.dumps(payload, indent=1) + "\n"
    )

    lines = [
        f"{'kernel':>14}  {'untraced':>9}  {'traced':>9}  {'overhead':>8}",
    ]
    for kernel_name, row in rows.items():
        lines.append(
            f"{kernel_name:>14}"
            f"  {row['base_seconds'] * 1e3:>7.1f}ms"
            f"  {row['traced_seconds'] * 1e3:>7.1f}ms"
            f"  {(row['overhead_ratio'] - 1) * 100:>+7.1f}%"
        )
    lines.append("")
    lines.append(
        "untraced runs are the shipped default (one flag read per site); "
        "trace timings are diagnostics and never feed METG numbers."
    )
    (RESULTS_DIR / "trace_overhead.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # Acceptance: on the compute-bound smoke config tracing costs less
    # than 25% wall time (empty-kernel overhead is reported, not gated —
    # it is the known worst case and the reason --trace excludes -metg).
    smoke = rows[SMOKE_KERNEL]["overhead_ratio"]
    assert smoke - 1.0 < MAX_SMOKE_OVERHEAD, rows
