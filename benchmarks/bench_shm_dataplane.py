"""Data-plane A/B: pickled payloads vs shared-memory handles.

Runs the same 16-column stencil graph through the two process executors —
``processes`` (every payload pickled across the pool each timestep) and
``shm_processes`` (payloads written in place into pooled shared-memory
slots, only :class:`~repro.core.bufpool.PayloadRef` handles cross the
pipe) — over a payload-size sweep.

Two metrics:

* **granularity** per (backend, size): end-to-end wall time per task
  (empty kernel, so this is all runtime overhead);
* **data-plane overhead** per backend: the marginal per-task cost of
  payload bytes, i.e. the slope of granularity vs payload size.  Dispatch
  cost (fork-pool round trips, chunk assembly) is identical machinery in
  both backends and lands in the intercept, so the slope isolates exactly
  what the data plane changes — which is what makes the comparison
  meaningful on hosts where dispatch dominates at small payloads.

The slope is fitted *within each timing round* (every cell is measured
once per round, so one round's points share the same host conditions) and
the median across rounds is reported; that pairing keeps round-level host
drift out of the estimate.  The fit covers sizes up to 16 KiB — past the
pipe buffer the pickle path's cost turns super-linear, which would flatter
the shared-memory side.  The 64 KiB cell is still measured and reported
raw.

Results land in ``benchmarks/results/shm_dataplane.json`` (plus a rendered
text table) so EXPERIMENTS.md can cite the measured ratios.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

from repro.core import DependenceType, TaskGraph
from repro.runtimes import make_executor

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

STEPS = 30
WIDTH = 16
PAYLOAD_BYTES = (16, 1024, 4096, 16384, 65536)
FIT_BYTES = (16, 1024, 4096, 16384)  # linear-regime sizes (<= pipe buffer)
BACKENDS = ("processes", "shm_processes")
REPEATS = 9


def _graph(nbytes: int) -> TaskGraph:
    return TaskGraph(
        timesteps=STEPS,
        max_width=WIDTH,
        dependence=DependenceType.STENCIL_1D,
        output_bytes_per_task=nbytes,
    )


def _sweep() -> tuple:
    """Measure every (backend, payload size) cell; returns
    ``(per_cell, per_backend)`` summaries.

    Repeats are interleaved across cells — every cell is timed once per
    round — so slow phases of a shared host spread over all cells instead
    of biasing whichever cell they landed on.  One executor per cell lives
    for the whole sweep: its fork pool, worker caches, and slab pool stay
    warm, which is the steady state the data plane is designed for.
    """
    cells = [(b, n) for b in BACKENDS for n in PAYLOAD_BYTES]
    executors = {cell: make_executor(cell[0], workers=1) for cell in cells}
    graphs = {cell: _graph(cell[1]) for cell in cells}
    try:
        times: dict = {cell: [] for cell in cells}
        stats: dict = {}
        for cell in cells:  # warm-up round
            executors[cell].run([graphs[cell]])
        for _ in range(REPEATS):
            for cell in cells:
                start = time.perf_counter()
                result = executors[cell].run([graphs[cell]])
                times[cell].append(time.perf_counter() - start)
                stats[cell] = result.data_plane
    finally:
        for ex in executors.values():
            ex.close()

    tasks = STEPS * WIDTH
    per_cell: dict = {}
    per_backend: dict = {}
    for backend in BACKENDS:
        per_cell[backend] = {}
        for nbytes in PAYLOAD_BYTES:
            s = stats[backend, nbytes]
            per_cell[backend][nbytes] = {
                "task_granularity_seconds": min(times[backend, nbytes]) / tasks,
                "bytes_copied": s.bytes_copied if s else 0,
                "bytes_shared": s.bytes_shared if s else 0,
                "pool_hit_rate": s.pool_hit_rate if s else 0.0,
            }
        # One granularity-vs-bytes slope per round (paired points), median
        # across rounds.
        round_slopes = []
        for r in range(REPEATS):
            xs = list(FIT_BYTES)
            ys = [times[backend, n][r] / tasks for n in FIT_BYTES]
            slope, _intercept = statistics.linear_regression(xs, ys)
            round_slopes.append(slope)
        slope = max(statistics.median(round_slopes), 0.0)
        per_backend[backend] = {
            "seconds_per_payload_byte": slope,
            "overhead_at_4096_seconds": slope * 4096,
        }
    return per_cell, per_backend


def test_shm_dataplane_ab():
    per_cell, per_backend = _sweep()

    rows = []
    for nbytes in PAYLOAD_BYTES:
        entry = {"payload_bytes": nbytes}
        for backend in BACKENDS:
            entry[backend] = dict(per_cell[backend][nbytes])
        gran_a = entry["processes"]["task_granularity_seconds"]
        gran_b = entry["shm_processes"]["task_granularity_seconds"]
        entry["granularity_ratio"] = gran_a / gran_b
        rows.append(entry)

    slope_a = per_backend["processes"]["seconds_per_payload_byte"]
    slope_b = per_backend["shm_processes"]["seconds_per_payload_byte"]
    overhead_ratio = slope_a / slope_b if slope_b > 0 else float("inf")

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "shm_dataplane.json"
    # The METG smoke test (tests/test_metg_smoke.py) records its A/B into
    # the same file; preserve sections other than ours.
    payload = {}
    if out_path.exists():
        try:
            payload = json.loads(out_path.read_text())
        except ValueError:
            payload = {}
    payload = {
        **payload,
        "schema_version": 1,
        "scenario": {
            "dependence": "stencil_1d",
            "timesteps": STEPS,
            "max_width": WIDTH,
            "workers": 1,
            "kernel": "empty",
            "repeats": REPEATS,
            "fit_payload_bytes": list(FIT_BYTES),
        },
        "data_plane_overhead": {
            **per_backend,
            "overhead_ratio": None
            if overhead_ratio == float("inf")
            else overhead_ratio,
        },
        "rows": rows,
    }
    out_path.write_text(json.dumps(payload, indent=1) + "\n")

    lines = [
        f"{'payload':>8}  {'processes':>11}  {'shm':>11}  {'gran ratio':>10}",
    ]
    for entry in rows:
        lines.append(
            f"{entry['payload_bytes']:>7}B"
            f"  {entry['processes']['task_granularity_seconds'] * 1e6:>9.1f}us"
            f"  {entry['shm_processes']['task_granularity_seconds'] * 1e6:>9.1f}us"
            f"  {entry['granularity_ratio']:>9.2f}x"
        )
    lines.append("")
    lines.append(
        "data-plane overhead at 4 KiB (slope fit over "
        f"{FIT_BYTES[0]}B-{FIT_BYTES[-1]}B): "
        f"processes {slope_a * 4096 * 1e6:.2f}us/task, "
        f"shm {slope_b * 4096 * 1e6:.2f}us/task, "
        f"ratio {overhead_ratio:.1f}x"
    )
    (RESULTS_DIR / "shm_dataplane.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # Acceptance: at 4 KiB payloads the shared-memory data plane moves
    # bytes with >= 3x lower per-task overhead than the pickle path.
    assert overhead_ratio >= 3.0, (per_backend, rows)
    # And the handle path never regresses end-to-end granularity by more
    # than measurement noise at any size.
    for entry in rows:
        assert entry["granularity_ratio"] > 0.85, entry
