"""Communication A/B: real sockets vs the shared-memory data plane.

Runs the same communication-bearing graphs through `shm_processes` (the
zero-copy shared-memory plane: payloads never leave the host's memory,
only handles cross the pipes) and the two distributed executors
(`cluster_uds`, `cluster_tcp`: every cross-rank payload is serialized and
moved through a kernel socket buffer), on two dependence patterns —
``stencil_1d`` (2 edges/task cross-rank at the block boundary) and
``nearest`` radix 3 (denser neighbour exchange).

The kernel is empty, so end-to-end wall time per task is all runtime +
communication overhead.  The reported **per-task comms overhead** is the
paired difference between the 4 KiB-payload and 16 B-payload granularity
of the same backend in the same timing round: dispatch machinery is
identical at both sizes, so the difference isolates what moving the bytes
costs.  That is the honest comparison — the cluster executors also pay a
fixed per-message cost that the shm plane does not, which the raw
granularity columns still show.

Results land in ``benchmarks/results/cluster_comm.json`` (plus a rendered
text table) so EXPERIMENTS.md can cite the measured ratios.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

from repro.core import DependenceType, TaskGraph
from repro.runtimes import make_executor

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

STEPS = 30
WIDTH = 8
WORKERS = 2
SMALL_BYTES = 16
LARGE_BYTES = 4096
PATTERNS = {
    "stencil_1d": dict(dependence=DependenceType.STENCIL_1D),
    "nearest": dict(dependence=DependenceType.NEAREST, radix=3),
}
BACKENDS = ("shm_processes", "cluster_uds", "cluster_tcp")
REPEATS = 9


def _graph(pattern: str, nbytes: int) -> TaskGraph:
    return TaskGraph(
        timesteps=STEPS,
        max_width=WIDTH,
        output_bytes_per_task=nbytes,
        **PATTERNS[pattern],
    )


def _sweep() -> dict:
    """Time every (backend, pattern, payload size) cell.

    Repeats are interleaved across cells — every cell is timed once per
    round — so slow phases of a shared host spread over all cells.  One
    executor per (backend, pattern) lives for the whole sweep: fork pools
    and rank meshes stay warm, the steady state both data planes are
    designed for.
    """
    cells = [
        (b, p, n)
        for b in BACKENDS
        for p in PATTERNS
        for n in (SMALL_BYTES, LARGE_BYTES)
    ]
    executors = {
        (b, p): make_executor(b, workers=WORKERS)
        for b in BACKENDS
        for p in PATTERNS
    }
    graphs = {cell: _graph(cell[1], cell[2]) for cell in cells}
    try:
        times: dict = {cell: [] for cell in cells}
        wire: dict = {}
        for cell in cells:  # warm-up round
            executors[cell[0], cell[1]].run([graphs[cell]])
        for _ in range(REPEATS):
            for cell in cells:
                start = time.perf_counter()
                result = executors[cell[0], cell[1]].run([graphs[cell]])
                times[cell].append(time.perf_counter() - start)
                wire[cell] = result.data_plane.wire if result.data_plane else None
    finally:
        for ex in executors.values():
            ex.close()

    tasks = STEPS * WIDTH
    out: dict = {}
    for backend in BACKENDS:
        out[backend] = {}
        for pattern in PATTERNS:
            small = times[backend, pattern, SMALL_BYTES]
            large = times[backend, pattern, LARGE_BYTES]
            # Paired per-round payload cost; median across rounds.
            per_task_comm = statistics.median(
                (lg - sm) / tasks for sm, lg in zip(small, large)
            )
            w = wire.get((backend, pattern, LARGE_BYTES))
            out[backend][pattern] = {
                "granularity_16B_seconds": min(small) / tasks,
                "granularity_4096B_seconds": min(large) / tasks,
                "comm_overhead_per_task_seconds": max(per_task_comm, 0.0),
                "wire_bytes_sent": w.bytes_sent if w else 0,
                "wire_messages_sent": w.messages_sent if w else 0,
            }
    return out


def test_cluster_comm_ab():
    per_cell = _sweep()

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema_version": 1,
        "scenario": {
            "timesteps": STEPS,
            "max_width": WIDTH,
            "workers": WORKERS,
            "kernel": "empty",
            "payload_bytes": [SMALL_BYTES, LARGE_BYTES],
            "patterns": sorted(PATTERNS),
            "repeats": REPEATS,
        },
        "backends": per_cell,
    }
    (RESULTS_DIR / "cluster_comm.json").write_text(
        json.dumps(payload, indent=1) + "\n"
    )

    lines = [
        f"{'backend':>14} {'pattern':>11} {'16B gran':>10} {'4KiB gran':>10}"
        f" {'comm/task':>10} {'wire msgs':>9}",
    ]
    for backend in BACKENDS:
        for pattern in PATTERNS:
            c = per_cell[backend][pattern]
            lines.append(
                f"{backend:>14} {pattern:>11}"
                f" {c['granularity_16B_seconds'] * 1e6:>8.1f}us"
                f" {c['granularity_4096B_seconds'] * 1e6:>8.1f}us"
                f" {c['comm_overhead_per_task_seconds'] * 1e6:>8.2f}us"
                f" {c['wire_messages_sent']:>9}"
            )
    (RESULTS_DIR / "cluster_comm.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    for backend in BACKENDS:
        for pattern in PATTERNS:
            c = per_cell[backend][pattern]
            # Sanity, not a performance claim: every cell actually ran at
            # both sizes and the cluster cells actually used the wire.
            assert c["granularity_4096B_seconds"] > 0
            if backend.startswith("cluster_"):
                assert c["wire_messages_sent"] > 0
                assert c["wire_bytes_sent"] > c["wire_messages_sent"] * 4096 / 2
