"""Extension study: persistent load imbalance (paper §5.7 future work).

"We leave analysis of persistent load imbalance to future work."  This
bench runs that analysis on the simulator substrate: the same Figure 12
setup with the per-task multiplier drawn per *column* instead of per
(timestep, column).

Findings (asserted): asynchrony alone mitigates non-persistent imbalance
(per-core work averages over timesteps) but not persistent imbalance (the
slow columns bottleneck their cores forever); work stealing / migration
recovers the persistent case.
"""

import pathlib

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.sim import IDEAL, MachineSpec, get_system, simulate

RESULTS = pathlib.Path(__file__).parent / "results"
MACHINE = MachineSpec(nodes=1, cores_per_node=8)


def _graphs(persistent: bool):
    kernel = Kernel(
        kernel_type=KernelType.LOAD_IMBALANCE,
        iterations=100_000,
        imbalance=1.0,
        persistent=persistent,
    )
    return [
        TaskGraph(
            timesteps=30,
            max_width=8,
            dependence=DependenceType.NEAREST,
            radix=5,
            kernel=kernel,
            graph_index=k,
        )
        for k in range(4)
    ]


def _efficiency(system: str, persistent: bool) -> float:
    model = get_system(system).with_(runtime_cores_per_node=0)
    r = simulate(_graphs(persistent), MACHINE, model, IDEAL)
    return r.flops_per_second / MACHINE.peak_flops


def test_persistent_imbalance_study(benchmark):
    def study():
        rows = {}
        for system in ("mpi_bulk_sync", "charmpp", "chapel_distrib"):
            rows[system] = (
                _efficiency(system, persistent=False),
                _efficiency(system, persistent=True),
            )
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)

    RESULTS.mkdir(exist_ok=True)
    lines = [
        "persistent vs non-persistent imbalance "
        "(nearest r5, 4 graphs, 1 node x 8 cores, large tasks)",
        f"{'system':>16s} {'uniform':>9s} {'persistent':>11s}",
    ]
    for system, (u, p) in rows.items():
        lines.append(f"{system:>16s} {u:>8.1%} {p:>10.1%}")
    (RESULTS / "ext_persistent_imbalance.txt").write_text("\n".join(lines) + "\n")

    # Asynchrony mitigates uniform imbalance but loses that edge when the
    # imbalance is persistent...
    assert rows["charmpp"][0] > rows["charmpp"][1]
    # ...while work stealing retains most of its advantage.
    assert rows["chapel_distrib"][1] > rows["charmpp"][1]
    # The bulk-synchronous model is bad in both regimes.
    assert rows["mpi_bulk_sync"][0] <= rows["charmpp"][0] * 1.05
