"""Shared configuration for the benchmark harness.

Every module regenerates one table/figure of the paper (see DESIGN.md §4).
Benchmarks run at a reduced default scale so the whole harness finishes in
minutes on a laptop; set ``REPRO_BENCH_SCALE=paper`` for full paper scale
(32-core nodes, 256-node sweeps — substantially slower).

Rendered tables are written to ``benchmarks/results/`` so runs leave an
inspectable record (and EXPERIMENTS.md can be cross-checked against them).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis import (
    FigureConfig,
    FigureData,
    render_efficiency_summary,
    render_series_table,
    save_figure_json,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_config() -> FigureConfig:
    """The scale used by all figure benchmarks."""
    if os.environ.get("REPRO_BENCH_SCALE") == "paper":
        return FigureConfig.paper()
    return FigureConfig(
        cores_per_node=4,
        steps=12,
        node_counts=(1, 4, 16, 64),
        problem_sizes=tuple(8**e for e in range(8)),
    )


@pytest.fixture(scope="session")
def cfg() -> FigureConfig:
    return bench_config()


@pytest.fixture(scope="session")
def save_figure():
    """Persist a rendered figure table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(fig: FigureData) -> None:
        path = RESULTS_DIR / f"{fig.figure_id}.txt"
        text = render_series_table(fig)
        if fig.ylabel == "efficiency":
            text += "\n\n" + render_efficiency_summary(fig)
        path.write_text(text + "\n")
        save_figure_json(fig, RESULTS_DIR / f"{fig.figure_id}.json")

    return save
