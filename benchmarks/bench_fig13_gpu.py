"""Figure 13: GPU FLOP/s vs normalized problem size (MPI vs MPI+CUDA w1/w4
on a Piz Daint-like node).

Paper claims checked (§5.8): the GPU requires more work to achieve high
performance; copy overhead dominates at small task granularities where the
CPU wins; w4 achieves higher FLOP/s than w1 but drops more rapidly at small
problem sizes."""

from repro.analysis import figure13
from repro.sim import PIZ_DAINT, crossover_problem_size


def test_fig13_gpu_offload(benchmark, save_figure):
    fig = benchmark.pedantic(figure13, rounds=1, iterations=1)
    save_figure(fig)

    cpu = fig.get("mpi_cpu")
    w1 = fig.get("mpi_cuda_w1")
    w4 = fig.get("mpi_cuda_w4")

    # CPU wins at the smallest problem sizes.
    assert cpu.y[0] > w1.y[0] > w4.y[0]

    # GPU wins at the largest; w4 above w1 asymptotically.
    assert w4.y[-1] > w1.y[-1] > cpu.y[-1]
    assert w4.y[-1] > 0.95 * PIZ_DAINT.gpu_flops

    # w4 "drops more rapidly": at small sizes it is below w1.
    assert w4.y[0] < w1.y[0]

    # a finite CPU/GPU crossover exists inside the sweep
    x = crossover_problem_size()
    assert cpu.x[0] < x < cpu.x[-1]

    # measured peaks match the paper's reported rates
    assert abs(PIZ_DAINT.gpu_flops - 4.759e12) / 4.759e12 < 0.01
    assert abs(PIZ_DAINT.cpu_flops - 5.726e11) / 5.726e11 < 0.01
