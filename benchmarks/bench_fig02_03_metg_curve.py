"""Figures 2-3: the METG construction (MPI, stencil, 1 node).

Paper: FLOP/s falls off as problem size shrinks (Fig 2); replotted as
efficiency vs task granularity the curve crosses 50% at METG(50%) = 4.6 us
for MPI (Fig 3)."""

from repro.analysis import figure2_3
from repro.metg import SimRunner, compute_workload, metg
from repro.sim import CORI_HASWELL


def test_fig2_fig3_curves(benchmark, cfg, save_figure):
    figs = benchmark.pedantic(figure2_3, args=(cfg,), rounds=1, iterations=1)
    flops, eff = figs["flops"], figs["efficiency"]
    save_figure(flops)
    save_figure(eff)

    s = flops.get("mpi_p2p")
    # Fig 2 shape: monotone rise to a plateau near machine peak.
    assert s.y == sorted(s.y)
    assert s.y[-1] > 0.9 * cfg.machine(1).peak_flops
    # Fig 3 shape: efficiency spans ~0 to ~1 across the sweep.
    e = eff.get("mpi_p2p")
    assert min(e.y) < 0.1 and max(e.y) > 0.9


def test_metg_matches_paper_value(benchmark):
    """Paper §4: MPI p2p METG(50%) = 4.6 us (stencil, 1 Cori node)."""

    def run():
        runner = SimRunner("mpi_p2p", CORI_HASWELL)
        return metg(runner, compute_workload(runner.worker_width, steps=50))

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 3.0 < res.metg_microseconds < 7.0
