"""Suite-scheduler A/B: serialized vs parallel cell execution.

Runs the same 4-runtime x 3-pattern smoke suite twice through
:func:`repro.suite.run_suite` — once with ``jobs=1`` (every cell
serialized, the pre-scheduler behaviour) and once with ``jobs=4`` — into
fresh stores, and records the wall-clock ratio.

The four runtimes are same-address-space executors at ``workers=1`` so
every cell costs exactly one core: on a >= 4-core host the scheduler's
admission keeps four cells in flight and the suite finishes ~4x sooner;
on smaller hosts the core budget itself serializes the cells and the
ratio honestly degrades toward 1x (admission control working as designed,
not a benchmark failure).  The >= 2x acceptance bound therefore only
applies when the host has >= 4 cores.

Calibration is pinned once, before either run, so neither side pays the
kernel calibration inside its timed window and both sides measure
efficiency against the same reference.

Results land in ``benchmarks/results/suite_parallel.json`` (plus a
rendered text summary) so EXPERIMENTS.md can cite the measured ratio.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

from repro.core.kernels import FLOPS_PER_ITERATION
from repro.metg.runners import PEAK_FLOPS_ENV, peak_flops_per_core
from repro.suite import SuiteSpec, SuiteStore, run_suite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

RUNTIMES = ("serial", "threads", "futures", "asyncio")
PATTERNS = ("trivial", "stencil_1d", "tree")
WIDTH = 2
STEPS = 3
JOBS_AB = (1, 4)
TARGET_CELL_SECONDS = 0.25


def _smoke_spec(iterations: int) -> SuiteSpec:
    return SuiteSpec(
        name="parallel-ab",
        runtimes=RUNTIMES,
        patterns=PATTERNS,
        widths=(WIDTH,),
        steps=(STEPS,),
        payload_bytes=(16,),
        metrics=("run",),
        workers=1,
        iterations=iterations,
    )


def _timed_run(spec: SuiteSpec, jobs: int, core_budget: int) -> tuple:
    """One suite run into a fresh store; returns (wall_seconds, summary)."""
    with tempfile.TemporaryDirectory(prefix="taskbench-ab-") as root:
        store = SuiteStore(root)
        start = time.perf_counter()
        summary = run_suite(spec, store, jobs=jobs, core_budget=core_budget)
        wall = time.perf_counter() - start
        assert summary.failed == 0, summary
        assert summary.ran == summary.total
    return wall, summary


def test_suite_parallel_ab():
    host_cores = os.cpu_count() or 1
    previous = os.environ.get(PEAK_FLOPS_ENV)
    rate = peak_flops_per_core()
    os.environ[PEAK_FLOPS_ENV] = repr(rate)
    try:
        tasks = STEPS * WIDTH
        iterations = max(
            1, int(TARGET_CELL_SECONDS * rate / (FLOPS_PER_ITERATION * tasks))
        )
        spec = _smoke_spec(iterations)
        cells = len(spec.cells())
        # Give jobs=4 a four-core budget even on smaller hosts so the
        # recorded ratio reflects the scheduler, with the host's real core
        # count reported alongside for interpretation.
        budget = max(4, host_cores)
        walls = {}
        for jobs in JOBS_AB:
            walls[jobs], _ = _timed_run(spec, jobs, budget)
    finally:
        if previous is None:
            os.environ.pop(PEAK_FLOPS_ENV, None)
        else:
            os.environ[PEAK_FLOPS_ENV] = previous

    speedup = walls[1] / walls[4] if walls[4] > 0 else float("inf")

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema_version": 1,
        "scenario": {
            "runtimes": list(RUNTIMES),
            "patterns": list(PATTERNS),
            "width": WIDTH,
            "steps": STEPS,
            "workers": 1,
            "kernel": "compute_bound",
            "iterations_per_task": iterations,
            "cells": cells,
            "target_cell_seconds": TARGET_CELL_SECONDS,
            "core_budget": max(4, host_cores),
            "host_cores": host_cores,
        },
        "wall_seconds": {
            "jobs_1": walls[1],
            "jobs_4": walls[4],
        },
        "speedup": speedup,
        "speedup_bound_applies": host_cores >= 4,
    }
    (RESULTS_DIR / "suite_parallel.json").write_text(
        json.dumps(payload, indent=1) + "\n"
    )

    lines = [
        f"suite parallel A/B: {cells} cells "
        f"({len(RUNTIMES)} runtimes x {len(PATTERNS)} patterns), "
        f"~{TARGET_CELL_SECONDS:.2f}s/cell, host cores {host_cores}",
        f"  jobs=1  {walls[1]:7.2f}s",
        f"  jobs=4  {walls[4]:7.2f}s",
        f"  speedup {speedup:6.2f}x"
        + ("" if host_cores >= 4 else "  (host < 4 cores: bound not applied)"),
    ]
    (RESULTS_DIR / "suite_parallel.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # Acceptance: on a multi-core host, four concurrent one-core cells
    # must finish the smoke suite at least twice as fast as serialized
    # execution.  Smaller hosts record the measurement without the bound —
    # there the core budget itself (correctly) serializes the cells.
    if host_cores >= 4:
        assert speedup >= 2.0, payload
