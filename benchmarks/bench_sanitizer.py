"""Lockset-sanitizer overhead A/B on the threads executor.

Runs the same stencil graph through ``make_executor("threads")`` twice per
round — once plain, once under :func:`repro.check.sanitized_run` (every
lock wrapped, every publish/acquire checked against per-thread locksets
and vector clocks) — and reports the in-run slowdown for two kernels:

* **empty**: zero per-task compute, so the measurement is pure scheduling
  overhead.  This is exactly the regime METG sweeps probe, and the
  sanitizer roughly doubles it — the quantitative version of the rule
  that sanitized timings must never feed METG numbers.
* **compute_bound** (the smoke config): each task carries real kernel
  work, which amortizes the constant per-lock-operation cost.  This is
  the regime ``--sanitize`` is meant for — functional race hunting on a
  workload shaped like a real run — and the acceptance bound below holds
  the slowdown under 25%.

Rounds interleave the plain and sanitized runs so host drift lands on
both sides of the ratio; the minimum across rounds is compared (timing
floors are the stable statistic on shared hosts).  Only the executor's
own ``elapsed_seconds`` is timed — trace post-processing (the
happens-before audit) happens after the clock stops in both the CLI and
here, so it is deliberately outside the measurement.

Results land in ``benchmarks/results/sanitizer_overhead.json`` (plus a
rendered text table); DESIGN.md §10 and the README cite them.
"""

from __future__ import annotations

import json
import pathlib

from repro.check import sanitized_run
from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.runtimes import make_executor

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

STEPS = 30
WIDTH = 16
PAYLOAD_BYTES = 1024
REPEATS = 7
#: The acceptance bound on the compute-bound smoke config.
MAX_SMOKE_OVERHEAD = 0.25

KERNELS = {
    "empty": Kernel(kernel_type=KernelType.EMPTY),
    "compute_bound": Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=500),
}
SMOKE_KERNEL = "compute_bound"


def _graphs(kernel_name: str) -> list:
    return [
        TaskGraph(
            timesteps=STEPS,
            max_width=WIDTH,
            dependence=DependenceType.STENCIL_1D,
            output_bytes_per_task=PAYLOAD_BYTES,
            kernel=KERNELS[kernel_name],
        )
    ]


def _run_plain(kernel_name: str) -> float:
    ex = make_executor("threads", workers=2)
    try:
        return ex.run(_graphs(kernel_name)).elapsed_seconds
    finally:
        if hasattr(ex, "close"):
            ex.close()


def _run_sanitized(kernel_name: str) -> tuple:
    result = sanitized_run(
        lambda: make_executor("threads", workers=2), _graphs(kernel_name)
    )
    assert result.ok, [d.render() for d in result.diagnostics]
    return result.run.elapsed_seconds, result.stats


def test_sanitizer_overhead():
    rows = {}
    for kernel_name in KERNELS:
        _run_plain(kernel_name)  # warm-up round
        _run_sanitized(kernel_name)
        base, sanitized = [], []
        stats = None
        for _ in range(REPEATS):
            base.append(_run_plain(kernel_name))
            elapsed, stats = _run_sanitized(kernel_name)
            sanitized.append(elapsed)
        ratio = min(sanitized) / min(base)
        rows[kernel_name] = {
            "base_seconds": min(base),
            "sanitized_seconds": min(sanitized),
            "overhead_ratio": ratio,
            "lock_acquires": stats.lock_acquires,
            "locks_created": stats.locks_created,
            "publishes_seen": stats.publishes_seen,
            "reads_checked": stats.reads_checked,
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema_version": 1,
        "scenario": {
            "runtime": "threads",
            "workers": 2,
            "dependence": "stencil_1d",
            "timesteps": STEPS,
            "max_width": WIDTH,
            "output_bytes_per_task": PAYLOAD_BYTES,
            "repeats": REPEATS,
            "kernels": {
                "empty": {"iterations": 0},
                "compute_bound": {
                    "iterations": KERNELS["compute_bound"].iterations
                },
            },
            "smoke_kernel": SMOKE_KERNEL,
            "max_smoke_overhead": MAX_SMOKE_OVERHEAD,
        },
        "rows": rows,
    }
    (RESULTS_DIR / "sanitizer_overhead.json").write_text(
        json.dumps(payload, indent=1) + "\n"
    )

    lines = [
        f"{'kernel':>14}  {'plain':>9}  {'sanitized':>9}  {'overhead':>8}",
    ]
    for kernel_name, row in rows.items():
        lines.append(
            f"{kernel_name:>14}"
            f"  {row['base_seconds'] * 1e3:>7.1f}ms"
            f"  {row['sanitized_seconds'] * 1e3:>7.1f}ms"
            f"  {(row['overhead_ratio'] - 1) * 100:>+7.1f}%"
        )
    lines.append("")
    lines.append(
        "empty-kernel runs measure pure scheduling overhead (the METG "
        "regime): never report sanitized timings as METG numbers."
    )
    (RESULTS_DIR / "sanitizer_overhead.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # The instrumentation really ran on both cells.
    for row in rows.values():
        assert row["lock_acquires"] > 0 and row["publishes_seen"] > 0, row
    # Acceptance: on the compute-bound smoke config the sanitizer costs
    # less than 25% wall time.
    smoke = rows[SMOKE_KERNEL]["overhead_ratio"]
    assert smoke - 1.0 < MAX_SMOKE_OVERHEAD, rows
