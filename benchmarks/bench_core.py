"""Core-library microbenchmarks: kernels, dependence enumeration,
validation — the building blocks every figure rests on."""

import numpy as np

from repro.core import (
    DependenceType,
    Kernel,
    KernelType,
    TaskGraph,
    execute_kernel_compute,
    execute_kernel_memory,
)
from repro.core.validation import expected_inputs, task_output, validate_inputs


def test_compute_kernel_rate(benchmark):
    """Calibrates this host's compute-kernel rate (Listing 1 loop)."""
    benchmark(execute_kernel_compute, 1000)


def test_memory_kernel_rate(benchmark):
    scratch = np.zeros(1 << 20, dtype=np.uint8)
    benchmark(execute_kernel_memory, scratch, 64, 4096)


def test_dependence_enumeration_stencil(benchmark):
    g = TaskGraph(timesteps=64, max_width=64,
                  dependence=DependenceType.STENCIL_1D)

    def enumerate_all():
        return sum(g.num_dependencies(t, i) for t, i in g.points())

    assert benchmark(enumerate_all) == g.total_dependencies()


def test_dependence_enumeration_random(benchmark):
    g = TaskGraph(timesteps=32, max_width=32,
                  dependence=DependenceType.RANDOM_NEAREST, radix=5,
                  fraction_connected=0.5)
    benchmark(lambda: sum(g.num_dependencies(t, i) for t, i in g.points()))


def test_task_output_generation(benchmark):
    g = TaskGraph(timesteps=4, max_width=4, output_bytes_per_task=4096)
    benchmark(task_output, g, 2, 2)


def test_input_validation(benchmark):
    g = TaskGraph(timesteps=4, max_width=8,
                  dependence=DependenceType.STENCIL_1D,
                  output_bytes_per_task=256)
    inputs = expected_inputs(g, 2, 4)
    benchmark(validate_inputs, g, 2, 4, inputs)


def test_execute_point_end_to_end(benchmark):
    g = TaskGraph(
        timesteps=4, max_width=8, dependence=DependenceType.STENCIL_1D,
        kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=16),
    )
    inputs = expected_inputs(g, 2, 4)
    benchmark(g.execute_point, 2, 4, inputs)
