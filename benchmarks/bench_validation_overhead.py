"""Validation overhead (paper §2): "an evaluation of the performance impact
of validation showed it to be less than 3% at the smallest task
granularities in any Task Bench implementation".

This measures the same quantity on the real executors.  The absolute bound
differs (NumPy-on-Python byte comparison vs C), so the bench asserts the
reproduction-level claim — validation is a small fraction of runtime — and
records the measured ratio in results/."""

import pathlib
import time

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.runtimes import make_executor

RESULTS = pathlib.Path(__file__).parent / "results"


def _graph(iters):
    return TaskGraph(
        timesteps=60,
        max_width=4,
        dependence=DependenceType.STENCIL_1D,
        kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=iters),
        output_bytes_per_task=16,
    )


def _ratio(runtime: str, iters: int, repeats: int = 5) -> float:
    ex = make_executor(runtime, workers=2)
    g = _graph(iters)

    def best(validate):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            ex.run([g], validate=validate)
            times.append(time.perf_counter() - start)
        return min(times)

    return best(True) / best(False)


def test_validation_overhead_small_tasks(benchmark):
    """At small granularity, validation adds a bounded fraction of total
    runtime on the serial executor."""
    ratio = benchmark.pedantic(
        _ratio, args=("serial", 16), rounds=1, iterations=1
    )
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "validation_overhead.txt").write_text(
        f"validated/unvalidated wall-time ratio (serial, 16-iter tasks): "
        f"{ratio:.3f}\n"
        f"paper (C implementation): < 1.03 at the smallest granularities\n"
    )
    # Python-level bound: validation must stay a modest fraction of the
    # (Python-rate) task cost.  Measured ~1.3 with the cached-bytes
    # comparison path; the C implementation's bound is 1.03.
    assert ratio < 1.5, f"validation ratio {ratio:.2f}"


def test_validation_overhead_negligible_large_tasks():
    """Paper: negligible effect on overall results — at realistic task
    sizes validation disappears into the kernel time."""
    ratio = _ratio("serial", 2048, repeats=3)
    assert ratio < 1.10, f"validation ratio {ratio:.2f} at large tasks"
