#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation as text tables.

Runs the full `repro.analysis` figure suite at a reduced machine scale
(seconds to a few minutes of simulation) and prints each figure in the
rendering the benchmark harness also writes to ``benchmarks/results/``.

Run:  python examples/paper_figures.py [--fast] [--plot]

``--plot`` additionally renders each figure as an ASCII log-log plot.
"""

import sys
import time

from repro.analysis import (
    FigureConfig,
    ascii_plot,
    figure2_3,
    figure4,
    figure5,
    figure6_7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    render_efficiency_summary,
    render_series_table,
)


PLOT = False


def show(fig) -> None:
    print(render_series_table(fig))
    if fig.ylabel == "efficiency":
        print()
        print(render_efficiency_summary(fig))
    if PLOT:
        print()
        print(ascii_plot(fig, logy=fig.ylabel != "efficiency"))
    print()


def main() -> None:
    global PLOT
    PLOT = "--plot" in sys.argv
    fast = "--fast" in sys.argv
    cfg = FigureConfig(
        cores_per_node=4,
        steps=10 if fast else 20,
        node_counts=(1, 4, 16) if fast else (1, 4, 16, 64),
        problem_sizes=tuple(8**e for e in range(7 if fast else 8)),
    )
    subset = ("mpi_p2p", "mpi_bulk_sync", "charmpp", "realm", "regent",
              "parsec_dtd", "parsec_shard", "starpu", "spark")
    start = time.time()

    figs23 = figure2_3(cfg)
    show(figs23["flops"])
    show(figs23["efficiency"])

    show(figure4(cfg))
    show(figure5(cfg))

    figs67 = figure6_7(cfg.with_(systems=subset))
    show(figs67["flops"])
    show(figs67["efficiency"])

    show(figure8(cfg, systems=("mpi_p2p", "charmpp", "realm")))

    for sub in "abcd":
        show(figure9(sub, cfg.with_(systems=subset[:6])))

    show(figure10(cfg.with_(systems=subset[:5], cores_per_node=12)))

    nodes = max(cfg.node_counts[:-1])
    for payload in (16, 4096, 65536):
        show(figure11(output_bytes=payload,
                      cfg=cfg.with_(systems=("mpi_bulk_sync", "mpi_p2p",
                                             "charmpp", "realm")),
                      nodes=nodes))

    show(figure12(cfg.with_(
        systems=("mpi_bulk_sync", "mpi_p2p", "charmpp", "chapel",
                 "chapel_distrib"),
        cores_per_node=8,
    )))

    show(figure13())
    print(f"all figures regenerated in {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
