#!/usr/bin/env python3
"""Communication hiding under task parallelism (paper §5.6, Figure 11).

Four concurrent spread-pattern graphs (radix 5) put several independent
tasks per core per timestep in flight.  Asynchronous systems overlap the
resulting communication with computation; the phased MPI models cannot.
The gap widens with the per-dependency payload.

Run:  python examples/communication_hiding.py
"""

from repro.core import DependenceType
from repro.metg import SimRunner, compute_workload, efficiency_curve
from repro.sim import MachineSpec

MACHINE = MachineSpec(nodes=16, cores_per_node=4)
SYSTEMS = ("mpi_bulk_sync", "mpi_p2p", "charmpp", "realm", "parsec_shard")
SIZES = [4 ** e for e in range(1, 9)]


def main() -> None:
    for output_bytes in (16, 4096, 65536):
        print(f"\n=== {output_bytes} bytes per task dependency "
              f"(spread, radix 5, 4 graphs, {MACHINE.nodes} nodes) ===")
        print(f"{'granularity':>14s} " + " ".join(f"{s:>14s}" for s in SYSTEMS))
        curves = {}
        for name in SYSTEMS:
            runner = SimRunner(name, MACHINE)
            wl = compute_workload(
                runner.worker_width,
                steps=30,
                dependence=DependenceType.SPREAD,
                radix=5,
                ngraphs=4,
                output_bytes=output_bytes,
            )
            curves[name] = sorted(
                efficiency_curve(runner, wl, SIZES), key=lambda m: m.iterations
            )
        for row in range(len(SIZES)):
            gran = curves[SYSTEMS[0]][row].granularity_seconds * 1e6
            cells = " ".join(
                f"{curves[s][row].efficiency:>13.1%} " for s in SYSTEMS
            )
            print(f"{gran:>11.1f} us {cells}")
        # who reaches 50% at the smallest granularity?
        best = min(
            SYSTEMS,
            key=lambda s: min(
                (m.granularity_seconds for m in curves[s] if m.efficiency >= 0.5),
                default=float("inf"),
            ),
        )
        print(f"  -> smallest 50%-efficient granularity: {best}")


if __name__ == "__main__":
    main()
