#!/usr/bin/env python3
"""Running a study the paper did not: METG vs communication payload.

Figure 11 studies payload size through efficiency curves at fixed node
count; here the experiment grid sweeps payload x system x node count and
reports the induced METG directly — an example of using Task Bench to
answer a *new* question with a few lines (the paper's O(m + n) promise:
new benchmarks are configuration, not code).

Run:  python examples/custom_study.py
"""

from repro.analysis import (
    ExperimentGrid,
    PatternSpec,
    ascii_plot,
    render_series_table,
    run_grid,
)
from repro.core import DependenceType


def main() -> None:
    grid = ExperimentGrid(
        systems=("mpi_p2p", "mpi_bulk_sync", "charmpp", "realm"),
        node_counts=(16,),
        patterns=(PatternSpec(DependenceType.SPREAD, radix=5, ngraphs=4),),
        output_bytes=(16, 256, 4096, 65536, 1 << 20),
        steps=15,
        cores_per_node=4,
    )
    print("sweeping", sum(1 for _ in grid.cells()), "grid cells ...")
    table = run_grid(grid)

    fig = table.to_figure(
        x="output_bytes",
        series="system",
        y="metg_seconds",
        figure_id="payload_study",
        title="METG(50%) vs payload size (spread r5, 4 graphs, 16 nodes)",
    )
    print()
    print(render_series_table(fig))
    print()
    print(ascii_plot(fig, width=64, height=14))
    print()

    # The asynchronous systems' advantage grows with the payload: compute
    # the bulk-sync/async METG ratio per payload.
    for payload in grid.output_bytes:
        bulk = table.filter(system="mpi_bulk_sync", output_bytes=payload).rows[0]
        realm = table.filter(system="realm", output_bytes=payload).rows[0]
        ratio = bulk["metg_seconds"] / realm["metg_seconds"]
        print(f"payload {payload:>8d} B: bulk-sync needs {ratio:5.2f}x the "
              f"granularity of the async (realm) model")


if __name__ == "__main__":
    main()
