#!/usr/bin/env python3
"""Load-imbalance mitigation (paper §5.7, Figure 12).

Each task's duration is multiplied by a deterministic uniform random value
in [0, 1) — identical across systems, as in the paper.  Bulk-synchronous
execution is efficiency-capped by its per-timestep barrier against the
slowest task; asynchronous systems overlap across 4 concurrent graphs; and
on-node work stealing (Chapel's distrib scheduler) recovers the most at
large granularity while costing a little at very small granularity.

Run:  python examples/load_imbalance.py
"""

from repro.core import DependenceType, KernelType
from repro.metg import SimRunner, compute_workload, efficiency_curve
from repro.sim import MachineSpec

MACHINE = MachineSpec(nodes=1, cores_per_node=8)
SYSTEMS = ("mpi_bulk_sync", "mpi_p2p", "charmpp", "chapel", "chapel_distrib")
SIZES = [4 ** e for e in range(1, 10)]


def main() -> None:
    print("Efficiency vs task granularity under uniform [0,1) imbalance")
    print(f"(nearest, radix 5, 4 graphs, 1 node x {MACHINE.cores_per_node} cores)\n")
    curves = {}
    for name in SYSTEMS:
        runner = SimRunner(name, MACHINE)
        wl = compute_workload(
            runner.worker_width,
            steps=30,
            dependence=DependenceType.NEAREST,
            radix=5,
            ngraphs=4,
            kernel_type=KernelType.LOAD_IMBALANCE,
            imbalance=1.0,
        )
        curves[name] = sorted(
            efficiency_curve(runner, wl, SIZES), key=lambda m: m.iterations
        )

    print(f"{'granularity':>14s} " + " ".join(f"{s:>15s}" for s in SYSTEMS))
    for row in range(len(SIZES)):
        gran = curves[SYSTEMS[0]][row].granularity_seconds * 1e6
        cells = " ".join(f"{curves[s][row].efficiency:>14.1%} " for s in SYSTEMS)
        print(f"{gran:>11.1f} us {cells}")

    print()
    caps = {s: max(m.efficiency for m in curves[s]) for s in SYSTEMS}
    print("peak efficiency reached (the imbalance cap):")
    for s, cap in sorted(caps.items(), key=lambda kv: kv[1]):
        print(f"  {s:>15s}  {cap:6.1%}")
    print("\nexpected ordering (paper Figure 12): bulk-sync lowest cap;")
    print("async systems higher; work stealing (chapel_distrib) highest.")


if __name__ == "__main__":
    main()
