#!/usr/bin/env python3
"""Benchmark runtime systems against named application shapes.

Task Bench distills applications into dependence patterns (paper §1-§2);
this example runs every named scenario from ``repro.core.scenarios`` on a
simulated 4-node machine under three contrasting runtime models and shows
the execution timeline of one scenario to make communication overlap
visible.

Run:  python examples/application_scenarios.py
"""

from repro.analysis import idle_fraction, render_gantt
from repro.core import SCENARIOS
from repro.sim import ARIES, MachineSpec, get_system, simulate, simulate_with_stats

MACHINE = MachineSpec(nodes=4, cores_per_node=4)
SYSTEMS = ("mpi_p2p", "charmpp", "spark")


def main() -> None:
    print(f"scenario suite on {MACHINE.nodes} nodes x "
          f"{MACHINE.cores_per_node} cores (simulated)\n")
    print(f"{'scenario':>24s} " + " ".join(f"{s:>12s}" for s in SYSTEMS)
          + "   (efficiency)")
    for name in sorted(SCENARIOS):
        scenario = SCENARIOS[name]
        cells = []
        for system in SYSTEMS:
            model = get_system(system).with_(runtime_cores_per_node=0)
            graphs = scenario(width=16, steps=20)
            r = simulate(graphs, MACHINE, model, ARIES)
            cells.append(r.flops_per_second / MACHINE.peak_flops)
        print(f"{name:>24s} " + " ".join(f"{c:>11.1%} " for c in cells))
    print()
    print("(Spark-class controllers only make sense for the embarrassingly")
    print(" parallel shape — the paper's 'data analytics systems require")
    print(" very large tasks' conclusion, by scenario.)")

    # Timelines: the radiation sweep with 2 directions, phased vs async.
    print()
    graphs = SCENARIOS["radiation_sweep"](
        width=16, steps=10, directions=2, output_bytes=65536
    )
    for system in ("mpi_bulk_sync", "charmpp"):
        model = get_system(system).with_(runtime_cores_per_node=0)
        _, stats = simulate_with_stats(
            graphs, MACHINE, model, ARIES, collect_trace=True
        )
        workers = len(stats.core_busy_seconds)
        print(render_gantt(
            stats.trace, workers, width=64,
            title=f"{system} — radiation sweep, 2 directions "
                  f"(idle {idle_fraction(stats.trace, workers):.0%})",
        ))
        print()


if __name__ == "__main__":
    main()
