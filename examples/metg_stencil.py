#!/usr/bin/env python3
"""Measure METG(50%) the way the paper does (§4, Figures 2-3).

Two substrates:

1. the simulator standing in for a Cori Haswell node, for each of several
   modeled runtime systems — reproducing the paper's headline numbers
   (MPI p2p: 4.6 us on one node, 390 ns with 0 dependencies);
2. this host's real serial executor, measuring the actual Python-level
   task overhead of this machine.

Run:  python examples/metg_stencil.py
"""

from repro.core import DependenceType
from repro.metg import RealRunner, SimRunner, compute_workload, metg
from repro.runtimes import SerialExecutor
from repro.sim import CORI_HASWELL


def simulated_metg() -> None:
    print("Simulated 1-node Cori Haswell (paper Figure 7 regime)")
    print(f"{'system':>14s}  {'METG(50%)':>12s}   efficiency curve (granularity -> eff)")
    for system in ("mpi_p2p", "mpi_bulk_sync", "charmpp", "realm",
                   "parsec_dtd", "starpu", "regent", "x10", "dask", "spark"):
        runner = SimRunner(system, CORI_HASWELL)
        workload = compute_workload(runner.worker_width, steps=50)
        result = metg(runner, workload)
        # a few points of the curve around the crossing
        pts = sorted(result.history, key=lambda m: m.granularity_seconds)[:3]
        curve = "  ".join(
            f"{m.granularity_seconds * 1e6:.1f}us->{m.efficiency:.0%}" for m in pts
        )
        print(f"{system:>14s}  {result.metg_microseconds:10.2f} us   {curve}")

    print()
    runner = SimRunner("mpi_p2p", CORI_HASWELL)
    zero_dep = compute_workload(
        runner.worker_width, steps=50, dependence=DependenceType.NEAREST, radix=0
    )
    res = metg(runner, zero_dep)
    print(f"MPI p2p with 0 dependencies: METG(50%) = "
          f"{res.metg_microseconds * 1000:.0f} ns  (paper: 390 ns)")


def real_metg() -> None:
    print()
    print("Real serial executor on this host (Python kernel rate)")
    runner = RealRunner(SerialExecutor())
    workload = compute_workload(2, steps=20, dependence=DependenceType.STENCIL_1D)
    result = metg(runner, workload, max_iterations=1 << 24)
    print(f"serial METG(50%) = {result.metg_microseconds:.1f} us "
          f"({len(result.history)} probe runs)")
    print("(this is the granularity below which per-task Python overhead"
          " dominates useful kernel work on this machine)")


if __name__ == "__main__":
    simulated_metg()
    real_metg()
