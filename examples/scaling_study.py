#!/usr/bin/env python3
"""Weak/strong scaling and their relationship to METG (paper §4, Fig 4-5).

Reproduces the paper's demonstration that METG predicts where scaling
breaks: a problem weak-scales while its per-task granularity stays above
METG(50%) at that node count, and strong scaling stops where the shrinking
granularity crosses METG(50%).

Run:  python examples/scaling_study.py
"""

from repro.metg import (
    SimRunner,
    compute_workload,
    metg,
    strong_scaling,
    strong_scaling_limit_nodes,
    weak_scaling,
)
from repro.sim import MachineSpec, get_system

NODES = (1, 2, 4, 8, 16, 32, 64)
MACHINE = MachineSpec(nodes=1, cores_per_node=8)
STEPS = 50


def show(points, label):
    print(f"  {label}")
    for p in points:
        bar = "#" * max(1, int(p.efficiency * 40))
        print(
            f"    {p.nodes:4d} nodes  wall={p.wall_seconds * 1e3:9.3f} ms  "
            f"gran={p.granularity_seconds * 1e6:8.2f} us  "
            f"eff={p.efficiency:6.1%}  {bar}"
        )


def main() -> None:
    mpi = get_system("mpi_p2p")

    print("Weak scaling (MPI p2p, stencil): fixed work per task")
    for iters in (64, 1024, 16384):
        pts = weak_scaling(mpi, NODES, iters, machine=MACHINE, steps=STEPS)
        show(pts, f"iterations/task = {iters}")

    print()
    print("Strong scaling (MPI p2p, stencil): fixed total work")
    workers = mpi.worker_cores_per_node(MACHINE.cores_per_node)
    for total in (workers * STEPS * 256, workers * STEPS * 16384):
        pts = strong_scaling(mpi, NODES, total, machine=MACHINE, steps=STEPS)
        show(pts, f"total iterations = {total}")
        limit = strong_scaling_limit_nodes(pts)
        print(f"    -> strong scaling holds 50% efficiency up to {limit} nodes")

    print()
    print("METG(50%) at each node count (the predictor):")
    for nodes in NODES:
        runner = SimRunner("mpi_p2p", MACHINE.with_nodes(nodes))
        res = metg(runner, compute_workload(runner.worker_width, steps=STEPS))
        print(f"    {nodes:4d} nodes  METG = {res.metg_microseconds:8.2f} us")
    print("(compare: weak scaling lines stay flat exactly while their")
    print(" granularity exceeds the METG at that node count — paper §4)")


if __name__ == "__main__":
    main()
