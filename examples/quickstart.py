#!/usr/bin/env python3
"""Quickstart: build a task graph, run it on several runtime systems, and
see the uniform validated results.

This demonstrates the O(m + n) property of Task Bench's design: one
benchmark definition (a TaskGraph) runs unchanged on every executor; every
run is fully validated by the core library.

Run:  python examples/quickstart.py
"""

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.runtimes import available_runtimes, make_executor


def main() -> None:
    # A benchmark is just a parameterized task graph (paper Table 1):
    # 50 timesteps of a 4-wide 1-D stencil, each task running the
    # compute-bound kernel for 256 iterations and emitting 16 bytes to each
    # of its dependents.
    stencil = TaskGraph(
        timesteps=50,
        max_width=4,
        dependence=DependenceType.STENCIL_1D,
        kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=256),
        output_bytes_per_task=16,
    )
    print(stencil.describe())
    print(f"tasks={stencil.total_tasks()} dependencies={stencil.total_dependencies()}")
    print()

    # The same graph runs on every registered runtime paradigm.  Each
    # execute_point call validates its inputs against the graph definition,
    # so a successful run is a correct run (paper §2).
    for name in available_runtimes():
        if name == "processes":  # skip fork-pool start-up cost in the demo
            continue
        executor = make_executor(name, workers=2)
        result = executor.run([stencil])
        print(
            f"{name:12s} elapsed={result.elapsed_seconds * 1e3:8.2f} ms   "
            f"granularity={result.task_granularity_seconds * 1e6:8.1f} us/task   "
            f"tasks/s={result.tasks_per_second:10.0f}"
        )

    # Multiple heterogeneous graphs execute concurrently (paper §2).
    fft = stencil.with_(
        dependence=DependenceType.FFT, max_width=8, graph_index=1
    )
    both = make_executor("actors", workers=2).run([stencil, fft])
    print()
    print("two concurrent graphs (stencil + FFT) on the actor runtime:")
    print(both.report())


if __name__ == "__main__":
    main()
