#!/usr/bin/env python3
"""GPU offload study (paper §5.8, Figure 13).

Compares MPI on a Piz Daint node's CPU cores against the MPI+CUDA offload
model in its w1 (one rank drives the GPU) and w4 (4 ranks overdecompose)
configurations, and locates the CPU/GPU crossover.

Run:  python examples/gpu_offload.py
"""

from repro.analysis import ascii_plot, figure13, render_series_table
from repro.sim import (
    PIZ_DAINT,
    cpu_time_per_timestep,
    crossover_problem_size,
    gpu_time_per_timestep_w1,
    gpu_time_per_timestep_w4,
)


def main() -> None:
    fig = figure13()
    print(render_series_table(fig, max_points=9))
    print()
    print(ascii_plot(fig, width=70, height=16))
    print()

    x = crossover_problem_size()
    print(f"CPU/GPU (w1) crossover: ~{x:.3g} FLOPs per timestep")
    print(f"  below it the CPU wins: copy + launch overhead dominates")
    print(f"  (paper §5.8: 'the overhead of copying data dominates at small")
    print(f"   task granularities, where the CPU achieves higher performance')")
    print()

    # the per-timestep cost breakdown at two sizes
    for flops in (1e6, 1e11):
        cpu = cpu_time_per_timestep(PIZ_DAINT, flops)
        w1 = gpu_time_per_timestep_w1(PIZ_DAINT, flops)
        w4 = gpu_time_per_timestep_w4(PIZ_DAINT, flops)
        print(
            f"{flops:9.0e} FLOPs/step:  cpu={cpu * 1e6:10.1f} us   "
            f"w1={w1 * 1e6:10.1f} us   w4={w4 * 1e6:10.1f} us"
        )
    print()
    print(f"asymptotic rates: w4 -> {PIZ_DAINT.gpu_flops / 1e12:.2f} TFLOP/s "
          f"(GPU peak), w1 capped below it by serial copies;")
    print("w4 pays 4x the kernel-launch overhead, so it 'drops more rapidly")
    print("at smaller problem sizes' — both paper observations.")


if __name__ == "__main__":
    main()
