"""Task Bench — Python reproduction of Slaughter et al., SC 2020.

A parameterized benchmark for evaluating parallel runtime performance.

Subpackages
-----------
``repro.core``
    The Task Bench core library: task graphs, dependence relations, kernels,
    validation, configuration and metrics.
``repro.runtimes``
    Real single-host executors, one per runtime paradigm the paper studies.
``repro.sim``
    Discrete-event simulator substrate standing in for the Cori and
    Piz Daint machines, with calibrated models of the 15+ studied systems.
``repro.metg``
    The METG (minimum effective task granularity) metric machinery.
``repro.analysis``
    Regeneration of every figure/table of the paper's evaluation.
"""

from .core import (
    DependenceType,
    Executor,
    Kernel,
    KernelType,
    RunResult,
    TaskGraph,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "DependenceType",
    "Executor",
    "Kernel",
    "KernelType",
    "RunResult",
    "TaskGraph",
    "ValidationError",
    "__version__",
]
