"""Distributed-memory execution: rank processes over real sockets.

The paper's headline results are measured on distributed-memory runtimes —
MPI ranks exchanging dependency payloads over a network.  This package is
that substrate in miniature: N independent rank *processes* (no shared
memory, no shared Python state at run time) connected by a full mesh of
TCP or Unix-domain sockets, speaking a length-prefixed binary wire
protocol with no pickle on the payload hot path.

Layers, bottom up:

* :mod:`repro.cluster.wire` — frame format and zero-copy payload codec;
* :mod:`repro.cluster.transport` — framed sockets, per-peer outboxes
  (non-blocking sends), blocking tagged receives, peer-death detection;
* :mod:`repro.cluster.rank` — the per-rank driver: block-partitioned
  columns advanced timestep by timestep with full input validation;
* :mod:`repro.cluster.launcher` — spawns/supervises ranks, performs the
  address exchange, collects results and wire statistics.

The executor-facing shims live in :mod:`repro.runtimes.cluster_rt` and
register as ``cluster_tcp`` / ``cluster_uds``, so METG sweeps,
``--report``, ``--audit`` and the conformance suite drive a real
distributed run unchanged.
"""

from .launcher import Cluster, sweep_orphaned_socket_dirs
from .rank import RankDriver, block_owner, rank_main
from .transport import Endpoint, FrameSocket, PeerDiedError, TransportError
from .wire import (
    MSG_DATA,
    MSG_HELLO,
    WireCounters,
    WireError,
    decode,
    encode_data,
    encode_hello,
)

__all__ = [
    "Cluster",
    "Endpoint",
    "FrameSocket",
    "MSG_DATA",
    "MSG_HELLO",
    "PeerDiedError",
    "RankDriver",
    "TransportError",
    "WireCounters",
    "WireError",
    "block_owner",
    "decode",
    "encode_data",
    "encode_hello",
    "rank_main",
    "sweep_orphaned_socket_dirs",
]
