"""Binary wire protocol for the distributed executors.

Every message between two rank processes is one *frame*::

    +----------+-----------------+---------------------+
    | length   | header          | payload (DATA only) |
    | u32 LE   | fixed struct    | raw ndarray bytes   |
    +----------+-----------------+---------------------+

``length`` counts the header plus payload.  There are two message types:

``HELLO`` (``<BI``: type, rank)
    Sent once on every freshly connected socket so the accepting side can
    identify which rank is on the other end (connections arrive in
    arbitrary order during mesh setup).

``TRACE`` (``<BIQ``: type, rank, clock_ns)
    A rank's span-recorder dump, drained by the launcher at trace
    collection time.  The header carries the rank's ``perf_counter_ns``
    sample for clock alignment (see :mod:`repro.trace.merge`); the
    payload is the buffer dump as JSON — this is a cold, once-per-run
    control frame, so readability beats zero-copy here (and no pickle,
    same as the rest of the protocol).

``DATA`` (``<BIiii``: type, epoch, graph_index, timestep, column)
    One task output travelling to one consumer rank.  The header is the
    message *tag* — ``(epoch, graph_index, timestep, column)`` names the
    producer task, exactly like an MPI tag — and the payload is the
    producer's output buffer, shipped as raw bytes with **no pickle on the
    hot path**: encoding packs a 17-byte header next to a memoryview of
    the ndarray, decoding wraps the received frame with ``np.frombuffer``.

``DATA_BATCH`` (``<BII``: type, epoch, count)
    Several task outputs travelling to the same consumer rank in one
    frame.  After the batch header come ``count`` item headers
    (``<iiiI``: graph_index, timestep, column, payload_bytes) and then the
    payloads, concatenated in item order.  The fast path coalesces all of
    a timestep's sends to one peer into a single batch frame, amortizing
    the per-frame syscall and length-prefix costs across the timestep's
    payloads; decoding hands back zero-copy ``np.frombuffer`` slices of
    the one received buffer.  A batch frame counts once in the message
    counters on each side (so the symmetric-accounting invariant between
    sender and receiver is preserved); the payloads it carried are counted
    separately (``batched_payloads_*``).

The epoch field isolates back-to-back runs of a persistent rank mesh: a
fast rank may race ahead into run *k+1* while a peer still drains run *k*,
and its early messages simply park in the receiver's mailbox under the new
epoch instead of corrupting the old run.
"""

from __future__ import annotations

import json
import struct
import threading
from typing import Any, List, Tuple, Union

import numpy as np

from ..core.metrics import WireStats

#: Message type codes (first header byte).
MSG_HELLO = 1
MSG_DATA = 2
MSG_TRACE = 3
MSG_DATA_BATCH = 4

#: Frame length prefix: u32 little-endian, counting header + payload.
LEN_STRUCT = struct.Struct("<I")

#: HELLO header: (type, sender rank).
HELLO_STRUCT = struct.Struct("<BI")

#: DATA header: (type, epoch, graph_index, timestep, column).
DATA_STRUCT = struct.Struct("<BIiii")

#: TRACE header: (type, rank, perf_counter_ns clock sample).
TRACE_STRUCT = struct.Struct("<BIQ")

#: DATA_BATCH header: (type, epoch, item count).
DATA_BATCH_STRUCT = struct.Struct("<BII")

#: DATA_BATCH per-item header: (graph_index, timestep, column, nbytes).
DATA_BATCH_ITEM_STRUCT = struct.Struct("<iiiI")

#: Hard cap on a single frame (1 GiB) — a corrupted length prefix must not
#: make the receiver allocate an absurd buffer.
MAX_FRAME_BYTES = 1 << 30

#: A message tag: (epoch, graph_index, timestep, column).
Tag = Tuple[int, int, int, int]


class WireError(RuntimeError):
    """A malformed frame arrived (corrupt header, bad type, bad length)."""


def encode_hello(rank: int) -> bytes:
    """The HELLO header announcing ``rank`` (no payload)."""
    return HELLO_STRUCT.pack(MSG_HELLO, rank)


def encode_data(tag: Tag, payload: np.ndarray) -> Tuple[bytes, memoryview]:
    """Encode one task output as a (header, payload view) pair.

    The payload is *not* copied: the caller hands both parts to the
    transport, which scatter-writes them onto the socket.
    """
    epoch, gi, t, i = tag
    header = DATA_STRUCT.pack(MSG_DATA, epoch, gi, t, i)
    return header, memoryview(np.ascontiguousarray(payload)).cast("B")


def encode_data_batch(
    epoch: int, items: List[Tuple[Tuple[int, int, int], np.ndarray]]
) -> Tuple[bytes, List[memoryview]]:
    """Encode several task outputs bound for one peer as a single frame.

    ``items`` is a list of ``((graph_index, timestep, column), payload)``
    pairs.  Returns the combined batch + item headers as one ``bytes``
    object and the payload views, in order — the transport scatter-writes
    header and payloads onto the socket, so payloads are never copied.
    """
    parts = [DATA_BATCH_STRUCT.pack(MSG_DATA_BATCH, epoch, len(items))]
    views: List[memoryview] = []
    for (gi, t, i), payload in items:
        view = memoryview(np.ascontiguousarray(payload)).cast("B")
        parts.append(DATA_BATCH_ITEM_STRUCT.pack(gi, t, i, view.nbytes))
        views.append(view)
    return b"".join(parts), views


def encode_trace(rank: int, clock_ns: int, buffers: List[Any]) -> bytes:
    """Encode one rank's span-buffer dump (see
    :meth:`repro.trace.recorder.SpanRecorder.dump`) as a TRACE frame."""
    header = TRACE_STRUCT.pack(MSG_TRACE, rank, clock_ns)
    return header + json.dumps(buffers, separators=(",", ":")).encode("utf-8")


def decode(
    frame: memoryview,
) -> Union[Tuple[int, int], Tuple[Tag, np.ndarray], Tuple[int, int, int, List[Any]]]:
    """Decode one received frame (without its length prefix).

    Returns ``(MSG_HELLO, rank)`` for a HELLO, ``(tag, array)`` for a
    DATA frame, ``(MSG_DATA_BATCH, [(tag, array), ...])`` for a
    DATA_BATCH frame, and ``(MSG_TRACE, rank, clock_ns, buffers)`` for a
    TRACE frame.  DATA arrays are zero-copy ``np.frombuffer`` views over
    the frame's own buffer (read-only, ``uint8``) — the receive path
    allocates one buffer per frame and never copies the payloads again.
    """
    if len(frame) < 1:
        raise WireError("empty frame")
    kind = frame[0]
    if kind == MSG_HELLO:
        if len(frame) != HELLO_STRUCT.size:
            raise WireError(f"HELLO frame has {len(frame)} bytes")
        _, rank = HELLO_STRUCT.unpack(frame)
        return MSG_HELLO, rank
    if kind == MSG_DATA:
        if len(frame) < DATA_STRUCT.size:
            raise WireError(f"DATA frame has only {len(frame)} bytes")
        _, epoch, gi, t, i = DATA_STRUCT.unpack(frame[: DATA_STRUCT.size])
        payload = np.frombuffer(frame[DATA_STRUCT.size:], dtype=np.uint8)
        return (epoch, gi, t, i), payload
    if kind == MSG_DATA_BATCH:
        if len(frame) < DATA_BATCH_STRUCT.size:
            raise WireError(f"DATA_BATCH frame has only {len(frame)} bytes")
        _, epoch, count = DATA_BATCH_STRUCT.unpack(
            frame[: DATA_BATCH_STRUCT.size]
        )
        isize = DATA_BATCH_ITEM_STRUCT.size
        meta_end = DATA_BATCH_STRUCT.size + count * isize
        if len(frame) < meta_end:
            raise WireError(
                f"DATA_BATCH frame truncated: {count} items need "
                f"{meta_end} header bytes, frame has {len(frame)}"
            )
        items: List[Tuple[Tag, np.ndarray]] = []
        off = meta_end
        pos = DATA_BATCH_STRUCT.size
        for _ in range(count):
            gi, t, i, nbytes = DATA_BATCH_ITEM_STRUCT.unpack(
                frame[pos: pos + isize]
            )
            pos += isize
            if off + nbytes > len(frame):
                raise WireError("DATA_BATCH payload overruns the frame")
            payload = np.frombuffer(frame[off: off + nbytes], dtype=np.uint8)
            items.append(((epoch, gi, t, i), payload))
            off += nbytes
        if off != len(frame):
            raise WireError(
                f"DATA_BATCH frame has {len(frame) - off} trailing bytes"
            )
        return MSG_DATA_BATCH, items
    if kind == MSG_TRACE:
        if len(frame) < TRACE_STRUCT.size:
            raise WireError(f"TRACE frame has only {len(frame)} bytes")
        _, rank, clock_ns = TRACE_STRUCT.unpack(frame[: TRACE_STRUCT.size])
        try:
            buffers = json.loads(bytes(frame[TRACE_STRUCT.size:]).decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireError(f"corrupt TRACE payload: {exc}") from None
        if not isinstance(buffers, list):
            raise WireError("TRACE payload is not a buffer list")
        return MSG_TRACE, rank, clock_ns, buffers
    raise WireError(f"unknown message type {kind}")


class WireCounters:
    """Mutable, thread-safe wire accounting for one endpoint.

    The transport's sender/receiver threads bump these as frames move;
    :meth:`snapshot` folds them into the immutable
    :class:`~repro.core.metrics.WireStats` that travels back to the
    launcher at the end of each run.  ``snapshot(base)`` returns the delta
    since ``base``, so a persistent mesh reports per-run numbers rather
    than lifetime totals.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.serialize_seconds = 0.0
        self.deserialize_seconds = 0.0
        self.batched_payloads_sent = 0
        self.batched_payloads_received = 0

    def count_sent(self, nbytes: int, seconds: float, batched: int = 0) -> None:
        """One frame left the socket; ``batched`` payloads rode inside it
        if it was a DATA_BATCH frame (0 for plain frames)."""
        with self._lock:
            self.bytes_sent += nbytes
            self.messages_sent += 1
            self.serialize_seconds += seconds
            self.batched_payloads_sent += batched

    def count_serialize(self, seconds: float) -> None:
        with self._lock:
            self.serialize_seconds += seconds

    def count_received(
        self, nbytes: int, seconds: float, batched: int = 0
    ) -> None:
        with self._lock:
            self.bytes_received += nbytes
            self.messages_received += 1
            self.deserialize_seconds += seconds
            self.batched_payloads_received += batched

    def snapshot(self, base: WireStats | None = None) -> WireStats:
        with self._lock:
            stats = WireStats(
                bytes_sent=self.bytes_sent,
                bytes_received=self.bytes_received,
                messages_sent=self.messages_sent,
                messages_received=self.messages_received,
                serialize_seconds=self.serialize_seconds,
                deserialize_seconds=self.deserialize_seconds,
                batched_payloads_sent=self.batched_payloads_sent,
                batched_payloads_received=self.batched_payloads_received,
            )
        if base is None:
            return stats
        return WireStats(
            bytes_sent=stats.bytes_sent - base.bytes_sent,
            bytes_received=stats.bytes_received - base.bytes_received,
            messages_sent=stats.messages_sent - base.messages_sent,
            messages_received=stats.messages_received - base.messages_received,
            serialize_seconds=stats.serialize_seconds - base.serialize_seconds,
            deserialize_seconds=(
                stats.deserialize_seconds - base.deserialize_seconds
            ),
            batched_payloads_sent=(
                stats.batched_payloads_sent - base.batched_payloads_sent
            ),
            batched_payloads_received=(
                stats.batched_payloads_received - base.batched_payloads_received
            ),
        )
