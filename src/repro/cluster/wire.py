"""Binary wire protocol for the distributed executors.

Every message between two rank processes is one *frame*::

    +----------+-----------------+---------------------+
    | length   | header          | payload (DATA only) |
    | u32 LE   | fixed struct    | raw ndarray bytes   |
    +----------+-----------------+---------------------+

``length`` counts the header plus payload.  There are two message types:

``HELLO`` (``<BI``: type, rank)
    Sent once on every freshly connected socket so the accepting side can
    identify which rank is on the other end (connections arrive in
    arbitrary order during mesh setup).

``TRACE`` (``<BIQ``: type, rank, clock_ns)
    A rank's span-recorder dump, drained by the launcher at trace
    collection time.  The header carries the rank's ``perf_counter_ns``
    sample for clock alignment (see :mod:`repro.trace.merge`); the
    payload is the buffer dump as JSON — this is a cold, once-per-run
    control frame, so readability beats zero-copy here (and no pickle,
    same as the rest of the protocol).

``DATA`` (``<BIiii``: type, epoch, graph_index, timestep, column)
    One task output travelling to one consumer rank.  The header is the
    message *tag* — ``(epoch, graph_index, timestep, column)`` names the
    producer task, exactly like an MPI tag — and the payload is the
    producer's output buffer, shipped as raw bytes with **no pickle on the
    hot path**: encoding packs a 17-byte header next to a memoryview of
    the ndarray, decoding wraps the received frame with ``np.frombuffer``.

The epoch field isolates back-to-back runs of a persistent rank mesh: a
fast rank may race ahead into run *k+1* while a peer still drains run *k*,
and its early messages simply park in the receiver's mailbox under the new
epoch instead of corrupting the old run.
"""

from __future__ import annotations

import json
import struct
import threading
from typing import Any, List, Tuple, Union

import numpy as np

from ..core.metrics import WireStats

#: Message type codes (first header byte).
MSG_HELLO = 1
MSG_DATA = 2
MSG_TRACE = 3

#: Frame length prefix: u32 little-endian, counting header + payload.
LEN_STRUCT = struct.Struct("<I")

#: HELLO header: (type, sender rank).
HELLO_STRUCT = struct.Struct("<BI")

#: DATA header: (type, epoch, graph_index, timestep, column).
DATA_STRUCT = struct.Struct("<BIiii")

#: TRACE header: (type, rank, perf_counter_ns clock sample).
TRACE_STRUCT = struct.Struct("<BIQ")

#: Hard cap on a single frame (1 GiB) — a corrupted length prefix must not
#: make the receiver allocate an absurd buffer.
MAX_FRAME_BYTES = 1 << 30

#: A message tag: (epoch, graph_index, timestep, column).
Tag = Tuple[int, int, int, int]


class WireError(RuntimeError):
    """A malformed frame arrived (corrupt header, bad type, bad length)."""


def encode_hello(rank: int) -> bytes:
    """The HELLO header announcing ``rank`` (no payload)."""
    return HELLO_STRUCT.pack(MSG_HELLO, rank)


def encode_data(tag: Tag, payload: np.ndarray) -> Tuple[bytes, memoryview]:
    """Encode one task output as a (header, payload view) pair.

    The payload is *not* copied: the caller hands both parts to the
    transport, which scatter-writes them onto the socket.
    """
    epoch, gi, t, i = tag
    header = DATA_STRUCT.pack(MSG_DATA, epoch, gi, t, i)
    return header, memoryview(np.ascontiguousarray(payload)).cast("B")


def encode_trace(rank: int, clock_ns: int, buffers: List[Any]) -> bytes:
    """Encode one rank's span-buffer dump (see
    :meth:`repro.trace.recorder.SpanRecorder.dump`) as a TRACE frame."""
    header = TRACE_STRUCT.pack(MSG_TRACE, rank, clock_ns)
    return header + json.dumps(buffers, separators=(",", ":")).encode("utf-8")


def decode(
    frame: memoryview,
) -> Union[Tuple[int, int], Tuple[Tag, np.ndarray], Tuple[int, int, int, List[Any]]]:
    """Decode one received frame (without its length prefix).

    Returns ``(MSG_HELLO, rank)`` for a HELLO, ``(tag, array)`` for a
    DATA frame, and ``(MSG_TRACE, rank, clock_ns, buffers)`` for a TRACE
    frame.  The DATA array is a zero-copy ``np.frombuffer`` view over the
    frame's own buffer (read-only, ``uint8``) — the receive path allocates
    one buffer per frame and never copies the payload again.
    """
    if len(frame) < 1:
        raise WireError("empty frame")
    kind = frame[0]
    if kind == MSG_HELLO:
        if len(frame) != HELLO_STRUCT.size:
            raise WireError(f"HELLO frame has {len(frame)} bytes")
        _, rank = HELLO_STRUCT.unpack(frame)
        return MSG_HELLO, rank
    if kind == MSG_DATA:
        if len(frame) < DATA_STRUCT.size:
            raise WireError(f"DATA frame has only {len(frame)} bytes")
        _, epoch, gi, t, i = DATA_STRUCT.unpack(frame[: DATA_STRUCT.size])
        payload = np.frombuffer(frame[DATA_STRUCT.size:], dtype=np.uint8)
        return (epoch, gi, t, i), payload
    if kind == MSG_TRACE:
        if len(frame) < TRACE_STRUCT.size:
            raise WireError(f"TRACE frame has only {len(frame)} bytes")
        _, rank, clock_ns = TRACE_STRUCT.unpack(frame[: TRACE_STRUCT.size])
        try:
            buffers = json.loads(bytes(frame[TRACE_STRUCT.size:]).decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireError(f"corrupt TRACE payload: {exc}") from None
        if not isinstance(buffers, list):
            raise WireError("TRACE payload is not a buffer list")
        return MSG_TRACE, rank, clock_ns, buffers
    raise WireError(f"unknown message type {kind}")


class WireCounters:
    """Mutable, thread-safe wire accounting for one endpoint.

    The transport's sender/receiver threads bump these as frames move;
    :meth:`snapshot` folds them into the immutable
    :class:`~repro.core.metrics.WireStats` that travels back to the
    launcher at the end of each run.  ``snapshot(base)`` returns the delta
    since ``base``, so a persistent mesh reports per-run numbers rather
    than lifetime totals.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.serialize_seconds = 0.0
        self.deserialize_seconds = 0.0

    def count_sent(self, nbytes: int, seconds: float) -> None:
        with self._lock:
            self.bytes_sent += nbytes
            self.messages_sent += 1
            self.serialize_seconds += seconds

    def count_serialize(self, seconds: float) -> None:
        with self._lock:
            self.serialize_seconds += seconds

    def count_received(self, nbytes: int, seconds: float) -> None:
        with self._lock:
            self.bytes_received += nbytes
            self.messages_received += 1
            self.deserialize_seconds += seconds

    def snapshot(self, base: WireStats | None = None) -> WireStats:
        with self._lock:
            stats = WireStats(
                bytes_sent=self.bytes_sent,
                bytes_received=self.bytes_received,
                messages_sent=self.messages_sent,
                messages_received=self.messages_received,
                serialize_seconds=self.serialize_seconds,
                deserialize_seconds=self.deserialize_seconds,
            )
        if base is None:
            return stats
        return WireStats(
            bytes_sent=stats.bytes_sent - base.bytes_sent,
            bytes_received=stats.bytes_received - base.bytes_received,
            messages_sent=stats.messages_sent - base.messages_sent,
            messages_received=stats.messages_received - base.messages_received,
            serialize_seconds=stats.serialize_seconds - base.serialize_seconds,
            deserialize_seconds=(
                stats.deserialize_seconds - base.deserialize_seconds
            ),
        )
