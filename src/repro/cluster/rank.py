"""Per-rank driver of the distributed executors.

Each rank process owns a block of columns (the same MPI-style block
partitioning as :mod:`repro.runtimes.p2p`) and advances timestep by
timestep: claim the inputs its tasks need — same-rank inputs from a local
refcounted store, remote inputs via blocking tagged receives — execute
each task through ``TaskGraph.execute_point`` with **full input
validation**, then deliver the output: one refcounted local copy for
same-rank consumers and exactly one wire message per remote consumer
rank.

The rank talks to the launcher over a control pipe::

    rank -> ("address", addr)          after binding its listener
    rank <- ("peers", [addr, ...])     all ranks' addresses
    rank -> ("ready",)                 mesh connected
    rank <- ("run", spec)              one epoch of work
    rank -> ("done", WireStats, {...}) epoch complete (stats delta,
                                       captured outputs if requested)
    rank -> ("error", exc, traceback)  epoch failed; the rank exits
    rank <- ("shutdown",) or EOF       orderly exit

Graphs ship through the control pipe once and are cached by
``graph_index`` with stale-entry eviction (the launcher broadcasts only
graphs the rank has not seen), so a METG sweep's dozens of runs reuse the
warm mesh and warm caches.

Fault injection: an armed :class:`~repro.faults.FaultSpec` fires in the
rank whose index matches ``fault.worker``, immediately before it executes
timestep ``fault.round_index`` of its **first** run — transient by
construction, a relaunched mesh runs clean.
"""

from __future__ import annotations

import traceback
from multiprocessing.connection import Connection
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import fastpath as _fastpath
from ..core.task_graph import TaskGraph
from ..faults import FaultSpec, apply_fault
from ..trace import recorder as trace
from .transport import Endpoint, make_listener
from .wire import Tag, encode_trace

#: Local payload key: (graph_index, timestep, column).
Key = Tuple[int, int, int]

#: Per-timestep send coalescing buffer: dest rank -> [(key, payload), ...].
Outbatch = Dict[int, List[Tuple[Key, np.ndarray]]]


def block_owner(column: int, width: int, ranks: int) -> int:
    """Rank owning ``column`` under block partitioning (MPI-style);
    mirrors :func:`repro.runtimes.p2p.block_owner`."""
    return min(column * ranks // width, ranks - 1)


class _RefStore:
    """Single-threaded refcounted payload store (one per epoch).

    The rank's own loop is sequential, so unlike
    :class:`repro.runtimes._common.OutputStore` no lock is needed; the
    same leak discipline applies — anything left at the end of the epoch
    is a mis-routed dependency.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._data: Dict[Key, Tuple[np.ndarray, int]] = {}

    def put(self, key: Key, value: np.ndarray, consumers: int) -> None:
        if key in self._data:
            raise RuntimeError(f"duplicate {self.kind} payload for {key}")
        self._data[key] = (value, consumers)

    def __contains__(self, key: Key) -> bool:
        return key in self._data

    def take(self, key: Key) -> np.ndarray:
        try:
            value, remaining = self._data[key]
        except KeyError:
            raise RuntimeError(
                f"{self.kind} payload for task {key} requested but not held"
            ) from None
        if remaining == 1:
            del self._data[key]
        else:
            self._data[key] = (value, remaining - 1)
        return value

    def assert_drained(self) -> None:
        if self._data:
            leaked = sorted(self._data)[:5]
            raise RuntimeError(
                f"{len(self._data)} {self.kind} payloads never consumed, "
                f"e.g. {leaked}"
            )


def _local_consumers(g: TaskGraph, t: int, j: int, rank: int, nranks: int) -> int:
    """How many tasks owned by ``rank`` read the output of ``(t, j)``."""
    return sum(
        1
        for jj in g.reverse_dependency_points(t, j)
        if block_owner(jj, g.max_width, nranks) == rank
    )


class RankDriver:
    """The state of one rank process across runs: graph/scratch caches and
    the connected endpoint."""

    def __init__(
        self,
        rank: int,
        nranks: int,
        endpoint: Endpoint,
        recv_timeout: float | None = None,
    ) -> None:
        self.rank = rank
        self.nranks = nranks
        self.endpoint = endpoint
        #: Deadline for each remote-input wait; ``None`` trusts the
        #: failure latch alone (the pre-PR 6 behavior).
        self.recv_timeout = recv_timeout
        self._graphs: Dict[int, TaskGraph] = {}
        self._scratch: Dict[Tuple[int, int], np.ndarray] = {}

    # -- caches --------------------------------------------------------
    def install(self, graphs: Sequence[TaskGraph]) -> None:
        """Refresh the graph cache; a *different* graph under a reused
        index evicts the stale entry and its scratch buffers (same
        cache-coherence rule as :func:`repro.runtimes.processes.worker_graph`)."""
        for g in graphs:
            cached = self._graphs.get(g.graph_index)
            if cached is not None and cached == g:
                continue
            self._graphs[g.graph_index] = g
            for key in [k for k in self._scratch if k[0] == g.graph_index]:
                del self._scratch[key]

    def graphs_for(self, order: Sequence[int]) -> List[TaskGraph]:
        return [self._graphs[gi] for gi in order]

    def _scratch_for(self, g: TaskGraph, i: int) -> Optional[np.ndarray]:
        if not g.scratch_bytes_per_task:
            return None
        key = (g.graph_index, i)
        buf = self._scratch.get(key)
        if buf is None or buf.nbytes != g.scratch_bytes_per_task:
            buf = g.prepare_scratch()
            self._scratch[key] = buf
        return buf

    # -- one epoch -----------------------------------------------------
    def run_epoch(
        self,
        graphs: Sequence[TaskGraph],
        epoch: int,
        *,
        validate: bool,
        capture: bool,
        fault: FaultSpec | None,
    ) -> Dict[Key, bytes]:
        local = _RefStore("local")
        remote = _RefStore("remote")
        captured: Dict[Key, bytes] = {}
        max_t = max(g.timesteps for g in graphs)
        # Fast path: coalesce this timestep's sends to each peer into one
        # DATA_BATCH frame, posted at the timestep boundary.  Safe because
        # dependencies only span consecutive timesteps — a consumer rank
        # first needs a timestep-t output while running timestep t+1, by
        # which time the producer has flushed t.  Deadlock-free for the
        # same reason: no rank waits on a message its peer is still
        # buffering for the timestep both are currently in.
        outbatch: Optional[Outbatch] = {} if _fastpath.enabled() else None
        for t in range(max_t):
            if fault is not None and t == fault.round_index:
                apply_fault(fault)  # crash/wedge never return
                fault = None  # a delay returns; fire once
            self.endpoint.check_failure()
            for g in graphs:
                if t >= g.timesteps:
                    continue
                off = g.offset_at_timestep(t)
                for i in range(off, off + g.width_at_timestep(t)):
                    if block_owner(i, g.max_width, self.nranks) != self.rank:
                        continue
                    self._run_task(
                        g, t, i, epoch, local, remote, captured, outbatch,
                        validate=validate, capture=capture,
                    )
            if outbatch:
                for dest, items in outbatch.items():
                    self.endpoint.post_batch(dest, epoch, items)
                outbatch.clear()
        local.assert_drained()
        remote.assert_drained()
        stray = self.endpoint.pending(epoch)
        if stray:
            raise RuntimeError(
                f"rank {self.rank} received {stray} messages it never "
                "consumed this epoch"
            )
        return captured

    def _run_task(
        self,
        g: TaskGraph,
        t: int,
        i: int,
        epoch: int,
        local: _RefStore,
        remote: _RefStore,
        captured: Dict[Key, bytes],
        outbatch: Optional[Outbatch],
        *,
        validate: bool,
        capture: bool,
    ) -> None:
        inputs: List[np.ndarray] = []
        if t > 0:
            for j in g.dependency_points(t, i):
                key = (g.graph_index, t - 1, j)
                if block_owner(j, g.max_width, self.nranks) == self.rank:
                    inputs.append(local.take(key))
                else:
                    inputs.append(self._claim_remote(g, epoch, key, remote))
        t0 = trace.begin() if trace.enabled else 0
        out = g.execute_point(
            t, i, inputs, scratch=self._scratch_for(g, i), validate=validate
        )
        if t0:
            trace.complete(
                "task", trace.CAT_KERNEL, t0, {"task": (g.graph_index, t, i)}
            )
        self._deliver(
            g, t, i, epoch, out, local, captured, outbatch, capture=capture
        )

    def _claim_remote(
        self, g: TaskGraph, epoch: int, key: Key, remote: _RefStore
    ) -> np.ndarray:
        """One consumer's read of a remote input.

        The producer rank sends each consumer *rank* the payload exactly
        once; several local columns may read it, so the first claim pulls
        the message out of the endpoint mailbox and parks it in the
        ``remote`` store under its locally-computed consumer count — the
        same count the producer used to decide to send one message here.
        """
        if key not in remote:
            gi, tp, j = key
            tag: Tag = (epoch, gi, tp, j)
            t0 = trace.begin() if trace.enabled else 0
            payload = self.endpoint.recv(tag, timeout=self.recv_timeout)
            if t0:
                # The communication stall: how long this rank sat waiting
                # for a peer's output (paper §5.6).
                trace.complete(
                    "recv.wait", trace.CAT_SCHED, t0, {"source": key}
                )
            remote.put(key, payload, _local_consumers(g, tp, j, self.rank, self.nranks))
        return remote.take(key)

    def _deliver(
        self,
        g: TaskGraph,
        t: int,
        i: int,
        epoch: int,
        out: np.ndarray,
        local: _RefStore,
        captured: Dict[Key, bytes],
        outbatch: Optional[Outbatch],
        *,
        capture: bool,
    ) -> None:
        per_rank: Dict[int, int] = {}
        for jj in g.reverse_dependency_points(t, i):
            dest = block_owner(jj, g.max_width, self.nranks)
            per_rank[dest] = per_rank.get(dest, 0) + 1
        if not per_rank:
            return
        key = (g.graph_index, t, i)
        t0 = trace.begin() if trace.enabled else 0
        if capture:
            captured[key] = out.tobytes()
        for dest, consumers in per_rank.items():
            if dest == self.rank:
                local.put(key, out, consumers)
            elif outbatch is not None:
                # Fast path: park the send; run_epoch flushes every peer's
                # batch in one frame at the end of the timestep.
                outbatch.setdefault(dest, []).append((key, out))
            else:
                self.endpoint.post(dest, (epoch, *key), out)
        if t0:
            trace.complete("publish", trace.CAT_PUBLISH, t0, {"task": key})


def rank_main(
    rank: int,
    nranks: int,
    ctl: Connection,
    kind: str,
    uds_dir: str | None,
    fault: FaultSpec | None,
    recv_timeout: float | None = None,
) -> None:
    """Entry point of one rank process (the launcher's fork target)."""
    # Drop any recorder state inherited from a parent forked mid-capture;
    # tracing is enabled per run via spec["trace"].
    trace.fork_reset()
    endpoint: Endpoint | None = None
    try:
        listener, address = make_listener(kind, rank, uds_dir)
        ctl.send(("address", address))
        msg = ctl.recv()
        if msg[0] != "peers":
            raise RuntimeError(f"expected peers, got {msg[0]!r}")
        endpoint = Endpoint(rank, nranks, listener, msg[1])
        ctl.send(("ready",))
        driver = RankDriver(rank, nranks, endpoint, recv_timeout=recv_timeout)
        first_run = True
        while True:
            try:
                msg = ctl.recv()
            except (EOFError, OSError):
                break
            if msg is None or msg[0] == "shutdown":
                break
            if msg[0] == "trace":
                # Trace pull: sample the local clock (the alignment anchor
                # — see repro.trace.merge), drain the recorder, reply with
                # a wire-protocol TRACE frame through the control pipe.
                clock_ns = trace.now()
                blob = encode_trace(rank, clock_ns, trace.worker_drain())
                ctl.send(("trace", blob))
                continue
            _, spec = msg
            try:
                if spec.get("trace"):
                    trace.worker_begin()
                driver.install(spec["graphs"])
                graphs = driver.graphs_for(spec["order"])
                base = endpoint.counters.snapshot()
                captured = driver.run_epoch(
                    graphs,
                    spec["epoch"],
                    validate=spec["validate"],
                    capture=spec["capture"],
                    fault=fault if first_run else None,
                )
                first_run = False
                endpoint.flush()
                ctl.send(("done", endpoint.counters.snapshot(base), captured))
            except BaseException as exc:  # noqa: BLE001 - shipped to launcher
                tb = traceback.format_exc()
                try:
                    ctl.send(("error", exc, tb))
                except Exception:  # unpicklable: ship a summary
                    ctl.send(("error", RuntimeError(repr(exc)), tb))
                # The mesh is broken (peers may block on messages this rank
                # will never send): exit so peers see EOF and abort too.
                break
    except BaseException as exc:  # noqa: BLE001 - setup failure
        try:
            ctl.send(("error", exc, traceback.format_exc()))
        except Exception:
            pass
    finally:
        if endpoint is not None:
            endpoint.close()
        try:
            ctl.close()
        except OSError:
            pass
