"""Socket transport for the distributed executors.

A mesh of N rank processes, fully connected: rank *r* dials every rank
*s < r* and accepts connections from every rank *s > r*, identifying each
accepted socket by its HELLO frame (connections arrive in arbitrary
order).  Deadlock-free because every rank binds its listener *before* any
address is published.

On top of each connected socket the endpoint runs the paper's best MPI
communication structure (§3.4):

* **non-blocking sends** — ``post`` appends the message to a per-peer
  outbox and returns; a dedicated sender thread per peer drains the outbox
  onto the socket (``MPI_Isend``);
* **blocking tagged receives** — a receiver thread per peer decodes DATA
  frames into one shared mailbox keyed by tag; ``recv(tag)`` blocks until
  the keyed message arrives (``MPI_Irecv`` + wait).

Failure semantics: a socket EOF that is not part of an orderly shutdown
means the peer process died.  The endpoint latches a
:class:`PeerDiedError` and wakes every blocked ``recv`` so the surviving
rank aborts promptly instead of waiting forever on a message that will
never arrive — the launcher maps that abort to the supervision layer's
``WorkerCrashError``.
"""

from __future__ import annotations

import collections
import os
import socket
import threading
import time
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..trace import recorder as trace
from .wire import (
    LEN_STRUCT,
    MAX_FRAME_BYTES,
    MSG_DATA_BATCH,
    MSG_HELLO,
    MSG_TRACE,
    Tag,
    WireCounters,
    WireError,
    decode,
    encode_data,
    encode_data_batch,
    encode_hello,
)

#: Liveness-check interval while waiting on a tagged receive (seconds);
#: matches the fork pool's heartbeat so failure latency is uniform.
HEARTBEAT_SECONDS = 0.05

#: Transport kinds accepted by :func:`make_listener`.
TRANSPORTS = ("tcp", "uds")

#: An advertised listener address: ("tcp", host, port) or ("uds", path).
Address = Tuple[str, ...]


class TransportError(RuntimeError):
    """A transport-level protocol violation (bad HELLO, bad frame)."""


class PeerDiedError(TransportError):
    """A peer rank's socket EOFed outside an orderly shutdown — evidence
    that the peer process died mid-run."""


def make_listener(kind: str, rank: int, uds_dir: str | None) -> Tuple[socket.socket, Address]:
    """Bind a listening socket for ``rank`` and return it with the address
    to advertise to the other ranks."""
    if kind == "tcp":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        sock.listen(64)
        host, port = sock.getsockname()
        return sock, ("tcp", host, str(port))
    if kind == "uds":
        if uds_dir is None:
            raise ValueError("uds transport needs a socket directory")
        path = os.path.join(uds_dir, f"rank{rank}.sock")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(path)
        sock.listen(64)
        return sock, ("uds", path)
    raise ValueError(f"unknown transport {kind!r}; expected one of {TRANSPORTS}")


def connect(address: Address) -> socket.socket:
    """Dial a listener address produced by :func:`make_listener`."""
    if address[0] == "tcp":
        return socket.create_connection((address[1], int(address[2])))
    if address[0] == "uds":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(address[1])
        return sock
    raise ValueError(f"unknown address {address!r}")


class FrameSocket:
    """Length-prefixed frame framing over one stream socket.

    ``send_frame`` scatter-writes the length prefix and the frame parts
    with ``sendmsg`` — the payload memoryview goes to the kernel without
    being joined into an intermediate buffer.  ``recv_frame`` reads
    exactly one frame into a fresh buffer (``recv_into``, no re-slicing
    copies) and returns it; EOF *between* frames returns ``None``, EOF
    *inside* a frame raises :class:`PeerDiedError`.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        if sock.family == socket.AF_INET:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def send_frame(self, *parts: "bytes | memoryview") -> int:
        """Send one frame; returns the number of payload+header bytes."""
        views = [memoryview(p).cast("B") for p in parts]
        total = sum(len(v) for v in views)
        if total > MAX_FRAME_BYTES:
            raise TransportError(f"frame of {total} bytes exceeds the cap")
        # Zero-length parts (empty payloads) must be dropped before the
        # scatter loop: sendmsg reports 0 bytes for them, which the
        # re-slicing logic below would never pop.
        bufs: List[memoryview] = [memoryview(LEN_STRUCT.pack(total))] + [
            v for v in views if len(v)
        ]
        # _send_lock is a leaf lock serializing writers on one socket; the
        # kernel write is bounded by the peer's flush deadline, and no
        # other lock is ever taken while it is held.
        with self._send_lock:
            while bufs:
                sent = self._sock.sendmsg(bufs)  # check: allow[blocking-under-lock]
                while sent > 0:
                    if sent >= len(bufs[0]):
                        sent -= len(bufs[0])
                        bufs.pop(0)
                    else:
                        bufs[0] = bufs[0][sent:]
                        sent = 0
        return total

    def _recv_exact(self, nbytes: int, *, at_boundary: bool) -> Optional[memoryview]:
        buf = bytearray(nbytes)
        view = memoryview(buf)
        got = 0
        while got < nbytes:
            n = self._sock.recv_into(view[got:])
            if n == 0:
                if got == 0 and at_boundary:
                    return None  # clean EOF between frames
                raise PeerDiedError("socket EOF inside a frame")
            got += n
        return view

    def recv_frame(self) -> Optional[memoryview]:
        """Read one frame; ``None`` on orderly EOF at a frame boundary."""
        head = self._recv_exact(LEN_STRUCT.size, at_boundary=True)
        if head is None:
            return None
        (length,) = LEN_STRUCT.unpack(head)
        if length > MAX_FRAME_BYTES:
            raise WireError(f"frame length {length} exceeds the cap")
        body = self._recv_exact(length, at_boundary=False)
        assert body is not None
        return body

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


class _Peer:
    """One connected peer: an outbox + sender thread and a receiver thread."""

    def __init__(self, rank: int, fsock: FrameSocket, endpoint: "Endpoint") -> None:
        self.rank = rank
        self.fsock = fsock
        self._endpoint = endpoint
        self._cond = threading.Condition()
        # Each entry is (frame parts, payloads-batched count): a plain DATA
        # frame is ((header, payload), 0); a DATA_BATCH frame is
        # ((header, view0, view1, ...), n).
        self._outbox: Deque[Tuple[Tuple["bytes | memoryview", ...], int]] = (
            collections.deque()
        )
        self._sending = False
        self.closing = False
        self._sender = threading.Thread(
            target=self._send_loop, name=f"cluster-send-{rank}", daemon=True
        )
        self._receiver = threading.Thread(
            target=self._recv_loop, name=f"cluster-recv-{rank}", daemon=True
        )
        self._sender.start()
        self._receiver.start()

    # -- sending -------------------------------------------------------
    def post(self, header: bytes, payload: memoryview) -> None:
        """Queue one encoded frame; never blocks on the socket."""
        self.post_parts((header, payload), batched=0)

    def post_parts(
        self, parts: Tuple["bytes | memoryview", ...], batched: int
    ) -> None:
        """Queue one frame of arbitrary scatter parts (``batched`` counts
        the payloads riding in it when it is a DATA_BATCH frame)."""
        with self._cond:
            if self.closing:
                raise TransportError(f"peer {self.rank} endpoint is closing")
            self._outbox.append((parts, batched))
            self._cond.notify_all()

    def _send_loop(self) -> None:
        while True:
            with self._cond:
                while not self._outbox and not self.closing:
                    self._cond.wait()
                if not self._outbox:
                    return  # closing and drained
                parts, batched = self._outbox.popleft()
                self._sending = True
            try:
                t0 = trace.begin() if trace.enabled else 0
                start = time.perf_counter()
                nbytes = self.fsock.send_frame(*parts)
                self._endpoint.counters.count_sent(
                    nbytes, time.perf_counter() - start, batched
                )
                if t0:
                    trace.complete(
                        "wire.send", trace.CAT_WIRE, t0,
                        {"peer": self.rank, "bytes": nbytes},
                    )
                    s = self._endpoint.counters.snapshot()
                    trace.counter(
                        "wire.bytes",
                        {"sent": s.bytes_sent, "received": s.bytes_received},
                    )
            except OSError as exc:
                if not self.closing:
                    self._endpoint.set_failure(
                        PeerDiedError(
                            f"send to rank {self.rank} failed: {exc}"
                        )
                    )
                return
            finally:
                with self._cond:
                    self._sending = False
                    self._cond.notify_all()

    def flush(self, deadline: float | None) -> None:
        """Block until every queued frame reached the kernel buffers."""
        with self._cond:
            while self._outbox or self._sending:
                self._endpoint.check_failure()
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TransportError(
                            f"flush to rank {self.rank} timed out"
                        )
                self._cond.wait(
                    HEARTBEAT_SECONDS
                    if remaining is None
                    else min(HEARTBEAT_SECONDS, remaining)
                )

    # -- receiving -----------------------------------------------------
    def _recv_loop(self) -> None:
        while True:
            try:
                frame = self.fsock.recv_frame()
            except (PeerDiedError, WireError, OSError) as exc:
                if not self.closing:
                    self._endpoint.set_failure(
                        exc
                        if isinstance(exc, PeerDiedError)
                        else PeerDiedError(
                            f"receive from rank {self.rank} failed: {exc}"
                        )
                    )
                return
            if frame is None:
                if not self.closing:
                    self._endpoint.set_failure(
                        PeerDiedError(
                            f"rank {self.rank} closed its connection mid-run"
                        )
                    )
                return
            t0 = trace.begin() if trace.enabled else 0
            start = time.perf_counter()
            decoded = decode(frame)
            if decoded[0] in (MSG_HELLO, MSG_TRACE):
                self._endpoint.set_failure(
                    TransportError(
                        f"unexpected control frame from rank {self.rank}"
                    )
                )
                return
            if decoded[0] == MSG_DATA_BATCH:
                items = decoded[1]
                self._endpoint.counters.count_received(
                    len(frame), time.perf_counter() - start, len(items)
                )
                for tag, payload in items:
                    self._endpoint.deliver(tag, payload)
            else:
                tag, payload = decoded  # type: ignore[misc]
                self._endpoint.counters.count_received(
                    len(frame), time.perf_counter() - start
                )
                self._endpoint.deliver(tag, payload)
            if t0:
                trace.complete(
                    "wire.recv", trace.CAT_WIRE, t0,
                    {"peer": self.rank, "bytes": len(frame)},
                )
                s = self._endpoint.counters.snapshot()
                trace.counter(
                    "wire.bytes",
                    {"sent": s.bytes_sent, "received": s.bytes_received},
                )

    # -- teardown ------------------------------------------------------
    def close(self) -> None:
        with self._cond:
            self.closing = True
            self._cond.notify_all()
        self._sender.join(timeout=1.0)
        self.fsock.close()
        self._receiver.join(timeout=1.0)


class Endpoint:
    """One rank's connections to every other rank, plus the tagged mailbox.

    Construction connects the mesh (see the module docstring) and starts
    two threads per peer.  All receiver threads deliver into one mailbox —
    a DATA tag names the producer task globally, so the consumer does not
    care which socket carried it.
    """

    def __init__(
        self,
        rank: int,
        nranks: int,
        listener: socket.socket,
        addresses: List[Address],
    ) -> None:
        self.rank = rank
        self.nranks = nranks
        self.counters = WireCounters()
        self._mail_cond = threading.Condition()
        self._mailbox: Dict[Tag, np.ndarray] = {}
        self._failure: Optional[BaseException] = None
        self._peers: Dict[int, _Peer] = {}
        sockets: Dict[int, FrameSocket] = {}
        # Dial every lower rank, announcing ourselves.
        for s in range(rank):
            fsock = FrameSocket(connect(addresses[s]))
            fsock.send_frame(encode_hello(rank))
            sockets[s] = fsock
        # Accept every higher rank, identified by its HELLO.
        for _ in range(nranks - rank - 1):
            conn, _addr = listener.accept()
            fsock = FrameSocket(conn)
            frame = fsock.recv_frame()
            if frame is None:
                raise TransportError("peer hung up before HELLO")
            decoded = decode(frame)
            if decoded[0] != MSG_HELLO:
                raise TransportError("first frame was not a HELLO")
            peer_rank = decoded[1]
            if not isinstance(peer_rank, int) or peer_rank in sockets:
                raise TransportError(f"bad HELLO rank {peer_rank!r}")
            sockets[peer_rank] = fsock
        listener.close()
        # Threads start only once the whole mesh is wired up.
        for peer_rank, fsock in sockets.items():
            self._peers[peer_rank] = _Peer(peer_rank, fsock, self)

    # -- failure latch -------------------------------------------------
    def set_failure(self, exc: BaseException) -> None:
        with self._mail_cond:
            if self._failure is None:
                self._failure = exc
            self._mail_cond.notify_all()

    def check_failure(self) -> None:
        with self._mail_cond:
            if self._failure is not None:
                raise self._failure

    # -- data plane ----------------------------------------------------
    def post(self, dest: int, tag: Tag, payload: np.ndarray) -> None:
        """Non-blocking tagged send of one task output to rank ``dest``."""
        start = time.perf_counter()
        header, view = encode_data(tag, payload)
        self.counters.count_serialize(time.perf_counter() - start)
        self._peers[dest].post(header, view)

    def post_batch(
        self,
        dest: int,
        epoch: int,
        items: "List[Tuple[Tuple[int, int, int], np.ndarray]]",
    ) -> None:
        """Non-blocking send of several task outputs to rank ``dest`` in a
        single DATA_BATCH frame.

        ``items`` pairs ``(graph_index, timestep, column)`` keys with
        payloads; the receiver files each under its full tag exactly as if
        it had arrived in its own DATA frame.  A single-item batch
        degrades to a plain :meth:`post` so the wire never carries batch
        overhead for unbatchable traffic.
        """
        if not items:
            return
        if len(items) == 1:
            (key, payload) = items[0]
            self.post(dest, (epoch, *key), payload)
            return
        start = time.perf_counter()
        header, views = encode_data_batch(epoch, items)
        self.counters.count_serialize(time.perf_counter() - start)
        self._peers[dest].post_parts((header, *views), batched=len(items))

    def deliver(self, tag: Tag, payload: np.ndarray) -> None:
        """Receiver-thread entry: file one decoded message under its tag."""
        with self._mail_cond:
            if tag in self._mailbox:
                self.set_failure(
                    TransportError(f"duplicate message for tag {tag}")
                )
                return
            self._mailbox[tag] = payload
            self._mail_cond.notify_all()

    def recv(self, tag: Tag, timeout: float | None = None) -> np.ndarray:
        """Block until the message tagged ``tag`` arrives, then claim it.

        Wakes on the heartbeat to re-check the failure latch, so a peer
        death never leaves this rank blocked forever.  With ``timeout``
        set, a message that has not arrived within that many seconds
        raises :class:`TransportError` — the backstop for wakeups lost to
        bugs the failure latch cannot see (a peer that is alive but
        silent), so a mailbox wait can never hang a rank indefinitely.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mail_cond:
            while tag not in self._mailbox:
                if self._failure is not None:
                    raise self._failure
                interval = HEARTBEAT_SECONDS
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TransportError(
                            f"recv of tag {tag} timed out after {timeout}s "
                            "with no failure latched — the message was "
                            "never sent or its wakeup was lost"
                        )
                    interval = min(interval, remaining)
                self._mail_cond.wait(interval)
            return self._mailbox.pop(tag)

    def pending(self, epoch: int) -> int:
        """Messages of ``epoch`` delivered but never claimed (leak check)."""
        with self._mail_cond:
            return sum(1 for tag in self._mailbox if tag[0] == epoch)

    def flush(self, timeout: float | None = None) -> None:
        """Wait until every outbox has fully reached the kernel buffers."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for peer in self._peers.values():
            peer.flush(deadline)

    def close(self) -> None:
        """Orderly shutdown: drain outboxes, then close every socket."""
        for peer in self._peers.values():
            with peer._cond:
                peer.closing = True
                peer._cond.notify_all()
        for peer in self._peers.values():
            peer.close()
