"""Launcher: spawn, supervise, and talk to a mesh of rank processes.

:class:`Cluster` is the parent-side half of the distributed executors.
It forks ``ranks`` daemon processes running :func:`repro.cluster.rank.rank_main`,
performs the address exchange (every rank binds its listener first, then
all addresses are broadcast, so mesh connection can never deadlock), and
then drives runs: one ``("run", spec)`` control message per rank per
epoch, one ``("done", stats, captured)`` reply each.

Supervision follows the same discipline as the fork pool
(:mod:`repro.runtimes._procpool`):

* collection is ``wait``-based with a heartbeat slice and an optional
  per-run deadline — a wedged rank surfaces as
  :class:`~repro.runtimes._procpool.WorkerTimeoutError` instead of a hang;
* a rank that dies EOFs its control pipe (and its peer sockets, which the
  surviving ranks report as ``PeerDiedError``); both kinds of evidence
  collapse into one :class:`~repro.runtimes._procpool.WorkerCrashError`;
* after any failure the mesh is broken beyond repair (sockets half-dead,
  epochs desynchronized), so the whole cluster is torn down — the owning
  executor relaunches a fresh mesh on the next run and accounts the
  relaunch as respawns;
* teardown runs via ``weakref.finalize`` as well, so a dropped cluster
  (or interpreter exit) reaps its ranks and removes its socket directory
  without an explicit ``close()``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import shutil
import tempfile
import time
import weakref
from multiprocessing.connection import Connection, wait as conn_wait
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.metrics import WireStats
from ..core.task_graph import TaskGraph
from ..faults import FaultSpec
from ..runtimes._procpool import WorkerCrashError, WorkerTimeoutError
from ..trace import recorder as trace_recorder
from ..trace.merge import align_offset
from .transport import HEARTBEAT_SECONDS, PeerDiedError, TRANSPORTS
from .wire import MSG_TRACE, WireError, decode

#: One rank's trace pull: (rank, clock offset in ns, buffer dump).
RankTrace = Tuple[int, int, List[Any]]

#: Deadline for the fork + address exchange + mesh connection phase.
SETUP_TIMEOUT_SECONDS = 60.0

#: Grace given to surviving ranks to report after a failure is detected.
_DRAIN_GRACE = 2.0

#: Grace given to SIGTERM / the final join during teardown (seconds).
_TERM_GRACE = 0.25
_REAP_GRACE = 1.0


def _wire_graph(g: TaskGraph) -> TaskGraph:
    """A copy of ``g`` without memoized state, cheap to pickle (same
    rationale as :func:`repro.runtimes.processes.wire_graph`)."""
    return dataclasses.replace(g)


def _reap(proc: mp.process.BaseProcess) -> None:
    """Stop one rank now, escalating terminate() -> kill()."""
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=_TERM_GRACE)
    if proc.is_alive():  # SIGTERM ignored (wedged): escalate
        proc.kill()
    proc.join(timeout=_REAP_GRACE)


def _shutdown(
    conns: List[Connection],
    procs: List[mp.process.BaseProcess],
    uds_dir: Optional[str],
) -> None:
    for conn in conns:
        try:
            conn.send(("shutdown",))
        except (BrokenPipeError, OSError):
            pass
    for proc in procs:
        proc.join(timeout=_REAP_GRACE)
    for proc in procs:
        _reap(proc)
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    if uds_dir is not None:
        shutil.rmtree(uds_dir, ignore_errors=True)


class Cluster:
    """``ranks`` connected rank processes executing epochs of task graphs.

    ``kind`` selects the transport (``"tcp"`` or ``"uds"``); ``timeout``
    is the per-run deadline in seconds (``None`` = wait forever);
    ``fault`` arms one injected fault in the matching rank's first run.
    A cluster that failed (or was closed) refuses further runs — the
    owning executor relaunches instead.
    """

    def __init__(
        self,
        ranks: int,
        kind: str,
        *,
        timeout: float | None = None,
        fault: FaultSpec | None = None,
    ) -> None:
        if ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {ranks}")
        if kind not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {kind!r}; expected one of {TRANSPORTS}"
            )
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.ranks = ranks
        self.kind = kind
        self.timeout = timeout
        self.epoch = 0
        self.dead = False
        # Supervision counters (read by the executor's fault reporting).
        self.crashes = 0
        self.timeouts = 0
        self._known: Dict[int, TaskGraph] = {}
        self._uds_dir = (
            tempfile.mkdtemp(prefix="taskbench-cluster-")
            if kind == "uds"
            else None
        )
        ctx = mp.get_context("fork")
        from .rank import rank_main  # deferred: avoid import-cycle surprises

        self._conns: List[Connection] = []
        self._procs: List[mp.process.BaseProcess] = []
        self._finalizer = weakref.finalize(
            self, _shutdown, self._conns, self._procs, self._uds_dir
        )
        try:
            for r in range(ranks):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=rank_main,
                    args=(
                        r,
                        ranks,
                        child_conn,
                        kind,
                        self._uds_dir,
                        fault if fault is not None and fault.worker == r else None,
                        # Rank-side mailbox-wait deadline: mirrors the
                        # launcher's run deadline so a lost wakeup aborts
                        # in the rank before the parent has to SIGKILL it.
                        timeout,
                    ),
                    daemon=True,
                    name=f"cluster-rank-{r}",
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            self._exchange_addresses()
        except BaseException:
            self._destroy()
            raise

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _exchange_addresses(self) -> None:
        deadline = time.monotonic() + SETUP_TIMEOUT_SECONDS
        addresses: List[Any] = [None] * self.ranks
        for r, msg in self._collect(deadline, phase="address exchange"):
            self._check_setup_reply(r, msg, "address")
            addresses[r] = msg[1]
        for conn in self._conns:
            conn.send(("peers", addresses))
        for r, msg in self._collect(deadline, phase="mesh connection"):
            self._check_setup_reply(r, msg, "ready")

    @staticmethod
    def _check_setup_reply(r: int, msg: Tuple[Any, ...], expected: str) -> None:
        if msg[0] == expected:
            return
        if msg[0] == "error":
            raise WorkerCrashError(
                f"rank {r} failed during setup: {msg[1]!r}\n{msg[2]}"
            )
        raise WorkerCrashError(
            f"rank {r} reported {msg[0]!r} while {expected!r} was expected"
        )

    def _collect(self, deadline: float | None, *, phase: str):
        """Yield one control message per rank, supervised.

        EOF from a rank raises :class:`WorkerCrashError`; missing the
        deadline raises :class:`WorkerTimeoutError`.  An ``("error", ...)``
        message is passed through to the caller.
        """
        pending: Dict[Connection, int] = {
            conn: r for r, conn in enumerate(self._conns)
        }
        while pending:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    laggards = sorted(pending.values())
                    raise WorkerTimeoutError(
                        f"ranks {laggards} missed the deadline during {phase}"
                    )
                wait_s = min(HEARTBEAT_SECONDS, remaining)
            else:
                wait_s = HEARTBEAT_SECONDS
            for conn in conn_wait(list(pending), timeout=wait_s):
                r = pending.pop(conn)  # type: ignore[index]
                try:
                    msg = conn.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerCrashError(
                        f"rank {r} died during {phase}"
                    ) from exc
                yield r, msg

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def run(
        self,
        graphs: Sequence[TaskGraph],
        *,
        validate: bool = True,
        capture: bool = False,
        trace: bool = False,
    ) -> Tuple[
        WireStats, Dict[Tuple[int, int, int], bytes], Optional[List[RankTrace]]
    ]:
        """Execute one epoch across the mesh.

        Returns the merged per-rank :class:`WireStats` delta, the
        ``{task: bytes}`` output snapshots when ``capture``, and — when
        ``trace`` — each rank's span-buffer dump with its clock-alignment
        offset (``None`` otherwise).  Any failure tears the whole cluster
        down before raising (see the module docstring): crash evidence
        raises ``WorkerCrashError``, a missed deadline
        ``WorkerTimeoutError``, and a rank-side application error (e.g. a
        ``ValidationError``) is re-raised as itself.
        """
        if self.dead or not self._finalizer.alive:
            raise RuntimeError("cluster is closed")
        self.epoch += 1
        wire = {g.graph_index: _wire_graph(g) for g in graphs}
        stale = [wire[gi] for gi in wire if self._known.get(gi) != wire[gi]]
        self._known.update({g.graph_index: g for g in stale})
        spec = {
            "epoch": self.epoch,
            "graphs": stale,
            "order": [g.graph_index for g in graphs],
            "validate": validate,
            "capture": capture,
            "trace": trace,
        }
        try:
            for conn in self._conns:
                conn.send(("run", spec))
        except (BrokenPipeError, OSError) as exc:
            self.crashes += 1
            self._destroy()
            raise WorkerCrashError(
                "a rank died before the run was dispatched"
            ) from exc
        stats, captured = self._collect_run()
        traces = self._pull_traces() if trace else None
        return stats, captured, traces

    def _collect_run(
        self,
    ) -> Tuple[WireStats, Dict[Tuple[int, int, int], bytes]]:
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        stats = WireStats()
        captured: Dict[Tuple[int, int, int], bytes] = {}
        crashed: List[int] = []
        peer_died = False
        app_error: BaseException | None = None
        pending: Dict[Connection, int] = {
            conn: r for r, conn in enumerate(self._conns)
        }
        while pending:
            if deadline is not None and time.monotonic() >= deadline:
                if crashed or peer_died or app_error is not None:
                    break  # failure already explained; stop draining
                laggards = sorted(pending.values())
                self.timeouts += 1
                self._destroy()
                raise WorkerTimeoutError(
                    f"ranks {laggards} missed the "
                    f"{self.timeout:g}s run "
                    "deadline; the cluster has been torn down (the next run "
                    "relaunches it)"
                )
            wait_s = HEARTBEAT_SECONDS
            if deadline is not None:
                wait_s = min(wait_s, max(deadline - time.monotonic(), 0.0))
            for conn in conn_wait(list(pending), timeout=wait_s):
                r = pending[conn]  # type: ignore[index]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # A true death: the rank vanished without reporting.
                    del pending[conn]  # type: ignore[arg-type]
                    crashed.append(r)
                    self.crashes += 1
                    continue
                if msg[0] == "done":
                    del pending[conn]  # type: ignore[arg-type]
                    stats = stats.merged(msg[1])
                    captured.update(msg[2])
                elif msg[0] == "error":
                    del pending[conn]  # type: ignore[arg-type]
                    exc, tb = msg[1], msg[2]
                    if isinstance(exc, PeerDiedError):
                        # Secondary evidence: a survivor aborted because a
                        # peer's socket EOFed — not a failure of rank r.
                        peer_died = True
                    elif app_error is None:
                        exc.add_note(f"rank {r} traceback:\n{tb}")
                        app_error = exc
                else:  # pragma: no cover - protocol violation
                    del pending[conn]  # type: ignore[arg-type]
                    app_error = app_error or RuntimeError(
                        f"rank {r} sent unexpected {msg[0]!r}"
                    )
            if (crashed or peer_died or app_error is not None) and pending:
                # Give the remaining ranks a bounded drain window: they
                # either finish, report the peer death, or get torn down.
                grace = time.monotonic() + _DRAIN_GRACE
                deadline = grace if deadline is None else min(deadline, grace)
        if app_error is not None:
            self._destroy()
            raise app_error
        if crashed or peer_died:
            self._destroy()
            names = f"ranks {sorted(crashed)}" if crashed else "a rank"
            raise WorkerCrashError(
                f"{names} died mid-run (socket/pipe EOF); the cluster has "
                "been torn down (the next run relaunches it)"
            )
        return stats, captured

    def _pull_traces(self) -> List[RankTrace]:
        """Drain every rank's span recorder after a successful run.

        One round trip per rank: the parent stamps ``perf_counter_ns``
        around the ``("trace",)`` request, the rank samples its own clock
        in the reply's TRACE frame, and Cristian's midpoint estimate
        (:func:`repro.trace.merge.align_offset`) aligns the rank's
        timestamps onto the parent's timeline.
        """
        deadline = time.monotonic() + SETUP_TIMEOUT_SECONDS
        out: List[RankTrace] = []
        for r, conn in enumerate(self._conns):
            try:
                t0 = trace_recorder.now()
                conn.send(("trace",))
                while not conn.poll(HEARTBEAT_SECONDS):
                    if time.monotonic() >= deadline:
                        self.timeouts += 1
                        self._destroy()
                        raise WorkerTimeoutError(
                            f"rank {r} missed the trace-collection deadline"
                        )
                msg = conn.recv()
                t1 = trace_recorder.now()
            except (EOFError, BrokenPipeError, OSError) as exc:
                self.crashes += 1
                self._destroy()
                raise WorkerCrashError(
                    f"rank {r} died during trace collection"
                ) from exc
            if msg[0] != "trace":
                self._destroy()
                raise WorkerCrashError(
                    f"rank {r} replied {msg[0]!r} to a trace pull"
                )
            decoded = decode(memoryview(msg[1]))
            if decoded[0] != MSG_TRACE:
                self._destroy()
                raise WireError("trace pull returned a non-TRACE frame")
            _, _rank, clock_ns, buffers = decoded
            out.append((r, align_offset(t0, t1, clock_ns), buffers))
        return out

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _destroy(self) -> None:
        self.dead = True
        self._finalizer()

    def close(self) -> None:
        """Shut the ranks down.  Idempotent; also runs automatically when
        the cluster is garbage-collected."""
        self._destroy()

    @property
    def alive_ranks(self) -> int:
        return sum(1 for p in self._procs if p.is_alive())


def sweep_orphaned_socket_dirs() -> List[str]:
    """Remove leftover ``taskbench-cluster-*`` socket directories whose
    launcher process is gone (best-effort hygiene, mirrors the shm
    segment sweeper).  Returns the paths removed."""
    removed = []
    tmp = tempfile.gettempdir()
    for name in os.listdir(tmp):
        if not name.startswith("taskbench-cluster-"):
            continue
        path = os.path.join(tmp, name)
        try:
            if not os.path.isdir(path):
                continue
            # A live launcher holds rank sockets open; a dir with no
            # socket bound by a live process is an orphan.  We only sweep
            # directories older than an hour to avoid racing live setups.
            if time.time() - os.path.getmtime(path) < 3600:
                continue
            shutil.rmtree(path, ignore_errors=True)
            removed.append(path)
        except OSError:  # pragma: no cover - racing another sweeper
            continue
    return removed
