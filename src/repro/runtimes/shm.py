"""Zero-copy process-pool executor over a shared-memory data plane.

Structurally the twin of :mod:`repro.runtimes.processes` — the same
timestep-phased chunking over a persistent fork-worker pool — but payloads
never cross the process boundary.  The executor owns a
:class:`~repro.core.bufpool.SharedMemorySlabPool`; every task output is
written by its worker directly into a pooled slab slot, and dependencies
are shipped to consumers as :class:`~repro.core.bufpool.PayloadRef`
handles: a few machine words per payload instead of a pickled copy.

This is the pointer-passing shim the paper's C++ runtimes get for free, and
what makes METG at small task granularities measure *runtime* overhead
rather than serialization overhead (TaskTorrent and the AMT Task Bench
study both locate the copy cliff exactly in the sub-millisecond regime).

Allocation protocol (single-owner, no cross-process locks):

* only the parent acquires, increfs, and decrefs slots; workers are pure
  readers/writers of slots the parent handed them;
* an output slot is acquired with one reference per consumer before its
  chunk is dispatched; consumers' references are dropped after the
  timestep's barrier, when every worker read is provably complete;
* slabs are pre-reserved *before* the pool forks, so workers inherit every
  segment mapping (late growth falls back to attach-by-name);
* generation tags live in the shared segments themselves, so a worker
  detects a stale handle even though its Python-side pool object is a
  fork-time snapshot.

The slab pool persists across runs of one executor instance, alongside the
worker pool: slots recycle between METG probes, and segment mappings stay
warm in the long-lived workers.  Each run asserts it returned the pool to
zero live slots — a per-run leak check on the refcounting protocol.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import time
import weakref
from multiprocessing import shared_memory
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core import fastpath as _fastpath
from ..core.bufpool import (
    PayloadRef,
    SharedMemorySlabPool,
    _attach_untracked,
    sweep_orphaned_segments,
)
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace
from ._common import (
    EV_ACQUIRE,
    EV_FINISH,
    EV_PUBLISH,
    EV_START,
    OutputStore,
    capture_output,
    consumer_count,
    events_active,
    pool_data_plane,
    record_event,
)
from .processes import (
    _PhasedProcessExecutor,
    _split,
    _WORKER_GRAPHS,
    worker_scratch,
)

#: One chunk of work: (graph index, timestep, columns, per-column input
#: handles, per-column output handles, validate).
_Chunk = Tuple[int, int, List[int], List[List[PayloadRef]], List[PayloadRef], bool]

#: Window-frame tag: distinguishes a multi-timestep fast-path frame from a
#: legacy chunk (whose first element is an int graph index).
_WINDOW = "__window__"

#: Barrier sentinel a worker publishes when its part of a window fails, so
#: peers waiting on it abort within one poll instead of spinning forever.
_ABORT = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Upper bounds on one dispatch window: timesteps per frame, and bytes of
#: task output that must stay live until the window's barrier (the parent
#: cannot recycle any slot while workers are inside the window).
_WINDOW_MAX_STEPS = 32
_WINDOW_MAX_BYTES = 4 << 20


def _run_chunk(args: _Chunk) -> int:
    """Execute a chunk of columns of one (graph, timestep) in a worker.

    Inputs arrive as pool handles (resolved — and generation-checked —
    inside ``execute_point``); each output is written in place into the
    handle the parent pre-acquired for it.  Only the column count crosses
    back.
    """
    gi, t, columns, inputs_per_column, out_refs, validate = args
    g = _WORKER_GRAPHS[gi]
    scratch = worker_scratch(g)
    traced = trace.enabled
    for i, inputs, out in zip(columns, inputs_per_column, out_refs):
        t0 = trace.begin() if traced else 0
        g.execute_point(t, i, inputs, scratch=scratch, validate=validate,
                        out=out)
        if t0:
            trace.complete("task", trace.CAT_KERNEL, t0, {"task": (gi, t, i)})
    return len(columns)


def _shm_worker_chunk(args) -> int:
    """Worker entry point: a legacy single-timestep chunk, or a fast-path
    window frame (several timesteps separated by shared-memory barriers)."""
    if args[0] == _WINDOW:
        return _run_window(args)
    return _run_chunk(args)


#: Worker-side cache of attached barrier segments: name -> [segment, view].
_BARRIERS: Dict[str, List] = {}


def _close_barrier_views() -> None:
    """Release cached barrier attachments (worker ``atexit``): the numpy
    views must drop before the segments close, or interpreter shutdown
    tears them down in arbitrary order and ``SharedMemory.__del__``
    complains about exported buffers."""
    for entry in _BARRIERS.values():
        entry[1] = None
        try:
            entry[0].close()
        except BufferError:  # pragma: no cover - view still referenced
            pass
    _BARRIERS.clear()


atexit.register(_close_barrier_views)


def _barrier_view(name: str) -> np.ndarray:
    entry = _BARRIERS.get(name)
    if entry is None:
        seg = _attach_untracked(name)
        entry = [seg, np.frombuffer(seg.buf, dtype="<u8")]
        _BARRIERS[name] = entry
    return entry[1]


class WindowAbortError(RuntimeError):
    """A peer worker failed mid-window; this worker aborted in sympathy.

    ``secondary_error`` tells the pool's failure selection that this is a
    bystander report: the peer's own exception (shipped on its pipe) is
    the root cause to surface.
    """

    secondary_error = True


def _await_peers(counters: np.ndarray, others, target: int) -> None:
    """Wait until every peer's progress counter reaches ``target``.

    The wait yields the CPU (``sched_yield`` first, then short sleeps):
    with workers packed onto few cores a busy spin would starve the very
    peer being waited for.  A peer that published :data:`_ABORT` (its
    timestep raised) aborts this worker too, and every ~250 ms laggard
    peers are liveness-checked by pid so a crashed process is detected
    without waiting for the pool's round deadline.
    """
    spins = 0
    next_liveness = time.monotonic() + 0.25
    while True:
        laggard = False
        for w, pid in others:
            c = counters[w]
            if c == _ABORT:
                raise WindowAbortError(
                    f"shared-memory window aborted by peer worker {w}"
                )
            if c < target:
                laggard = True
        if not laggard:
            return
        spins += 1
        if spins < 200:
            os.sched_yield()
        else:
            time.sleep(50e-6)
        if time.monotonic() >= next_liveness:
            for w, pid in others:
                if counters[w] < target:
                    try:
                        os.kill(pid, 0)
                    except ProcessLookupError:
                        raise WindowAbortError(
                            f"peer worker {w} (pid {pid}) died inside a "
                            "shared-memory window"
                        ) from None
            next_liveness = time.monotonic() + 0.25


def _run_window(args) -> int:
    """Execute one worker's share of a multi-timestep window.

    ``steps`` holds this worker's chunks for each timestep of the window.
    After each timestep the worker publishes its progress in the shared
    barrier segment and waits for every participant, because the next
    timestep's inputs may be slots a *peer* just wrote.  Only the final
    timestep skips the wait — the reply to the parent is that barrier.
    """
    _tag, name, my_w, participants, steps = args
    counters = _barrier_view(name)
    others = [(w, pid) for w, pid in participants if w != my_w]
    done = 0
    last = len(steps)
    try:
        for k, chunks in enumerate(steps, start=1):
            for chunk in chunks:
                done += _run_chunk(chunk)
            counters[my_w] = k
            if k < last and others:
                _await_peers(counters, others, k)
    except BaseException:
        counters[my_w] = _ABORT
        raise
    return done


def _unlink_barrier(seg: shared_memory.SharedMemory) -> None:
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    try:
        seg.close()
    except BufferError:  # pragma: no cover - view still exported
        pass


class ShmProcessPoolExecutor(_PhasedProcessExecutor):
    """Timestep-phased multiprocessing with payloads in shared-memory slabs."""

    name = "shm_processes"
    chunk_fn = staticmethod(_shm_worker_chunk)

    def __init__(self, workers: int = 2, **kwargs) -> None:
        super().__init__(workers, **kwargs)
        self._buffers: SharedMemorySlabPool | None = None
        self._barrier_seg: shared_memory.SharedMemory | None = None

    def close(self) -> None:
        super().close()
        if self._buffers is not None:
            self._buffers.close()
            self._buffers = None
        if self._barrier_seg is not None:
            _unlink_barrier(self._barrier_seg)
            self._barrier_seg = None

    def _recover(self) -> None:
        """After a supervised worker failure: reclaim every slot the
        aborted run left live (failed workers are dead, survivors drained,
        so no write can race the release) and sweep any shared-memory
        segment the fault orphaned.  The next run then starts from a
        zero-live pool instead of tripping the leak check."""
        if self._buffers is not None:
            self._buffers.release_live()
        sweep_orphaned_segments()

    def _prefork(self, graphs: Sequence[TaskGraph]) -> None:
        # Reserve the steady-state working set before forking: two
        # timestep frontiers of output slots per graph, so workers inherit
        # every segment they will touch.
        buffers = SharedMemorySlabPool()
        for g in graphs:
            buffers.reserve(g.output_bytes_per_task, 2 * g.max_width)
        self._buffers = buffers
        # Unlink the segments even if the executor is never close()d.
        weakref.finalize(self, SharedMemorySlabPool.close, buffers)
        # Window-barrier segment: one uint64 progress counter per worker,
        # reset by the parent between windows (workers are quiescent then).
        # The parent only ever writes through short-lived views (see
        # ``_execute_batched``) so the segment can close without a
        # dangling buffer export.
        # Not a payload buffer: 8 bytes of control plane per worker, so a
        # slab pool (slot refcounts, generation tags) would be pure
        # overhead here.
        seg = shared_memory.SharedMemory(  # check: allow[raw-shm]
            create=True, size=8 * self.workers
        )
        self._barrier_seg = seg
        np.frombuffer(seg.buf, dtype="<u8")[:] = 0
        weakref.finalize(self, _unlink_barrier, seg)

    def _execute(self, graphs: Sequence[TaskGraph], validate: bool) -> None:
        # Window dispatch is off while a fault is armed: injected faults
        # address (worker, round) under the one-round-per-timestep
        # protocol, and the supervision contract they test — one wedged
        # worker costs one probe — assumes rounds are independent, which
        # barrier-coupled window peers are not.
        if _fastpath.enabled() and self.fault is None:
            self._execute_batched(graphs, validate)
            return
        store = OutputStore()
        max_t = max(g.timesteps for g in graphs)
        procs = self._sync_workers(graphs)
        pool = self._buffers
        assert pool is not None
        stats_base = dataclasses.replace(pool.stats)
        for t in range(max_t):
            chunks: List[_Chunk] = []
            chunk_graphs = []
            for g in graphs:
                if t >= g.timesteps:
                    continue
                off = g.offset_at_timestep(t)
                active = list(range(off, off + g.width_at_timestep(t)))
                for cols in _split(active, self.workers):
                    in_refs = [store.gather(g, t, i) for i in cols]
                    consumers = [consumer_count(g, t, i) for i in cols]
                    out_refs = pool.acquire_batch(
                        g.output_bytes_per_task,
                        [max(c, 1) for c in consumers],
                    )
                    chunks.append(
                        (g.graph_index, t, cols, in_refs, out_refs, validate)
                    )
                    chunk_graphs.append((g, consumers))
            procs.run_round(chunks)
            for (g, consumers), (_gi, _t, cols, in_refs, out_refs, _v) in zip(
                chunk_graphs, chunks
            ):
                gi = g.graph_index
                for i, out, ncons in zip(cols, out_refs, consumers):
                    # Kernels ran in worker processes; their start/finish
                    # are surfaced here, after the barrier — the earliest
                    # point the trace can order them.
                    record_event(EV_START, (gi, t, i))
                    record_event(EV_FINISH, (gi, t, i))
                    if ncons > 0:
                        store.put((gi, t, i), out, ncons)
                    else:
                        pool.decref(out)
                # Barrier passed: every worker read of this timestep's
                # inputs is complete, so the consumers' references drop
                # and fully-read slots recycle.
                pool.decref_batch(ref for refs in in_refs for ref in refs)
        self._drain_worker_traces(procs)
        store.assert_drained()
        if pool.live_slots:
            raise RuntimeError(
                f"data-plane leak: {pool.live_slots} slots still live after "
                "the run drained"
            )
        self._data_plane = pool_data_plane(pool, base=stats_base)

    def _window_steps(self, graphs: Sequence[TaskGraph]) -> int:
        """Timesteps per dispatch window.

        Bounded by :data:`_WINDOW_MAX_BYTES` of live output slots (the
        parent can recycle nothing while workers are inside a window) and
        :data:`_WINDOW_MAX_STEPS`.
        """
        per_step = sum(
            max(g.output_bytes_per_task, 1) * g.max_width for g in graphs
        )
        return max(1, min(_WINDOW_MAX_STEPS, _WINDOW_MAX_BYTES // per_step))

    def _execute_batched(
        self, graphs: Sequence[TaskGraph], validate: bool
    ) -> None:
        """Fast-path window dispatch: several timesteps per round trip.

        Because every payload lives in a parent-assigned shared-memory
        slot, the whole schedule of a window — which slots each task reads
        and writes — is known before any task runs.  The parent therefore
        plans ``K`` timesteps up front (gathering input handles and
        acquiring output slots against its bookkeeping store), ships each
        worker ONE frame holding its chunks for all ``K`` timesteps, and
        lets the workers synchronize timestep boundaries among themselves
        through the shared barrier segment (:func:`_run_window`).  A round
        trip through the parent — two pickles, two pipe writes, and at
        least four scheduler wakeups — is paid once per window instead of
        once per timestep, which is most of the empty-kernel overhead gap
        this executor had against the thread pool.

        The legacy path (:meth:`_execute`) keeps the one-round-per-timestep
        protocol and remains the ``TASKBENCH_FASTPATH=0`` reference.
        """
        store = OutputStore()
        max_t = max(g.timesteps for g in graphs)
        procs = self._sync_workers(graphs)
        pool = self._buffers
        barrier_seg = self._barrier_seg
        assert pool is not None and barrier_seg is not None
        stats_base = dataclasses.replace(pool.stats)
        nw = self.workers
        by_index = {g.graph_index: g for g in graphs}
        window = self._window_steps(graphs)
        #: Retirement plan of one timestep: (timestep, per-task
        #: (key, output ref, consumer count) in event order, gathered
        #: input refs).
        Retire = Tuple[
            int,
            List[Tuple[Tuple[int, int, int], PayloadRef, int]],
            List[PayloadRef],
        ]
        for t0 in range(0, max_t, window):
            t_end = min(t0 + window, max_t)
            nsteps = t_end - t0
            steps: List[List[List[_Chunk]]] = [
                [[] for _ in range(nsteps)] for _ in range(nw)
            ]
            busy = [False] * nw
            retire: List[Retire] = []
            for t in range(t0, t_end):
                tasks: List[Tuple[Tuple[int, int, int], PayloadRef, int]] = []
                gathered: List[PayloadRef] = []
                for g in graphs:
                    if t >= g.timesteps:
                        continue
                    off = g.offset_at_timestep(t)
                    active = list(range(off, off + g.width_at_timestep(t)))
                    gi = g.graph_index
                    for w, cols in enumerate(_split(active, nw)):
                        if not cols:
                            continue
                        # Quiet store traffic: the entries must exist so
                        # later timesteps of this window can gather from
                        # them, but the kernels have not run yet — events
                        # and output capture happen at retire, below.
                        in_refs = [
                            store.gather(g, t, i, quiet=True) for i in cols
                        ]
                        consumers = [consumer_count(g, t, i) for i in cols]
                        out_refs = pool.acquire_batch(
                            g.output_bytes_per_task,
                            [max(c, 1) for c in consumers],
                        )
                        steps[w][t - t0].append(
                            (gi, t, cols, in_refs, out_refs, validate)
                        )
                        busy[w] = True
                        for i, out, ncons in zip(cols, out_refs, consumers):
                            tasks.append(((gi, t, i), out, ncons))
                            if ncons > 0:
                                store.put((gi, t, i), out, ncons, quiet=True)
                        for refs in in_refs:
                            gathered.extend(refs)
                retire.append((t, tasks, gathered))
            participants = tuple(
                (w, pid)
                for w, pid in enumerate(procs.pids)
                if busy[w]
            )
            # Workers are quiescent between windows; the view is transient
            # so the segment keeps no parent-side buffer export.
            np.frombuffer(barrier_seg.buf, dtype="<u8")[:] = 0
            frames: List[List] = [
                [(_WINDOW, barrier_seg.name, w, participants, steps[w])]
                if busy[w] else []
                for w in range(nw)
            ]
            procs.run_assigned(frames)
            emit = events_active()
            for t, tasks, gathered in retire:
                for key, out, ncons in tasks:
                    # Kernels ran in worker processes; their schedule
                    # events are surfaced here, after the window barrier —
                    # the earliest point the trace can order them — in
                    # program order (acquire inputs, start, finish,
                    # publish), one timestep after another.
                    if emit:
                        gi, _t, i = key
                        if t > 0:
                            g = by_index[gi]
                            for j in g.dependency_columns(t, i):
                                record_event(
                                    EV_ACQUIRE, key, (gi, t - 1, j)
                                )
                        record_event(EV_START, key)
                        record_event(EV_FINISH, key)
                        if ncons > 0:
                            record_event(EV_PUBLISH, key)
                    if ncons > 0:
                        # The buffer now holds the kernel's output: this is
                        # the publish point the conformance capture sees.
                        capture_output(key, out)
                    else:
                        pool.decref(out)
                # Window barrier passed: every worker read of this window's
                # inputs is complete, so the consumers' references drop and
                # fully-read slots recycle.
                pool.decref_batch(gathered)
        self._drain_worker_traces(procs)
        store.assert_drained()
        if pool.live_slots:
            raise RuntimeError(
                f"data-plane leak: {pool.live_slots} slots still live after "
                "the run drained"
            )
        self._data_plane = pool_data_plane(pool, base=stats_base)
