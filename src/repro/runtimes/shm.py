"""Zero-copy process-pool executor over a shared-memory data plane.

Structurally the twin of :mod:`repro.runtimes.processes` — the same
timestep-phased chunking over a persistent fork-worker pool — but payloads
never cross the process boundary.  The executor owns a
:class:`~repro.core.bufpool.SharedMemorySlabPool`; every task output is
written by its worker directly into a pooled slab slot, and dependencies
are shipped to consumers as :class:`~repro.core.bufpool.PayloadRef`
handles: a few machine words per payload instead of a pickled copy.

This is the pointer-passing shim the paper's C++ runtimes get for free, and
what makes METG at small task granularities measure *runtime* overhead
rather than serialization overhead (TaskTorrent and the AMT Task Bench
study both locate the copy cliff exactly in the sub-millisecond regime).

Allocation protocol (single-owner, no cross-process locks):

* only the parent acquires, increfs, and decrefs slots; workers are pure
  readers/writers of slots the parent handed them;
* an output slot is acquired with one reference per consumer before its
  chunk is dispatched; consumers' references are dropped after the
  timestep's barrier, when every worker read is provably complete;
* slabs are pre-reserved *before* the pool forks, so workers inherit every
  segment mapping (late growth falls back to attach-by-name);
* generation tags live in the shared segments themselves, so a worker
  detects a stale handle even though its Python-side pool object is a
  fork-time snapshot.

The slab pool persists across runs of one executor instance, alongside the
worker pool: slots recycle between METG probes, and segment mappings stay
warm in the long-lived workers.  Each run asserts it returned the pool to
zero live slots — a per-run leak check on the refcounting protocol.
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import List, Sequence, Tuple

from ..core.bufpool import (
    PayloadRef,
    SharedMemorySlabPool,
    sweep_orphaned_segments,
)
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace
from ._common import (
    EV_FINISH,
    EV_START,
    OutputStore,
    consumer_count,
    pool_data_plane,
    record_event,
)
from .processes import (
    _PhasedProcessExecutor,
    _split,
    _WORKER_GRAPHS,
    worker_scratch,
)

#: One chunk of work: (graph index, timestep, columns, per-column input
#: handles, per-column output handles, validate).
_Chunk = Tuple[int, int, List[int], List[List[PayloadRef]], List[PayloadRef], bool]


def _shm_worker_chunk(args: _Chunk) -> int:
    """Execute a chunk of columns of one (graph, timestep) in a worker.

    Inputs arrive as pool handles (resolved — and generation-checked —
    inside ``execute_point``); each output is written in place into the
    handle the parent pre-acquired for it.  Only the column count crosses
    back.
    """
    gi, t, columns, inputs_per_column, out_refs, validate = args
    g = _WORKER_GRAPHS[gi]
    scratch = worker_scratch(g)
    traced = trace.enabled
    for i, inputs, out in zip(columns, inputs_per_column, out_refs):
        t0 = trace.begin() if traced else 0
        g.execute_point(t, i, inputs, scratch=scratch, validate=validate,
                        out=out)
        if t0:
            trace.complete("task", trace.CAT_KERNEL, t0, {"task": (gi, t, i)})
    return len(columns)


class ShmProcessPoolExecutor(_PhasedProcessExecutor):
    """Timestep-phased multiprocessing with payloads in shared-memory slabs."""

    name = "shm_processes"
    chunk_fn = staticmethod(_shm_worker_chunk)

    def __init__(self, workers: int = 2, **kwargs) -> None:
        super().__init__(workers, **kwargs)
        self._buffers: SharedMemorySlabPool | None = None

    def close(self) -> None:
        super().close()
        if self._buffers is not None:
            self._buffers.close()
            self._buffers = None

    def _recover(self) -> None:
        """After a supervised worker failure: reclaim every slot the
        aborted run left live (failed workers are dead, survivors drained,
        so no write can race the release) and sweep any shared-memory
        segment the fault orphaned.  The next run then starts from a
        zero-live pool instead of tripping the leak check."""
        if self._buffers is not None:
            self._buffers.release_live()
        sweep_orphaned_segments()

    def _prefork(self, graphs: Sequence[TaskGraph]) -> None:
        # Reserve the steady-state working set before forking: two
        # timestep frontiers of output slots per graph, so workers inherit
        # every segment they will touch.
        buffers = SharedMemorySlabPool()
        for g in graphs:
            buffers.reserve(g.output_bytes_per_task, 2 * g.max_width)
        self._buffers = buffers
        # Unlink the segments even if the executor is never close()d.
        weakref.finalize(self, SharedMemorySlabPool.close, buffers)

    def _execute(self, graphs: Sequence[TaskGraph], validate: bool) -> None:
        store = OutputStore()
        max_t = max(g.timesteps for g in graphs)
        procs = self._sync_workers(graphs)
        pool = self._buffers
        assert pool is not None
        stats_base = dataclasses.replace(pool.stats)
        for t in range(max_t):
            chunks: List[_Chunk] = []
            chunk_graphs = []
            for g in graphs:
                if t >= g.timesteps:
                    continue
                off = g.offset_at_timestep(t)
                active = list(range(off, off + g.width_at_timestep(t)))
                for cols in _split(active, self.workers):
                    in_refs = [store.gather(g, t, i) for i in cols]
                    consumers = [consumer_count(g, t, i) for i in cols]
                    out_refs = pool.acquire_batch(
                        g.output_bytes_per_task,
                        [max(c, 1) for c in consumers],
                    )
                    chunks.append(
                        (g.graph_index, t, cols, in_refs, out_refs, validate)
                    )
                    chunk_graphs.append((g, consumers))
            procs.run_round(chunks)
            for (g, consumers), (_gi, _t, cols, in_refs, out_refs, _v) in zip(
                chunk_graphs, chunks
            ):
                gi = g.graph_index
                for i, out, ncons in zip(cols, out_refs, consumers):
                    # Kernels ran in worker processes; their start/finish
                    # are surfaced here, after the barrier — the earliest
                    # point the trace can order them.
                    record_event(EV_START, (gi, t, i))
                    record_event(EV_FINISH, (gi, t, i))
                    if ncons > 0:
                        store.put((gi, t, i), out, ncons)
                    else:
                        pool.decref(out)
                # Barrier passed: every worker read of this timestep's
                # inputs is complete, so the consumers' references drop
                # and fully-read slots recycle.
                pool.decref_batch(ref for refs in in_refs for ref in refs)
        self._drain_worker_traces(procs)
        store.assert_drained()
        if pool.live_slots:
            raise RuntimeError(
                f"data-plane leak: {pool.live_slots} slots still live after "
                "the run drained"
            )
        self._data_plane = pool_data_plane(pool, base=stats_base)
