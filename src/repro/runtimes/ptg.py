"""Parameterized-task-graph executor (PaRSEC PTG analogue, paper §3.8).

In the PTG model the task graph is expanded from its algebraic description
*before* execution ("this compressed representation is expanded into a full
task graph by a source-to-source compiler").  Here the entire DAG — task
table, dependency counts, successor lists — is compiled into flat NumPy
arrays up front; the execution loop then runs with no per-task graph queries
at all, the analogue of PTG's elimination of dynamic discovery cost.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.executor_base import Executor
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace
from ._common import OutputStore, ScratchPool, run_point, task_keys


@dataclass
class ExpandedGraph:
    """Flat-array representation of the full DAG of a set of graphs.

    ``task_table[k] = (graph_index, t, i)``; CSR-style successor lists in
    ``succ_offsets``/``succ_targets``; ``dep_counts[k]`` the number of
    inputs of task ``k``.
    """

    task_table: np.ndarray  # (n, 3) int64
    dep_counts: np.ndarray  # (n,) int64
    succ_offsets: np.ndarray  # (n+1,) int64
    succ_targets: np.ndarray  # (edges,) int64

    @property
    def num_tasks(self) -> int:
        return len(self.task_table)

    @property
    def num_edges(self) -> int:
        return len(self.succ_targets)

    def successors(self, k: int) -> np.ndarray:
        return self.succ_targets[self.succ_offsets[k] : self.succ_offsets[k + 1]]


def expand(graphs: Sequence[TaskGraph]) -> ExpandedGraph:
    """Expand the algebraic graph description into a materialized DAG."""
    by_index = {g.graph_index: g for g in graphs}
    keys = list(task_keys(graphs))
    index: Dict[tuple, int] = {key: k for k, key in enumerate(keys)}
    n = len(keys)
    task_table = np.array(keys, dtype=np.int64).reshape(n, 3)
    dep_counts = np.zeros(n, dtype=np.int64)
    succ_lists: List[List[int]] = [[] for _ in range(n)]
    for k, (gi, t, i) in enumerate(keys):
        g = by_index[gi]
        dep_counts[k] = g.num_dependencies(t, i)
        for j in g.reverse_dependency_points(t, i):
            succ_lists[k].append(index[(gi, t + 1, j)])
    succ_offsets = np.zeros(n + 1, dtype=np.int64)
    succ_offsets[1:] = np.cumsum([len(s) for s in succ_lists])
    succ_targets = (
        np.concatenate([np.asarray(s, dtype=np.int64) for s in succ_lists])
        if succ_offsets[-1]
        else np.zeros(0, dtype=np.int64)
    )
    return ExpandedGraph(task_table, dep_counts, succ_offsets, succ_targets)


class PTGExecutor(Executor):
    """Worker-pool execution of a fully pre-expanded DAG."""

    name = "ptg"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    @property
    def cores(self) -> int:
        return self.workers

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        by_index = {g.graph_index: g for g in graphs}
        t0 = trace.begin() if trace.enabled else 0
        dag = expand(graphs)
        if t0:
            trace.complete(
                "ptg.expand", trace.CAT_DISPATCH, t0,
                {"tasks": dag.num_tasks, "edges": dag.num_edges},
            )
        store = OutputStore()
        scratch = ScratchPool(graphs)

        cv = threading.Condition()
        pending = dag.dep_counts.copy()
        ready: List[int] = list(np.flatnonzero(pending == 0))
        state = {"remaining": dag.num_tasks, "error": None}

        def worker() -> None:
            try:
                while True:
                    with cv:
                        while True:
                            if state["error"] is not None:
                                return
                            if ready:
                                k = ready.pop()
                                break
                            if state["remaining"] == 0:
                                return
                            cv.wait(timeout=0.05)
                    gi, t, i = (int(x) for x in dag.task_table[k])
                    run_point(store, scratch, by_index[gi], t, i, validate=validate)
                    with cv:
                        state["remaining"] -= 1
                        for succ in dag.successors(k):
                            pending[succ] -= 1
                            if pending[succ] == 0:
                                ready.append(int(succ))
                        cv.notify_all()
            except BaseException as exc:  # noqa: BLE001 - propagated below
                with cv:
                    if state["error"] is None:
                        state["error"] = exc
                    cv.notify_all()

        threads = [
            threading.Thread(target=worker, name=f"ptg-worker-{w}", daemon=True)
            for w in range(self.workers)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if state["error"] is not None:
            raise state["error"]
        store.assert_drained()
