"""Inline sequential executor.

The limit case of a runtime with no scheduling machinery at all: tasks run
one after another in timestep order on the calling thread.  Analogous to the
paper's observation that the MPI shim "simply executes tasks one after
another in alternation with communication phases" — minus the communication.
"""

from __future__ import annotations

from typing import Sequence

from ..core.executor_base import Executor
from ..core.task_graph import TaskGraph
from ._common import OutputStore, ScratchPool, run_point, task_keys


class SerialExecutor(Executor):
    """Run every task inline on the calling thread, in program order."""

    name = "serial"
    isolation = "serial"

    @property
    def cores(self) -> int:
        return 1

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        by_index = {g.graph_index: g for g in graphs}
        store = OutputStore()
        scratch = ScratchPool(graphs)
        for gi, t, i in task_keys(graphs):
            run_point(store, scratch, by_index[gi], t, i, validate=validate)
        store.assert_drained()
