"""Real runtime implementations of the Task Bench interface.

One executor per runtime paradigm evaluated in the paper (§3): inline
serial execution, bulk-synchronous and point-to-point message passing,
dependency-counted thread tasking, sequential task flow with runtime
dependence inference, ahead-of-time graph expansion, message-driven actors,
a centralized controller, timestep-phased process offload, and — via
:mod:`repro.cluster` — distributed-memory rank processes over real
sockets (``cluster_tcp`` / ``cluster_uds``).

All executors drive the same core library (``repro.core``) through the same
``execute_point`` entry point; every graph validates its own execution.
"""

from .actors import ActorExecutor
from .async_rt import AsyncioExecutor
from .bulk_sync import BulkSyncExecutor
from .centralized import CentralizedExecutor
from .cluster_rt import ClusterTCPExecutor, ClusterUDSExecutor
from .dataflow import DataflowExecutor, STFScheduler
from .futures_rt import FuturesExecutor
from .p2p import Mailbox, P2PExecutor, block_owner
from .processes import ProcessPoolExecutor
from .ptg import ExpandedGraph, PTGExecutor, expand
from .registry import (
    available_runtimes,
    describe_runtimes,
    make_executor,
    runtime_core_cost,
    runtime_isolation,
)
from .serial import SerialExecutor
from .threads import ThreadPoolTaskExecutor
from ._common import OutputStore, ScratchPool
from ._procpool import ForkWorkerPool, WorkerCrashError, WorkerTimeoutError

__all__ = [
    "ActorExecutor",
    "AsyncioExecutor",
    "BulkSyncExecutor",
    "CentralizedExecutor",
    "ClusterTCPExecutor",
    "ClusterUDSExecutor",
    "DataflowExecutor",
    "ExpandedGraph",
    "ForkWorkerPool",
    "FuturesExecutor",
    "Mailbox",
    "OutputStore",
    "P2PExecutor",
    "PTGExecutor",
    "ProcessPoolExecutor",
    "STFScheduler",
    "ScratchPool",
    "SerialExecutor",
    "ThreadPoolTaskExecutor",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "available_runtimes",
    "block_owner",
    "describe_runtimes",
    "expand",
    "make_executor",
    "runtime_core_cost",
    "runtime_isolation",
]
