"""Bulk-synchronous executor (MPI bulk-sync analogue, paper §3.4).

Distinct computation and communication phases with a barrier between
timesteps: all tasks of timestep ``t`` complete before any task of ``t + 1``
starts.  The phase structure is what makes this model vulnerable to load
imbalance (paper §5.7: "the MPI implementation of Task Bench, with its
distinct computation and communication phases, suffers the most").
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from ..core.bufpool import HeapSlabPool
from ..core.executor_base import Executor
from ..core.metrics import DataPlaneStats
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace
from ._common import OutputStore, ScratchPool, pool_data_plane, run_point


class BulkSyncExecutor(Executor):
    """Thread-pool execution with a barrier after every timestep."""

    name = "bulk_sync"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._data_plane: DataPlaneStats | None = None

    @property
    def cores(self) -> int:
        return self.workers

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        store = OutputStore()
        scratch = ScratchPool(graphs)
        # Same address space, so a heap-backed slab pool: output buffers
        # recycle across timesteps instead of being reallocated per task.
        buffers = HeapSlabPool()
        max_t = max(g.timesteps for g in graphs)
        try:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                for t in range(max_t):
                    t0 = trace.begin() if trace.enabled else 0
                    futures = []
                    for g in graphs:
                        if t >= g.timesteps:
                            continue
                        off = g.offset_at_timestep(t)
                        for i in range(off, off + g.width_at_timestep(t)):
                            futures.append(
                                pool.submit(
                                    run_point, store, scratch, g, t, i,
                                    validate=validate, pool=buffers,
                                )
                            )
                    # The barrier: every task of this timestep must finish
                    # (and any failure propagate) before the next timestep
                    # launches.
                    for f in futures:
                        f.result()
                    if t0:
                        # The phase span: submit + barrier for one timestep,
                        # the idle-gap signature of the bulk-sync model.
                        trace.complete(
                            "timestep", trace.CAT_DISPATCH, t0, {"t": t}
                        )
            store.assert_drained()
            self._data_plane = pool_data_plane(buffers)
        finally:
            buffers.close()
