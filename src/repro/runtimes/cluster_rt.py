"""Distributed-memory executors (MPI analogue, paper §3.4).

``cluster_tcp`` and ``cluster_uds`` run each task graph across N
independent rank *processes* connected by real sockets — the
:mod:`repro.cluster` subsystem: block-partitioned columns, timestep-major
rank loops, non-blocking tagged sends and blocking tagged receives over a
binary wire protocol.  This is the repo's closest analogue to the paper's
MPI implementation; the thread-based :mod:`repro.runtimes.p2p` keeps the
same communication structure inside one address space.

This module is only the *shim* between the :class:`Executor` contract and
the cluster launcher.  The mesh is launched lazily on the first run and
kept warm across runs of the same executor instance (a METG sweep re-runs
one executor dozens of times; paying fork + mesh connection per probe
would swamp the measurement), with the same graph-delta broadcast and
cache-coherence rules as the process executors.

Supervision mirrors the fork pool's semantics: a killed rank surfaces as
:class:`~repro.runtimes._procpool.WorkerCrashError` (detected through
control-pipe EOF *and* peer-socket EOF), a wedged one as
:class:`~repro.runtimes._procpool.WorkerTimeoutError` once the per-run
deadline fires.  Unlike the fork pool, a broken mesh cannot be healed
rank-by-rank — sockets are half-dead and epochs desynchronized — so a
failure tears the whole cluster down and the next run relaunches it; the
relaunch is accounted as ``workers`` respawns.

Run observability: each run's merged :class:`~repro.core.metrics.WireStats`
(bytes and messages on the wire, serialize/decode time) is attached to the
run's :class:`~repro.core.metrics.DataPlaneStats`.  Kernels execute in the
rank processes, so the parent surfaces the schedule to the happens-before
audit by replaying its deterministic timestep-major order, and forwards
rank-captured output snapshots to the conformance capture sink.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Dict, Sequence, Tuple

import numpy as np

from ..core.executor_base import Executor
from ..core.metrics import DataPlaneStats, FaultStats
from ..core.task_graph import TaskGraph
from ..faults import FaultSpec, default_timeout, fault_from_env
from ..trace import recorder as trace
from ._common import (
    EV_ACQUIRE,
    EV_FINISH,
    EV_PUBLISH,
    EV_START,
    capture_active,
    capture_output,
    consumer_count,
    record_event,
    trace_recorder,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.launcher import Cluster


class _ClusterExecutor(Executor):
    """Shared machinery of the socket-mesh executors: a lazily launched,
    persistent :class:`~repro.cluster.launcher.Cluster` plus supervision
    accounting.

    ``timeout`` is the per-run deadline forwarded to the launcher
    (default: the ``TASKBENCH_TIMEOUT`` environment variable, else no
    deadline); ``fault`` arms one injected fault in the first mesh launch
    (default: ``TASKBENCH_INJECT_FAULT``) — for cluster executors the
    fault's ``worker`` is the rank index and ``round_index`` the timestep
    of the rank's first run."""

    isolation = "cluster"

    #: Transport kind forwarded to the launcher (set by subclass).
    transport: ClassVar[str]

    def __init__(
        self,
        workers: int = 2,
        *,
        timeout: float | None = None,
        fault: FaultSpec | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.timeout = timeout if timeout is not None else default_timeout()
        self.fault = fault if fault is not None else fault_from_env()
        self._data_plane: DataPlaneStats | None = None
        self._fault_stats: FaultStats | None = None
        self._cluster: "Cluster | None" = None  # lazy: no fork before a run
        self._launches = 0
        # Supervision counters carried over from meshes already torn down.
        self._fault_base = FaultStats()

    @property
    def cores(self) -> int:
        return self.workers

    def close(self) -> None:
        """Release the rank processes.  Optional — the mesh also tears
        itself down when the executor is garbage-collected."""
        self._drop_cluster()

    def _drop_cluster(self) -> None:
        if self._cluster is not None:
            self._fault_base = self._fault_base.merged(
                FaultStats(
                    worker_crashes=self._cluster.crashes,
                    worker_timeouts=self._cluster.timeouts,
                )
            )
            self._cluster.close()
            self._cluster = None

    def heal(self) -> int:
        """Drop the mesh if any rank died while it sat idle.

        A socket mesh cannot be healed rank-by-rank (sockets are
        half-dead, epochs desynchronized — see the module docstring), so
        healing means condemning the broken mesh: the next run relaunches
        a fresh one.  Returns the number of ranks the drop discarded.
        """
        cluster = self._cluster
        if cluster is None:
            return 0
        if cluster.alive_ranks == self.workers and not cluster.dead:
            return 0
        self._drop_cluster()
        return self.workers

    def _snapshot_faults(self) -> FaultStats | None:
        """Cumulative supervision counters (torn-down meshes + live mesh);
        ``None`` while no fault has ever been observed."""
        stats = self._fault_base
        cluster = self._cluster
        if cluster is not None:
            stats = stats.merged(
                FaultStats(
                    worker_crashes=cluster.crashes,
                    worker_timeouts=cluster.timeouts,
                )
            )
        return stats if stats.any else None

    def _ensure_cluster(self) -> "Cluster":
        """Launch (or reuse) the rank mesh.

        Injected faults attach to the first launch only, so a mesh
        relaunched after a failure runs clean — the same transient-fault
        semantics as the fork pool's worker generations.  A relaunch
        replaces all ``workers`` ranks and is accounted as that many
        respawns."""
        if self._cluster is None:
            from ..cluster.launcher import Cluster

            first = self._launches == 0
            if not first:
                self._fault_base = self._fault_base.merged(
                    FaultStats(workers_respawned=self.workers)
                )
            self._cluster = Cluster(
                self.workers,
                type(self).transport,
                timeout=self.timeout,
                fault=self.fault if first else None,
            )
            self._launches += 1
        return self._cluster

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        try:
            self._execute(graphs, validate)
        except BaseException:
            # Any failure — supervised or not — leaves the mesh broken
            # (the launcher already killed the ranks on supervised
            # errors): drop the handle so the next run relaunches.
            self._drop_cluster()
            raise
        finally:
            self._fault_stats = self._snapshot_faults()

    def _execute(self, graphs: Sequence[TaskGraph], validate: bool) -> None:
        cluster = self._ensure_cluster()
        traced = trace.enabled
        t0 = trace.begin() if traced else 0
        wire, captured, rank_traces = cluster.run(
            graphs, validate=validate, capture=capture_active(), trace=traced
        )
        if t0:
            trace.complete(
                "cluster.run", trace.CAT_DISPATCH, t0, {"ranks": self.workers}
            )
        for r, offset_ns, buffers in rank_traces or []:
            trace.ingest(f"rank-{r}", buffers, offset_ns=offset_ns)
        self._data_plane = DataPlaneStats(wire=wire)
        self._surface_run(graphs, captured)

    def _surface_run(
        self,
        graphs: Sequence[TaskGraph],
        captured: Dict[Tuple[int, int, int], bytes],
    ) -> None:
        """Feed the parent-side observability hooks after a run.

        Kernels ran in the rank processes; the earliest point their
        schedule can be surfaced to an installed trace recorder is here,
        once the run completed — the replay follows the deterministic
        timestep-major order the ranks execute, which is a valid
        linearization of the real schedule (ranks cannot run timestep
        ``t+1`` of a column before its timestep-``t`` inputs were
        published).  Captured output snapshots are forwarded to the
        conformance sink bytewise."""
        if trace_recorder() is not None:
            for t in range(max(g.timesteps for g in graphs)):
                for g in graphs:
                    if t >= g.timesteps:
                        continue
                    off = g.offset_at_timestep(t)
                    for i in range(off, off + g.width_at_timestep(t)):
                        key = (g.graph_index, t, i)
                        record_event(EV_START, key)
                        if t > 0:
                            for j in g.dependency_points(t, i):
                                record_event(
                                    EV_ACQUIRE, key, (g.graph_index, t - 1, j)
                                )
                        record_event(EV_FINISH, key)
                        if consumer_count(g, t, i) > 0:
                            record_event(EV_PUBLISH, key)
        for key, data in sorted(captured.items()):
            capture_output(key, np.frombuffer(data, dtype=np.uint8))


class ClusterTCPExecutor(_ClusterExecutor):
    """Rank processes exchanging payloads over loopback TCP sockets."""

    name = "cluster_tcp"
    transport = "tcp"


class ClusterUDSExecutor(_ClusterExecutor):
    """Rank processes exchanging payloads over Unix-domain sockets."""

    name = "cluster_uds"
    transport = "uds"
