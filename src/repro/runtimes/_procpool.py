"""Minimal persistent fork-worker pool for the process-based executors.

``multiprocessing.Pool`` routes every dispatch through two helper threads
and a pair of locked shared queues; at the sub-millisecond granularities
METG probes, that machinery — not the payload movement — dominates each
timestep's barrier.  This pool is deliberately thin:

* ``workers`` processes forked once and **reused across runs** (fork cost
  is paid once per executor, not once per METG probe);
* one duplex pipe per worker, one message per worker per round, and no
  auxiliary threads: a round is "send each worker its chunk list, then
  collect each worker's results";
* workers are daemonic and additionally reaped by a ``weakref.finalize``
  on the owning pool, so dropping the last reference (or process exit)
  cleans them up without an explicit ``close()``.

The worker function is fixed at construction, so each round ships only the
chunks themselves.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
import weakref
from multiprocessing.connection import Connection
from typing import Any, Callable, List, Sequence, Tuple


class WorkerCrashError(RuntimeError):
    """A worker process died without reporting a Python exception."""


def _worker_main(
    conn: Connection,
    fn: Callable[[Any], Any],
    initializer: Callable[..., None] | None,
    initargs: Tuple[Any, ...],
) -> None:
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        try:
            if isinstance(msg, tuple):  # control: (func, args) broadcast
                func, fargs = msg
                results = func(*fargs)
            else:  # a round's chunk list
                results = [fn(c) for c in msg]
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            tb = traceback.format_exc()
            try:
                conn.send(("error", exc, tb))
            except Exception:  # unpicklable exception: ship a summary
                conn.send(("error", WorkerCrashError(repr(exc)), tb))
            continue
        conn.send(("ok", results))
    conn.close()


def _shutdown(conns: List[Connection], procs: List[mp.process.BaseProcess]) -> None:
    for conn in conns:
        try:
            conn.send(None)
        except (BrokenPipeError, OSError):
            pass
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    for proc in procs:
        proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - worker wedged
            proc.terminate()
            proc.join(timeout=1.0)


class ForkWorkerPool:
    """``workers`` forked processes executing rounds of chunk lists."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        workers: int,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: Tuple[Any, ...] = (),
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        ctx = mp.get_context("fork")
        conns: List[Connection] = []
        procs: List[mp.process.BaseProcess] = []
        for _ in range(workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, fn, initializer, initargs),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        self.workers = workers
        self._conns = conns
        self._procs = procs
        self._finalizer = weakref.finalize(self, _shutdown, conns, procs)

    def run_round(self, chunks: Sequence[Any]) -> List[Any]:
        """Execute ``chunks`` across the workers; a barrier — returns once
        every chunk of the round completed, in input order."""
        if not self._finalizer.alive:
            raise RuntimeError("worker pool is closed")
        n = self.workers
        assigned: List[List[Any]] = [[] for _ in range(n)]
        order: List[List[int]] = [[] for _ in range(n)]
        for k, chunk in enumerate(chunks):
            assigned[k % n].append(chunk)
            order[k % n].append(k)
        active = [w for w in range(n) if assigned[w]]
        try:
            for w in active:
                self._conns[w].send(assigned[w])
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashError("a worker process died mid-send") from exc
        results: List[Any] = [None] * len(chunks)
        failure: BaseException | None = None
        for w in active:
            try:
                status, *payload = self._conns[w].recv()
            except (EOFError, OSError) as exc:
                raise WorkerCrashError(
                    f"worker {w} died without reporting an exception"
                ) from exc
            if status == "error":
                exc, tb = payload
                exc.add_note(f"worker {w} traceback:\n{tb}")
                failure = failure or exc
            else:
                for k, value in zip(order[w], payload[0]):
                    results[k] = value
        if failure is not None:
            raise failure
        return results

    def broadcast(self, func: Callable[..., Any], *args: Any) -> List[Any]:
        """Run ``func(*args)`` once in *every* worker; a barrier.

        Used for worker-state maintenance (e.g. refreshing per-process
        graph caches) that must reach all workers, not just the ones a
        round's chunk assignment happens to touch.
        """
        if not self._finalizer.alive:
            raise RuntimeError("worker pool is closed")
        try:
            for conn in self._conns:
                conn.send((func, args))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashError("a worker process died mid-send") from exc
        out: List[Any] = []
        failure: BaseException | None = None
        for w, conn in enumerate(self._conns):
            try:
                status, *payload = conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerCrashError(
                    f"worker {w} died without reporting an exception"
                ) from exc
            if status == "error":
                exc, tb = payload
                exc.add_note(f"worker {w} traceback:\n{tb}")
                failure = failure or exc
            else:
                out.append(payload[0])
        if failure is not None:
            raise failure
        return out

    def close(self) -> None:
        """Shut the workers down.  Idempotent; also runs automatically when
        the pool is garbage-collected."""
        self._finalizer()
