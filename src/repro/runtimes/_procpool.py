"""Supervised persistent fork-worker pool for the process-based executors.

``multiprocessing.Pool`` routes every dispatch through two helper threads
and a pair of locked shared queues; at the sub-millisecond granularities
METG probes, that machinery — not the payload movement — dominates each
timestep's barrier.  This pool is deliberately thin:

* ``workers`` processes forked once and **reused across runs** (fork cost
  is paid once per executor, not once per METG probe);
* one duplex pipe per worker, one message per worker per round, and no
  auxiliary threads: a round is "send each worker its chunk list, then
  collect each worker's results";
* workers are daemonic and additionally reaped by a ``weakref.finalize``
  on the owning pool, so dropping the last reference (or process exit)
  cleans them up without an explicit ``close()``.

On top of that the pool is **supervised** — the fault-tolerance layer the
METG methodology needs (one wedged worker must cost one probe, not the
sweep):

* receives are ``poll``-based with a configurable per-round deadline
  (``timeout``) and a short heartbeat interval, so a wedged worker
  surfaces as :class:`WorkerTimeoutError` and a killed one as
  :class:`WorkerCrashError` instead of an infinite ``recv`` hang;
* a worker that misses its deadline is killed with terminate→kill
  escalation, and the round's surviving workers are drained so the pipes
  stay in protocol sync;
* dead workers are respawned *in place* by :meth:`heal` — the pool object
  (and the owning executor's warm state) survives the fault; respawned
  workers boot from the pool's current ``initargs``, which the executor
  keeps pointed at its known-graph set;
* injected faults (:mod:`repro.faults`) attach to the *first* generation
  of a chosen worker only, so healed pools run clean — transient-fault
  semantics by construction.

The worker function is fixed at construction, so each round ships only the
chunks themselves.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
import weakref
from multiprocessing.connection import Connection
from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

from ..faults import FaultSpec, apply_fault
from ..trace import recorder as trace

#: Liveness-check interval while waiting on a worker reply (seconds).
HEARTBEAT_SECONDS = 0.05

#: Grace given to SIGTERM before escalating to SIGKILL (seconds).
_TERM_GRACE = 0.25

#: Grace given to the final join after SIGKILL (seconds).
_REAP_GRACE = 1.0

#: Minimum time allowed for draining a round's surviving workers after a
#: crash/timeout, so their pending replies leave the pipes (seconds).
_DRAIN_GRACE = 0.5


class WorkerCrashError(RuntimeError):
    """A worker process died without reporting a Python exception."""


class WorkerTimeoutError(RuntimeError):
    """A worker missed the pool's per-round deadline (wedged or starved);
    the offending worker has been killed and can be respawned via
    :meth:`ForkWorkerPool.heal`."""


def _worker_main(
    conn: Connection,
    fn: Callable[[Any], Any],
    initializer: Callable[..., None] | None,
    initargs: Tuple[Any, ...],
    fault: FaultSpec | None,
) -> None:
    # A child forked mid-capture inherits the parent's recorder (and its
    # buffered history); discard it — the parent enables worker-side
    # tracing explicitly via a worker_begin broadcast.
    trace.fork_reset()
    # The child end of the pipe is closed in a finally: even an
    # initializer crash EOFs the parent's pipe instead of leaving it
    # blocked on a worker that will never reply.
    try:
        if initializer is not None:
            initializer(*initargs)
        rounds = 0
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:
                break
            try:
                if isinstance(msg, tuple):  # control: (func, args) broadcast
                    func, fargs = msg
                    results = func(*fargs)
                else:  # a round's chunk list
                    if fault is not None and rounds == fault.round_index:
                        apply_fault(fault)  # crash/wedge never return
                    rounds += 1
                    results = [fn(c) for c in msg]
            except BaseException as exc:  # noqa: BLE001 - shipped to the parent
                tb = traceback.format_exc()
                try:
                    conn.send(("error", exc, tb))
                except Exception:  # unpicklable exception: ship a summary
                    conn.send(("error", WorkerCrashError(repr(exc)), tb))
                continue
            conn.send(("ok", results))
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


def _reap(proc: mp.process.BaseProcess) -> None:
    """Stop one worker now, escalating terminate() -> kill() for a worker
    that ignores (or cannot service) SIGTERM."""
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=_TERM_GRACE)
    if proc.is_alive():  # SIGTERM ignored: escalate to SIGKILL
        proc.kill()
    proc.join(timeout=_REAP_GRACE)


def _shutdown(conns: List[Connection], procs: List[mp.process.BaseProcess]) -> None:
    for conn in conns:
        try:
            conn.send(None)
        except (BrokenPipeError, OSError):
            pass
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    for proc in procs:
        # Cooperative exit first (the sentinel/EOF above ends the loop),
        # then terminate() -> kill() escalation for anything still alive.
        proc.join(timeout=_REAP_GRACE)
        _reap(proc)


class ForkWorkerPool:
    """``workers`` forked processes executing rounds of chunk lists.

    ``timeout`` is the per-round deadline in seconds (``None`` = wait
    forever, the pre-supervision behavior); ``fault`` arms one injected
    fault on the first generation of one worker (see :mod:`repro.faults`).
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        workers: int,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: Tuple[Any, ...] = (),
        timeout: float | None = None,
        fault: FaultSpec | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.workers = workers
        self.timeout = timeout
        self._fn = fn
        self._initializer = initializer
        self._initargs = initargs
        self._ctx = mp.get_context("fork")
        # Supervision counters (read by the executors' fault reporting).
        self.crashes = 0
        self.timeouts = 0
        self.respawns = 0
        self._dead: Set[int] = set()
        # The finalizer closes over these list objects; _spawn mutates them
        # in place so respawned workers stay covered.
        conns: List[Connection] = [None] * workers  # type: ignore[list-item]
        procs: List[mp.process.BaseProcess] = [None] * workers  # type: ignore[list-item]
        self._conns = conns
        self._procs = procs
        for w in range(workers):
            self._spawn(w, fault if fault is not None and fault.worker == w else None)
        self._finalizer = weakref.finalize(self, _shutdown, conns, procs)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, w: int, fault: FaultSpec | None = None) -> None:
        """(Re)create worker ``w``'s pipe and process in place."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._fn, self._initializer, self._initargs, fault),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[w] = parent_conn
        self._procs[w] = proc

    def _mark_dead(self, w: int) -> None:
        """Record worker ``w`` as dead and release its parent-side pipe."""
        self._dead.add(w)
        try:
            self._conns[w].close()
        except OSError:  # pragma: no cover - already closed
            pass
        _reap(self._procs[w])

    @property
    def dead_workers(self) -> List[int]:
        """Indices of workers known (or newly found) to be dead."""
        for w in range(self.workers):
            if w not in self._dead and not self._procs[w].is_alive():
                self._mark_dead(w)
        return sorted(self._dead)

    @property
    def pids(self) -> List[int]:
        """Current pid of each worker slot (respawns change these)."""
        return [p.pid for p in self._procs]

    def heal(self, *, initargs: Tuple[Any, ...] | None = None) -> int:
        """Respawn every dead worker in place; returns how many were.

        With ``initargs``, future (re)spawns boot with the new initializer
        arguments — the executor points these at its current known-graph
        set so a healed worker's cache is coherent without a broadcast
        replay for the whole pool.
        """
        self._ensure_open()
        if initargs is not None:
            self._initargs = initargs
        dead = self.dead_workers
        for w in dead:
            self._spawn(w)  # respawned generations never carry a fault
        self._dead.clear()
        self.respawns += len(dead)
        return len(dead)

    # ------------------------------------------------------------------
    # Deadline-guarded receive
    # ------------------------------------------------------------------
    def _recv(self, w: int, deadline: float | None) -> Any:
        """Receive one reply from worker ``w``, guarded by ``deadline``
        (an absolute ``time.monotonic()`` instant, or ``None``).

        Polls in :data:`HEARTBEAT_SECONDS` slices so a worker that dies
        without EOFing promptly, or wedges forever, is detected within one
        heartbeat of the evidence.  On failure the worker is reaped and
        marked dead (respawn via :meth:`heal`), and a typed error raised.
        """
        conn = self._conns[w]
        while True:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.timeouts += 1
                    self._mark_dead(w)
                    raise WorkerTimeoutError(
                        f"worker {w} (pid {self._procs[w].pid}) missed the "
                        f"{self.timeout:g}s round deadline; it has been "
                        "killed (heal() respawns it)"
                    )
                wait = min(HEARTBEAT_SECONDS, remaining)
            else:
                wait = HEARTBEAT_SECONDS
            try:
                if conn.poll(wait):
                    return conn.recv()
            except (EOFError, OSError) as exc:
                self.crashes += 1
                self._mark_dead(w)
                raise WorkerCrashError(
                    f"worker {w} died without reporting an exception"
                ) from exc
            if not self._procs[w].is_alive() and not conn.poll(0):
                # Heartbeat: the process is gone and its pipe is silent.
                self.crashes += 1
                code = self._procs[w].exitcode
                self._mark_dead(w)
                raise WorkerCrashError(
                    f"worker {w} exited with code {code} mid-round"
                )

    def _drain(self, pending: Sequence[int], deadline: float | None) -> None:
        """Best-effort collection of replies still owed by ``pending``
        workers after a round failed, so surviving pipes return to
        protocol sync.  Workers that cannot reply by the (grace-extended)
        deadline are killed and marked for respawn."""
        grace = time.monotonic() + _DRAIN_GRACE
        drain_deadline = grace if deadline is None else max(deadline, grace)
        for w in pending:
            if w in self._dead:
                continue
            try:
                self._recv(w, drain_deadline)
            except (WorkerCrashError, WorkerTimeoutError):
                continue  # already reaped and marked by _recv

    def _send(self, targets: Sequence[int], messages: List[Any]) -> None:
        """Send each target worker its message; a broken pipe reaps the
        worker and aborts the round with a typed error."""
        for w in targets:
            try:
                self._conns[w].send(messages[w])
            except (BrokenPipeError, OSError) as exc:
                self.crashes += 1
                self._mark_dead(w)
                # Workers earlier in `targets` already hold a message and
                # will reply; drain them so the pipes stay in sync.
                sent = [v for v in targets if v < w]
                self._drain(sent, None)
                raise WorkerCrashError(
                    f"worker {w} died before the round was dispatched"
                ) from exc

    # ------------------------------------------------------------------
    # Rounds and broadcasts
    # ------------------------------------------------------------------
    def run_round(self, chunks: Sequence[Any]) -> List[Any]:
        """Execute ``chunks`` across the workers; a barrier — returns once
        every chunk of the round completed, in input order.

        A worker that crashes or misses the round deadline raises
        :class:`WorkerCrashError` / :class:`WorkerTimeoutError`; the
        surviving workers are drained (never left with replies in flight)
        and the pool remains usable after :meth:`heal`.
        """
        self._ensure_open()
        t0 = trace.begin() if trace.enabled else 0
        n = self.workers
        assigned: List[List[Any]] = [[] for _ in range(n)]
        order: List[List[int]] = [[] for _ in range(n)]
        for k, chunk in enumerate(chunks):
            assigned[k % n].append(chunk)
            order[k % n].append(k)
        active = [w for w in range(n) if assigned[w]]
        self._send(active, assigned)
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        results: List[Any] = [None] * len(chunks)
        failure: BaseException | None = None
        for pos, w in enumerate(active):
            try:
                status, *payload = self._recv(w, deadline)
            except (WorkerCrashError, WorkerTimeoutError):
                self._drain(active[pos + 1:], deadline)
                raise
            if status == "error":
                exc, tb = payload
                exc.add_note(f"worker {w} traceback:\n{tb}")
                failure = self._prefer_failure(failure, exc)
            else:
                for k, value in zip(order[w], payload[0]):
                    results[k] = value
        if failure is not None:
            raise failure
        if t0:
            # One span per round: dispatch + barrier, the per-timestep
            # cost METG probes pay on the process executors.
            trace.complete(
                "pool.round", trace.CAT_DISPATCH, t0, {"chunks": len(chunks)}
            )
        return results

    @staticmethod
    def _prefer_failure(
        current: BaseException | None, exc: BaseException
    ) -> BaseException:
        """Pick the round's failure to re-raise: the first *primary* error.

        Workers that synchronize among themselves mid-round (the shm
        window barrier) raise marker errors (``secondary_error = True``)
        when a *peer* failed; reporting order is worker order, so without
        this preference a bystander's "peer aborted" could mask the actual
        root cause raised by a later-numbered worker.
        """
        if current is None:
            return exc
        if getattr(current, "secondary_error", False) and not getattr(
            exc, "secondary_error", False
        ):
            return exc
        return current

    def run_assigned(self, frames: Sequence[Sequence[Any]]) -> List[List[Any]]:
        """Execute pre-assigned per-worker frames; a barrier.

        ``frames[w]`` is the chunk list shipped to worker ``w`` (an empty
        list skips the worker this round); the return value is one result
        list per worker, aligned with ``frames``.  This is the batched
        round dispatch used by the hot path: the executor builds each
        worker's whole round up front, so a round costs exactly one send
        and one receive per participating worker and no result remapping —
        :meth:`run_round` keeps the chunk-interleaved protocol for callers
        that want the pool to do the assignment.

        Failure semantics match :meth:`run_round`: a crash or missed
        deadline drains the surviving workers and raises a typed error,
        leaving the pool healable.
        """
        self._ensure_open()
        if len(frames) != self.workers:
            raise ValueError(
                f"expected {self.workers} frames, got {len(frames)}"
            )
        t0 = trace.begin() if trace.enabled else 0
        frames = [list(f) for f in frames]
        active = [w for w in range(self.workers) if frames[w]]
        self._send(active, frames)
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        results: List[List[Any]] = [[] for _ in range(self.workers)]
        failure: BaseException | None = None
        for pos, w in enumerate(active):
            try:
                status, *payload = self._recv(w, deadline)
            except (WorkerCrashError, WorkerTimeoutError):
                self._drain(active[pos + 1:], deadline)
                raise
            if status == "error":
                exc, tb = payload
                exc.add_note(f"worker {w} traceback:\n{tb}")
                failure = self._prefer_failure(failure, exc)
            else:
                results[w] = payload[0]
        if failure is not None:
            raise failure
        if t0:
            trace.complete(
                "pool.round", trace.CAT_DISPATCH, t0,
                {"chunks": sum(len(f) for f in frames)},
            )
        return results

    def broadcast(self, func: Callable[..., Any], *args: Any) -> List[Optional[Any]]:
        """Run ``func(*args)`` once in *every* worker; a barrier.

        Used for worker-state maintenance (e.g. refreshing per-process
        graph caches) that must reach all workers, not just the ones a
        round's chunk assignment happens to touch.

        Returns one slot per worker index.  When some workers raise, the
        first error is re-raised with the per-worker slots (``None`` for
        the erroring workers) attached as ``partial_results`` — results
        never silently shift to different worker indices.
        """
        self._ensure_open()
        self._send(range(self.workers), [(func, args)] * self.workers)
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        out: List[Optional[Any]] = [None] * self.workers
        failure: BaseException | None = None
        for w in range(self.workers):
            try:
                status, *payload = self._recv(w, deadline)
            except (WorkerCrashError, WorkerTimeoutError):
                self._drain(range(w + 1, self.workers), deadline)
                raise
            if status == "error":
                exc, tb = payload
                exc.add_note(f"worker {w} traceback:\n{tb}")
                failure = self._prefer_failure(failure, exc)
            else:
                out[w] = payload[0]
        if failure is not None:
            failure.partial_results = out  # type: ignore[attr-defined]
            raise failure
        return out

    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if not self._finalizer.alive:
            raise RuntimeError("worker pool is closed")

    def close(self) -> None:
        """Shut the workers down.  Idempotent; also runs automatically when
        the pool is garbage-collected."""
        self._finalizer()
