"""Process-pool executor (MPI+X offload analogue, paper §3.5).

Tasks of each timestep are shipped to a pool of worker *processes* in
column chunks; inputs and outputs cross address spaces by serialization,
like the per-timestep offload of the paper's MPI+CUDA shim ("data is copied
to and from the GPU on every timestep").  The timestep-phased structure
mirrors the hierarchical MPI+X model: a barrier per timestep, parallelism
within it.

Scratch buffers live per worker process (their *content* carries no
cross-timestep semantics — the memory kernel only needs a working set), so
only task inputs/outputs are serialized.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.executor_base import Executor
from ..core.task_graph import TaskGraph
from ._common import EV_FINISH, EV_START, OutputStore, consumer_count, record_event

# Per-process caches, initialized lazily inside workers.
_WORKER_GRAPHS: Dict[int, TaskGraph] = {}
_WORKER_SCRATCH: Dict[int, np.ndarray] = {}


def _worker_init(graphs: Sequence[TaskGraph]) -> None:
    _WORKER_GRAPHS.clear()
    _WORKER_SCRATCH.clear()
    for g in graphs:
        _WORKER_GRAPHS[g.graph_index] = g


def _worker_chunk(
    args: Tuple[int, int, List[int], List[List[np.ndarray]], bool],
) -> List[Tuple[int, np.ndarray]]:
    """Execute a chunk of columns of one (graph, timestep) in a worker
    process.  Returns ``(column, output)`` pairs."""
    graph_index, t, columns, inputs_per_column, validate = args
    g = _WORKER_GRAPHS[graph_index]
    scratch = None
    if g.scratch_bytes_per_task:
        scratch = _WORKER_SCRATCH.get(graph_index)
        if scratch is None or scratch.nbytes != g.scratch_bytes_per_task:
            scratch = g.prepare_scratch()
            _WORKER_SCRATCH[graph_index] = scratch
    out = []
    for i, inputs in zip(columns, inputs_per_column):
        out.append((i, g.execute_point(t, i, inputs, scratch=scratch,
                                       validate=validate)))
    return out


class ProcessPoolExecutor(Executor):
    """Timestep-phased execution over a multiprocessing pool."""

    name = "processes"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    @property
    def cores(self) -> int:
        return self.workers

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        store = OutputStore()
        max_t = max(g.timesteps for g in graphs)
        ctx = mp.get_context("fork")
        with ctx.Pool(
            processes=self.workers,
            initializer=_worker_init,
            initargs=(list(graphs),),
        ) as pool:
            for t in range(max_t):
                chunks = []
                for g in graphs:
                    if t >= g.timesteps:
                        continue
                    off = g.offset_at_timestep(t)
                    active = list(range(off, off + g.width_at_timestep(t)))
                    for cols in _split(active, self.workers):
                        inputs = [store.gather(g, t, i) for i in cols]
                        chunks.append((g.graph_index, t, cols, inputs, validate))
                for (gi, tt, _cols, _inp, _v), results in zip(
                    chunks, pool.map(_worker_chunk, chunks)
                ):
                    g = next(gr for gr in graphs if gr.graph_index == gi)
                    for i, out in results:
                        # Kernels ran in worker processes; their start/finish
                        # are surfaced here, once the result has crossed back
                        # — the earliest point the trace can order them.
                        record_event(EV_START, (gi, tt, i))
                        record_event(EV_FINISH, (gi, tt, i))
                        store.put((gi, tt, i), out, consumer_count(g, tt, i))
        store.assert_drained()


def _split(items: List[int], parts: int) -> List[List[int]]:
    """Split ``items`` into at most ``parts`` contiguous, balanced chunks."""
    parts = min(parts, len(items))
    if parts == 0:
        return []
    size, extra = divmod(len(items), parts)
    out, pos = [], 0
    for p in range(parts):
        n = size + (1 if p < extra else 0)
        out.append(items[pos : pos + n])
        pos += n
    return out
