"""Process-pool executor (MPI+X offload analogue, paper §3.5).

Tasks of each timestep are shipped to a pool of worker *processes* in
column chunks; inputs and outputs cross address spaces by serialization,
like the per-timestep offload of the paper's MPI+CUDA shim ("data is copied
to and from the GPU on every timestep").  The timestep-phased structure
mirrors the hierarchical MPI+X model: a barrier per timestep, parallelism
within it.

This executor is the *copying* baseline of the data-plane A/B pair: every
payload is pickled across the pool on every timestep, and the copied bytes
are counted in the run's :class:`~repro.core.metrics.DataPlaneStats`.  The
zero-copy counterpart is :mod:`repro.runtimes.shm`.

Both process executors keep their fork-worker pool alive **across runs** of
the same executor instance (a METG sweep re-runs one executor dozens of
times; paying the fork per probe would swamp the measurement).  Reuse makes
worker-side cache coherence explicit: each worker caches graphs by
``graph_index``, and a later run may reuse an index for a *different*
graph.  The parent tracks what each pool was last told (``_known``) and
broadcasts fresh graphs to every worker before a run whose graphs changed —
see :func:`worker_graph` for the worker-side eviction.

Scratch buffers live per worker process (their *content* carries no
cross-timestep semantics — the memory kernel only needs a working set), so
only task inputs/outputs are serialized.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, ClassVar, Dict, List, Sequence, Tuple

import numpy as np

from ..core import fastpath as _fastpath
from ..core.executor_base import Executor
from ..core.metrics import DataPlaneStats, FaultStats
from ..core.task_graph import TaskGraph
from ..faults import FaultSpec, default_timeout, fault_from_env
from ..trace import recorder as trace
from ._common import EV_FINISH, EV_START, OutputStore, consumer_count, record_event
from ._procpool import ForkWorkerPool, WorkerCrashError, WorkerTimeoutError

# Per-process caches, initialized lazily inside workers.
_WORKER_GRAPHS: Dict[int, TaskGraph] = {}
_WORKER_SCRATCH: Dict[int, np.ndarray] = {}


def _worker_init(graphs: Sequence[TaskGraph]) -> None:
    _WORKER_GRAPHS.clear()
    _WORKER_SCRATCH.clear()
    for g in graphs:
        _WORKER_GRAPHS[g.graph_index] = g


def worker_graph(g: TaskGraph) -> TaskGraph:
    """Install ``g`` in the worker cache, evicting stale state.

    A worker serving back-to-back runs can hold a *different* graph under
    the same ``graph_index`` (e.g. a METG sweep varying kernel iterations).
    Keying the caches by index alone silently executed the stale graph; now
    a mismatched entry is replaced and the graph's scratch buffer evicted.
    When the cached graph *is* equal it is preferred, so its warm
    dependence tables survive.
    """
    cached = _WORKER_GRAPHS.get(g.graph_index)
    if cached is not None and cached == g:
        return cached
    _WORKER_GRAPHS[g.graph_index] = g
    _WORKER_SCRATCH.pop(g.graph_index, None)
    return g


def _worker_update(graphs: Sequence[TaskGraph]) -> None:
    """Broadcast target: refresh the worker's graph cache before a round."""
    for g in graphs:
        worker_graph(g)


def worker_scratch(g: TaskGraph) -> np.ndarray | None:
    """The worker-side scratch buffer for ``g`` (rebuilt on size change)."""
    if not g.scratch_bytes_per_task:
        return None
    scratch = _WORKER_SCRATCH.get(g.graph_index)
    if scratch is None or scratch.nbytes != g.scratch_bytes_per_task:
        scratch = g.prepare_scratch()
        _WORKER_SCRATCH[g.graph_index] = scratch
    return scratch


def wire_graph(g: TaskGraph) -> TaskGraph:
    """A copy of ``g`` without memoized state, cheap to pickle.

    ``TaskGraph.spec`` is a ``cached_property``; once the parent has used a
    graph, pickling the instance would ship the whole materialized
    dependence relation (random patterns carry per-timestep tables).  A
    field-for-field replacement starts with an empty cache and compares
    equal to the original.
    """
    return dataclasses.replace(g)


def _worker_chunk(
    args: Tuple[int, int, List[int], List[List[np.ndarray]], bool],
) -> List[Tuple[int, np.ndarray]]:
    """Execute a chunk of columns of one (graph, timestep) in a worker
    process.  Returns ``(column, output)`` pairs.

    The graph is referenced by index only: the parent guarantees the
    worker's cache is coherent before any round of a run is dispatched
    (``_worker_init`` at fork, ``_worker_update`` broadcasts after that).
    """
    gi, t, columns, inputs_per_column, validate = args
    g = _WORKER_GRAPHS[gi]
    scratch = worker_scratch(g)
    out = []
    traced = trace.enabled
    for i, inputs in zip(columns, inputs_per_column):
        t0 = trace.begin() if traced else 0
        result = g.execute_point(t, i, inputs, scratch=scratch,
                                 validate=validate)
        if t0:
            trace.complete("task", trace.CAT_KERNEL, t0, {"task": (gi, t, i)})
        out.append((i, result))
    return out


class _PhasedProcessExecutor(Executor):
    """Shared machinery of the process executors: a persistent
    :class:`ForkWorkerPool` plus cross-run worker graph-cache coherence
    and crash supervision (pool self-healing across runs).

    ``timeout`` is the per-round deadline forwarded to the pool (default:
    the ``TASKBENCH_TIMEOUT`` environment variable, else no deadline);
    ``fault`` arms one injected fault on the pool's first worker
    generation (default: ``TASKBENCH_INJECT_FAULT``)."""

    isolation = "processes"

    #: Module-level chunk function the pool's workers run (set by subclass).
    chunk_fn: ClassVar[Callable[[Any], Any]]

    def __init__(
        self,
        workers: int = 2,
        *,
        timeout: float | None = None,
        fault: FaultSpec | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.timeout = timeout if timeout is not None else default_timeout()
        self.fault = fault if fault is not None else fault_from_env()
        self._data_plane: DataPlaneStats | None = None
        self._fault_stats: FaultStats | None = None
        self._procs: ForkWorkerPool | None = None
        self._known: Dict[int, TaskGraph] = {}
        # Whether the pool's workers currently hold a live span recorder
        # (a traced run began but has not drained them yet).
        self._workers_traced = False
        # Supervision counters carried over from pools that were dropped.
        self._fault_base = FaultStats()

    @property
    def cores(self) -> int:
        return self.workers

    def close(self) -> None:
        """Release the worker processes.  Optional — the pool also tears
        itself down when the executor is garbage-collected."""
        if self._procs is not None:
            self._fault_base = self._snapshot_faults() or self._fault_base
            self._procs.close()
            self._procs = None
        self._known = {}

    def heal(self) -> int:
        """Respawn any worker that died while the pool sat idle.

        The in-run self-healing path (:meth:`_sync_workers`) already heals
        between runs of a sweep; this public entry point covers executors
        cached *between requests* (the serve warm pool heals on checkout
        so a crashed cached worker never poisons a later request).  A
        pool that was never forked is trivially healthy.
        """
        if self._procs is None:
            return 0
        if not self._procs.dead_workers:
            return 0
        return self._procs.heal(initargs=(list(self._known.values()),))

    def _snapshot_faults(self) -> FaultStats | None:
        """Cumulative supervision counters (dropped pools + live pool);
        ``None`` while no fault has ever been observed."""
        stats = self._fault_base
        pool = self._procs
        if pool is not None:
            stats = stats.merged(
                FaultStats(
                    worker_crashes=pool.crashes,
                    worker_timeouts=pool.timeouts,
                    workers_respawned=pool.respawns,
                )
            )
        return stats if stats.any else None

    def _prefork(self, graphs: Sequence[TaskGraph]) -> None:
        """Hook: per-executor resources that must exist before the fork."""

    def _sync_workers(self, graphs: Sequence[TaskGraph]) -> ForkWorkerPool:
        """Fork (or reuse) the worker pool and make every worker's graph
        cache coherent with ``graphs``.  Afterwards chunks refer to graphs
        by index alone."""
        wire = {g.graph_index: wire_graph(g) for g in graphs}
        if self._procs is None:
            self._prefork(graphs)
            self._procs = ForkWorkerPool(
                type(self).chunk_fn,
                self.workers,
                initializer=_worker_init,
                initargs=(list(wire.values()),),
                timeout=self.timeout,
                fault=self.fault,
            )
            self._known = wire
            self._sync_worker_tracing()
            return self._procs
        stale = [wire[gi] for gi in wire if self._known.get(gi) != wire[gi]]
        self._known.update({g.graph_index: g for g in stale})
        # Self-healing: respawn any worker that died (crash or deadline
        # kill) in a previous run.  Respawned workers fork from the
        # *current* parent — inheriting every live shm segment mapping —
        # and boot via the initializer with the full known-graph set, so
        # the replayed cache state is coherent without a pool-wide replay.
        self._procs.heal(initargs=(list(self._known.values()),))
        if stale:
            # A reused pool may hold a different graph under a reused
            # index.  The broadcast reaches every worker — chunk
            # assignment alone might not — so no worker can execute a
            # stale graph later in the run.
            self._procs.broadcast(_worker_update, stale)
        self._sync_worker_tracing()
        return self._procs

    def _sync_worker_tracing(self) -> None:
        """Make worker-side recording agree with this run's tracing state.

        A traced run installs a fresh recorder in every worker; an
        untraced run after a traced one that never drained (it failed)
        discards the stale worker recorders.  Untraced steady state pays
        no broadcast at all.
        """
        assert self._procs is not None
        if trace.enabled:
            self._procs.broadcast(trace.worker_begin)
            self._workers_traced = True
        elif self._workers_traced:
            self._procs.broadcast(trace.fork_reset)
            self._workers_traced = False

    def _drain_worker_traces(self, procs: ForkWorkerPool) -> None:
        """Collect every worker's span buffers into the active capture
        (same-host monotonic clocks: no offset needed)."""
        if not trace.enabled or not self._workers_traced:
            return
        for w, dump in enumerate(procs.broadcast(trace.worker_drain)):
            if dump:
                trace.ingest(f"worker-{w}", dump)
        self._workers_traced = False

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        try:
            self._execute(graphs, validate)
        except (WorkerCrashError, WorkerTimeoutError):
            # The pool supervised the failure: dead workers are already
            # reaped and marked, surviving pipes drained.  Keep the warm
            # pool — the next run heals it in place (no full refork).
            self._recover()
            raise
        except BaseException:
            # Anything else leaves worker/pool state unknown: drop the
            # pool so the next run starts from a coherent fork.
            self.close()
            raise
        finally:
            self._fault_stats = self._snapshot_faults()

    def _recover(self) -> None:
        """Hook: release per-run resources after a supervised failure."""

    def _execute(self, graphs: Sequence[TaskGraph], validate: bool) -> None:
        raise NotImplementedError


class ProcessPoolExecutor(_PhasedProcessExecutor):
    """Timestep-phased execution over a pool of forked workers."""

    name = "processes"
    chunk_fn = staticmethod(_worker_chunk)

    def _execute(self, graphs: Sequence[TaskGraph], validate: bool) -> None:
        if _fastpath.enabled():
            self._execute_batched(graphs, validate)
            return
        store = OutputStore()
        bytes_copied = 0
        payloads_copied = 0
        max_t = max(g.timesteps for g in graphs)
        procs = self._sync_workers(graphs)
        for t in range(max_t):
            chunks = []
            chunk_graphs = []
            for g in graphs:
                if t >= g.timesteps:
                    continue
                off = g.offset_at_timestep(t)
                active = list(range(off, off + g.width_at_timestep(t)))
                for cols in _split(active, self.workers):
                    inputs = [store.gather(g, t, i) for i in cols]
                    for bufs in inputs:
                        for buf in bufs:
                            bytes_copied += buf.nbytes
                            payloads_copied += 1
                    chunks.append((g.graph_index, t, cols, inputs, validate))
                    chunk_graphs.append(g)
            for g, results in zip(chunk_graphs, procs.run_round(chunks)):
                gi = g.graph_index
                for i, out in results:
                    # Kernels ran in worker processes; their start/finish
                    # are surfaced here, once the result has crossed back
                    # — the earliest point the trace can order them.
                    record_event(EV_START, (gi, t, i))
                    record_event(EV_FINISH, (gi, t, i))
                    bytes_copied += out.nbytes
                    payloads_copied += 1
                    store.put((gi, t, i), out, consumer_count(g, t, i))
        self._drain_worker_traces(procs)
        store.assert_drained()
        self._data_plane = DataPlaneStats(
            bytes_copied=bytes_copied, payloads_copied=payloads_copied
        )

    def _execute_batched(
        self, graphs: Sequence[TaskGraph], validate: bool
    ) -> None:
        """Fast-path round dispatch: each worker's whole round is built as
        one frame (all of its chunks across every graph), shipped with
        :meth:`ForkWorkerPool.run_assigned` — one send and one receive per
        worker per timestep with no result remapping."""
        store = OutputStore()
        bytes_copied = 0
        payloads_copied = 0
        max_t = max(g.timesteps for g in graphs)
        procs = self._sync_workers(graphs)
        nw = self.workers
        for t in range(max_t):
            frames: List[List[Any]] = [[] for _ in range(nw)]
            frame_graphs: List[List[TaskGraph]] = [[] for _ in range(nw)]
            for g in graphs:
                if t >= g.timesteps:
                    continue
                off = g.offset_at_timestep(t)
                active = list(range(off, off + g.width_at_timestep(t)))
                for w, cols in enumerate(_split(active, nw)):
                    inputs = [store.gather(g, t, i) for i in cols]
                    for bufs in inputs:
                        for buf in bufs:
                            bytes_copied += buf.nbytes
                            payloads_copied += 1
                    frames[w].append((g.graph_index, t, cols, inputs, validate))
                    frame_graphs[w].append(g)
            for w, frame_results in enumerate(procs.run_assigned(frames)):
                for g, results in zip(frame_graphs[w], frame_results):
                    gi = g.graph_index
                    for i, out in results:
                        record_event(EV_START, (gi, t, i))
                        record_event(EV_FINISH, (gi, t, i))
                        bytes_copied += out.nbytes
                        payloads_copied += 1
                        store.put((gi, t, i), out, consumer_count(g, t, i))
        self._drain_worker_traces(procs)
        store.assert_drained()
        self._data_plane = DataPlaneStats(
            bytes_copied=bytes_copied, payloads_copied=payloads_copied
        )


def _split(items: List[int], parts: int) -> List[List[int]]:
    """Split ``items`` into at most ``parts`` contiguous, balanced chunks."""
    parts = min(parts, len(items))
    if parts == 0:
        return []
    size, extra = divmod(len(items), parts)
    out, pos = [], 0
    for p in range(parts):
        n = size + (1 if p < extra else 0)
        out.append(items[pos : pos + n])
        pos += n
    return out
