"""Actor-model executor (Charm++ analogue, paper §3.2).

"Our Task Bench implementation uses a chare array for the task graph, with
one chare for each column.  Messages implement dependencies; a task executes
as soon as its dependencies are all available."

Each (graph, column) pair is an actor holding its own timestep cursor and a
buffer of out-of-order message arrivals.  Message delivery is asynchronous:
when the arrival completes an actor's input set for its next timestep, the
actor is scheduled onto the worker pool.  Because activation is purely
message-driven, independent graphs and independent columns interleave freely
— the task parallelism that lets actor systems hide communication and
mitigate load imbalance (paper §5.6-5.7).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.executor_base import Executor
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace
from ._common import (
    EV_ACQUIRE,
    EV_FINISH,
    EV_PUBLISH,
    EV_START,
    ScratchPool,
    capture_output,
    record_event,
)


class _Actor:
    """One chare: a column of one graph."""

    def __init__(self, graph: TaskGraph, column: int) -> None:
        self.graph = graph
        self.column = column
        self.lock = threading.Lock()
        # next timestep this actor will execute (skipping timesteps where
        # the column is inactive, e.g. during tree fan-out)
        self.next_t = self._first_active_t()
        # out-of-order arrivals: t -> {producer column -> buffer}
        self.inbox: Dict[int, Dict[int, np.ndarray]] = {}
        self.scheduled = False

    def _first_active_t(self) -> int:
        g = self.graph
        for t in range(g.timesteps):
            if g.contains_point(t, self.column):
                return t
        return g.timesteps  # column never active

    def advance(self) -> None:
        g = self.graph
        t = self.next_t + 1
        while t < g.timesteps and not g.contains_point(t, self.column):
            t += 1
        self.next_t = t

    def done(self) -> bool:
        return self.next_t >= self.graph.timesteps

    def ready_locked(self) -> bool:
        """Whether all inputs for ``next_t`` have arrived.  Caller holds
        ``self.lock``."""
        if self.done():
            return False
        t = self.next_t
        if t == 0:
            return True
        needed = self.graph.num_dependencies(t, self.column)
        return len(self.inbox.get(t, {})) == needed

    def take_inputs(self) -> List[np.ndarray]:
        """Inputs for ``next_t`` in canonical order.  Caller guarantees
        readiness."""
        t = self.next_t
        if t == 0:
            return []
        # Zero-dependency tasks (e.g. the trivial pattern) have no inbox
        # entry at all, hence the default.
        arrived = self.inbox.pop(t, {})
        return [arrived[j] for j in self.graph.dependency_points(t, self.column)]


class ActorExecutor(Executor):
    """Message-driven actors executed by a worker pool."""

    name = "actors"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    @property
    def cores(self) -> int:
        return self.workers

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        actors: Dict[Tuple[int, int], _Actor] = {
            (g.graph_index, i): _Actor(g, i)
            for g in graphs
            for i in range(g.max_width)
        }
        scratch = ScratchPool(graphs)
        total = sum(g.total_tasks() for g in graphs)

        cv = threading.Condition()
        run_queue: List[_Actor] = []
        state = {"remaining": total, "error": None}

        def schedule(actor: _Actor) -> None:
            """Enqueue an actor whose next task is ready.  Caller holds
            ``actor.lock``; ``scheduled`` prevents double-enqueueing."""
            if actor.scheduled:
                return
            actor.scheduled = True
            with cv:
                run_queue.append(actor)
                cv.notify()

        def deliver(dest: _Actor, t: int, producer: int, buf: np.ndarray) -> None:
            with dest.lock:
                dest.inbox.setdefault(t, {})[producer] = buf
                if dest.ready_locked():
                    schedule(dest)

        def fire(actor: _Actor) -> None:
            """Execute the actor's next task and send its outputs.

            ``actor.scheduled`` stays True for the whole execution so that
            concurrent message deliveries cannot re-enqueue the actor while
            it runs; readiness is re-checked after advancing."""
            g = actor.graph
            with actor.lock:
                t = actor.next_t
                inputs = actor.take_inputs()
            task = (g.graph_index, t, actor.column)
            record_event(EV_START, task)
            if t > 0:
                for j in g.dependency_points(t, actor.column):
                    record_event(EV_ACQUIRE, task, (g.graph_index, t - 1, j))
            t0 = trace.begin() if trace.enabled else 0
            out = g.execute_point(
                t,
                actor.column,
                inputs,
                scratch=scratch.get(g.graph_index, actor.column),
                validate=validate,
            )
            if t0:
                trace.complete("task", trace.CAT_KERNEL, t0, {"task": task})
            record_event(EV_FINISH, task)
            consumers = list(g.reverse_dependency_points(t, actor.column))
            if consumers:
                t0 = trace.begin() if trace.enabled else 0
                record_event(EV_PUBLISH, task)
                capture_output(task, out)
                if t0:
                    trace.complete("publish", trace.CAT_PUBLISH, t0, {"task": task})
            for j in consumers:
                deliver(actors[(g.graph_index, j)], t + 1, actor.column, out)
            with actor.lock:
                actor.advance()
                # A successor timestep may already be ready (e.g. no deps,
                # or all messages arrived while this task ran).
                if actor.ready_locked():
                    requeue = True  # keep .scheduled held
                else:
                    actor.scheduled = False
                    requeue = False
            if requeue:
                with cv:
                    run_queue.append(actor)
                    cv.notify()
            with cv:
                state["remaining"] -= 1
                cv.notify_all()

        # Seed: actors whose first task has no dependencies.
        for actor in actors.values():
            with actor.lock:
                if actor.ready_locked():
                    schedule(actor)

        def worker() -> None:
            try:
                while True:
                    with cv:
                        while True:
                            if state["error"] is not None:
                                return
                            if run_queue:
                                actor = run_queue.pop()
                                break
                            if state["remaining"] == 0:
                                return
                            cv.wait(timeout=0.05)
                    fire(actor)
            except BaseException as exc:  # noqa: BLE001 - propagated below
                with cv:
                    if state["error"] is None:
                        state["error"] = exc
                    cv.notify_all()

        threads = [
            threading.Thread(target=worker, name=f"actor-worker-{w}", daemon=True)
            for w in range(self.workers)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if state["error"] is not None:
            raise state["error"]
        if state["remaining"] != 0:
            raise RuntimeError(
                f"{state['remaining']} tasks never became ready "
                "(message routing bug)"
            )
