"""Centralized-controller executor (Spark / Dask-distributed analogue,
paper §3.3, §3.11).

A single controller thread owns all scheduling state: it discovers ready
tasks, dispatches them one at a time to worker queues, and processes
completion notifications.  Total task throughput is therefore bounded by the
controller's per-task dispatch cost — the architectural property behind
Spark's line in Figure 9 rising immediately with node count ("Spark uses a
centralized controller, which limits throughput").

``dispatch_overhead_us`` injects additional controller work per task so the
throughput ceiling can be made explicit in local experiments.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Dict, Sequence

from ..core.executor_base import Executor
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace
from ._common import OutputStore, ScratchPool, TaskKey, run_point


class CentralizedExecutor(Executor):
    """Controller thread + worker pool with per-task dispatch."""

    name = "centralized"

    def __init__(self, workers: int = 2, dispatch_overhead_us: float = 0.0) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if dispatch_overhead_us < 0:
            raise ValueError("dispatch_overhead_us must be >= 0")
        self.workers = workers
        self.dispatch_overhead_us = dispatch_overhead_us

    @property
    def cores(self) -> int:
        # The controller occupies a core of its own, like a Spark driver.
        return self.workers + 1

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        by_index = {g.graph_index: g for g in graphs}
        store = OutputStore()
        scratch = ScratchPool(graphs)

        # Controller-owned scheduling state (no locks needed: only the
        # controller thread touches it).
        pending: Dict[TaskKey, int] = {}
        ready: list[TaskKey] = []
        for g in graphs:
            for t, i in g.points():
                key = (g.graph_index, t, i)
                ndeps = g.num_dependencies(t, i)
                if ndeps == 0:
                    ready.append(key)
                else:
                    pending[key] = ndeps
        remaining = sum(g.total_tasks() for g in graphs)

        work_queues = [queue.Queue() for _ in range(self.workers)]
        completions: queue.Queue = queue.Queue()

        def worker_main(wq: queue.Queue) -> None:
            while True:
                item = wq.get()
                if item is None:
                    return
                gi, t, i = item
                try:
                    run_point(store, scratch, by_index[gi], t, i, validate=validate)
                    completions.put(("done", item))
                except BaseException as exc:  # noqa: BLE001 - sent to controller
                    completions.put(("error", exc))
                    return

        threads = [
            threading.Thread(target=worker_main, args=(wq,), daemon=True,
                             name=f"centralized-worker-{w}")
            for w, wq in enumerate(work_queues)
        ]
        for th in threads:
            th.start()

        error: BaseException | None = None
        try:
            rr = itertools.cycle(range(self.workers))
            in_flight = 0
            while remaining > 0:
                # Dispatch every currently-ready task, round-robin, paying
                # the controller's per-task cost inline.
                t0 = trace.begin() if (ready and trace.enabled) else 0
                dispatched = 0
                while ready and error is None:
                    key = ready.pop()
                    if self.dispatch_overhead_us:
                        # Deliberate overhead model, not measurement: the
                        # controller burns its per-task dispatch cost inline.
                        deadline = time.perf_counter() + self.dispatch_overhead_us * 1e-6  # check: allow[timing]
                        while time.perf_counter() < deadline:  # check: allow[timing]
                            pass
                    work_queues[next(rr)].put(key)
                    in_flight += 1
                    dispatched += 1
                if t0:
                    # One span per dispatch batch: the controller's
                    # throughput ceiling made visible.
                    trace.complete(
                        "dispatch", trace.CAT_DISPATCH, t0,
                        {"tasks": dispatched},
                    )
                if in_flight == 0:
                    break  # an error drained the pipeline
                kind, payload = completions.get()
                in_flight -= 1
                if kind == "error":
                    # Abandon outstanding work: tasks queued behind the
                    # failure may never complete (their worker is gone).
                    error = payload
                    break
                gi, t, i = payload
                remaining -= 1
                g = by_index[gi]
                for j in g.reverse_dependency_points(t, i):
                    skey = (gi, t + 1, j)
                    left = pending[skey] - 1
                    if left == 0:
                        del pending[skey]
                        ready.append(skey)
                    else:
                        pending[skey] = left
        finally:
            for wq in work_queues:
                wq.put(None)
            for th in threads:
                th.join()
        if error is not None:
            raise error
        store.assert_drained()
