"""Asyncio dataflow executor (Swift/T analogue, paper §3.13).

Swift/T programs "follow dataflow semantics, where every statement may
potentially execute in parallel as soon as its dependencies are satisfied".
Here every task is a coroutine awaiting the futures of its inputs; a
semaphore of ``workers`` permits stands in for the cores, so at most
``workers`` kernels execute concurrently while an unbounded number of tasks
may be suspended awaiting dependencies — exactly the
cheap-waiting/expensive-running split of dataflow engines.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Sequence

from ..core.executor_base import Executor
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace
from ._common import (
    EV_ACQUIRE,
    EV_FINISH,
    EV_PUBLISH,
    EV_START,
    ScratchPool,
    TaskKey,
    capture_output,
    record_event,
    task_keys,
)


class AsyncioExecutor(Executor):
    """Coroutine-per-task dataflow execution on an asyncio event loop."""

    name = "asyncio"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    @property
    def cores(self) -> int:
        return self.workers

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        asyncio.run(self._run(list(graphs), validate))

    async def _run(self, graphs: Sequence[TaskGraph], validate: bool) -> None:
        by_index = {g.graph_index: g for g in graphs}
        scratch = ScratchPool(graphs)
        sem = asyncio.Semaphore(self.workers)
        loop = asyncio.get_running_loop()
        outputs: Dict[TaskKey, asyncio.Future] = {
            key: loop.create_future() for key in task_keys(graphs)
        }

        async def task(gi: int, t: int, i: int) -> None:
            g = by_index[gi]
            key = (gi, t, i)
            inputs = []
            if t:
                for j in g.dependency_points(t, i):
                    inputs.append(await outputs[(gi, t - 1, j)])
                    record_event(EV_ACQUIRE, key, (gi, t - 1, j))
            async with sem:  # a core
                record_event(EV_START, key)
                # No await between begin and complete: the kernel runs
                # synchronously on the loop thread, so kernel spans on this
                # single track never overlap.
                t0 = trace.begin() if trace.enabled else 0
                out = g.execute_point(
                    t, i, inputs, scratch=scratch.get(gi, i), validate=validate
                )
                if t0:
                    trace.complete("task", trace.CAT_KERNEL, t0, {"task": key})
                record_event(EV_FINISH, key)
            t0 = trace.begin() if trace.enabled else 0
            record_event(EV_PUBLISH, key)
            capture_output(key, out)
            if t0:
                trace.complete("publish", trace.CAT_PUBLISH, t0, {"task": key})
            outputs[key].set_result(out)

        coros = [task(gi, t, i) for gi, t, i in task_keys(graphs)]
        # gather cancels nothing on failure by default with
        # return_exceptions=False; wrap so unfinished futures don't warn.
        try:
            await asyncio.gather(*coros)
        finally:
            for f in outputs.values():
                if not f.done():
                    f.cancel()
