"""Task-dependency thread-pool executor (OpenMP-task / OmpSs analogue,
paper §3.6-3.7).

The whole DAG is driven by dependency counting: every task knows how many
inputs it still waits for; completing a task decrements its consumers and
enqueues those that become ready.  Workers pull from a shared ready deque —
the classic shared-memory tasking model of OpenMP 4.0 ``task depend``.
"""

from __future__ import annotations

import collections
import threading
from typing import Dict, List, Sequence, Tuple

from ..core import fastpath as _fastpath
from ..core.bufpool import HeapSlabPool
from ..core.executor_base import Executor
from ..core.metrics import DataPlaneStats
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace
from ._common import (
    OutputStore,
    ScratchPool,
    TaskKey,
    pool_data_plane,
    run_point,
    run_point_batch,
)


class DependencyCountingScheduler:
    """Shared state: ready queue, pending-input counters, completion latch."""

    def __init__(self, graphs: Sequence[TaskGraph]) -> None:
        self.graphs = {g.graph_index: g for g in graphs}
        self.lock = threading.Lock()
        self.ready: collections.deque[TaskKey] = collections.deque()
        self.ready_cv = threading.Condition(self.lock)
        self.pending: Dict[TaskKey, int] = {}
        self.remaining = 0
        self.error: BaseException | None = None
        ready = self.ready
        pending = self.pending
        for g in graphs:
            gi = g.graph_index
            for t in range(g.timesteps):
                off, counts = g.dependency_count_row(t)
                self.remaining += len(counts)
                for k, ndeps in enumerate(counts):
                    if ndeps == 0:
                        ready.append((gi, t, off + k))
                    else:
                        pending[(gi, t, off + k)] = ndeps

    def next_task(self) -> TaskKey | None:
        """Block until a task is ready; ``None`` when the DAG is complete.

        The wait is purely event-driven: every state change (``complete``
        enqueueing ready tasks or retiring the last one, ``fail`` recording
        an error) broadcasts on ``ready_cv``, so idle workers wake and exit
        promptly on failure instead of relying on a polling timeout or
        daemon-thread teardown."""
        with self.ready_cv:
            while True:
                if self.error is not None:
                    raise self.error
                if self.ready:
                    return self.ready.popleft()
                if self.remaining == 0:
                    return None
                self.ready_cv.wait()

    def complete(self, g: TaskGraph, t: int, i: int) -> None:
        """Record completion and release any newly-ready consumers."""
        with self.ready_cv:
            self.remaining -= 1
            for j in g.reverse_dependency_points(t, i):
                key = (g.graph_index, t + 1, j)
                left = self.pending[key] - 1
                if left == 0:
                    del self.pending[key]
                    self.ready.append(key)
                else:
                    self.pending[key] = left
            self.ready_cv.notify_all()

    # -- fast-path batched variants ------------------------------------
    #: Cap on tasks claimed per lock acquisition: bounds the scheduling
    #: latency a slow batch can impose on newly-ready consumers.
    MAX_CLAIM = 8

    def next_batch(self, share: int) -> List[TaskKey] | None:
        """Claim up to ``1/share`` of the ready queue in one lock
        acquisition (at least one task); ``None`` when the DAG is done.

        The fast-path worker loop uses this instead of :meth:`next_task`
        to amortize the lock/condition overhead over several tasks — the
        thread-pool analogue of the fork pool's batched round dispatch.
        Claiming only a share of the queue keeps the remainder available
        to other workers, so parallelism is preserved whenever the ready
        set is wider than the pool.
        """
        with self.ready_cv:
            while True:
                if self.error is not None:
                    raise self.error
                ready = self.ready
                if ready:
                    n = len(ready) // share
                    if n < 1:
                        n = 1
                    elif n > self.MAX_CLAIM:
                        n = self.MAX_CLAIM
                    popleft = ready.popleft
                    return [popleft() for _ in range(n)]
                if self.remaining == 0:
                    return None
                self.ready_cv.wait()

    def complete_batch(self, done: Sequence[Tuple[TaskGraph, int, int]]) -> None:
        """Record a claimed batch's completions under one lock acquisition,
        waking only as many workers as tasks became ready (a completion
        that releases nothing wakes nobody)."""
        with self.ready_cv:
            pending = self.pending
            ready = self.ready
            newly = 0
            self.remaining -= len(done)
            for g, t, i in done:
                gi = g.graph_index
                for j in g.reverse_dependency_columns(t, i):
                    key = (gi, t + 1, j)
                    left = pending[key] - 1
                    if left == 0:
                        del pending[key]
                        ready.append(key)
                        newly += 1
                    else:
                        pending[key] = left
            if self.remaining == 0:
                self.ready_cv.notify_all()
            elif newly:
                self.ready_cv.notify(newly)

    def fail(self, exc: BaseException) -> None:
        with self.ready_cv:
            if self.error is None:
                self.error = exc
            self.ready_cv.notify_all()


class ThreadPoolTaskExecutor(Executor):
    """Worker threads executing a dependency-counted task DAG."""

    name = "threads"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._data_plane: DataPlaneStats | None = None

    @property
    def cores(self) -> int:
        return self.workers

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        sched = DependencyCountingScheduler(graphs)
        store = OutputStore()
        scratch = ScratchPool(graphs)
        # Same address space, so a heap-backed slab pool: output buffers
        # recycle across timesteps instead of being reallocated per task.
        buffers = HeapSlabPool()

        use_batches = _fastpath.enabled()
        share = self.workers

        def worker() -> None:
            try:
                if use_batches:
                    # Fast path: claim/retire several ready tasks per lock
                    # acquisition instead of one, fuse the batch's data-plane
                    # lock traffic (run_point_batch), and let complete_batch
                    # wake only as many workers as tasks became ready.  The
                    # legacy one-task loop below stays the reference
                    # implementation.
                    graphs_by_index = sched.graphs
                    while True:
                        t0 = trace.begin() if trace.enabled else 0
                        keys = sched.next_batch(share)
                        if t0:
                            trace.complete("sched.wait", trace.CAT_SCHED, t0)
                        if keys is None:
                            return
                        done = run_point_batch(
                            store, scratch, graphs_by_index, keys,
                            validate=validate, pool=buffers,
                        )
                        sched.complete_batch(done)
                    return
                while True:
                    t0 = trace.begin() if trace.enabled else 0
                    key = sched.next_task()
                    if t0:
                        trace.complete("sched.wait", trace.CAT_SCHED, t0)
                    if key is None:
                        return
                    gi, t, i = key
                    g = sched.graphs[gi]
                    run_point(store, scratch, g, t, i, validate=validate,
                              pool=buffers)
                    sched.complete(g, t, i)
            except BaseException as exc:  # noqa: BLE001 - propagated below
                sched.fail(exc)

        threads = [
            threading.Thread(target=worker, name=f"task-worker-{w}", daemon=True)
            for w in range(self.workers)
        ]
        for th in threads:
            th.start()
        try:
            for th in threads:
                th.join()
            if sched.error is not None:
                raise sched.error
            store.assert_drained()
            self._data_plane = pool_data_plane(buffers)
        finally:
            buffers.close()
