"""Task-dependency thread-pool executor (OpenMP-task / OmpSs analogue,
paper §3.6-3.7).

The whole DAG is driven by dependency counting: every task knows how many
inputs it still waits for; completing a task decrements its consumers and
enqueues those that become ready.  Workers pull from a shared ready deque —
the classic shared-memory tasking model of OpenMP 4.0 ``task depend``.
"""

from __future__ import annotations

import collections
import threading
from typing import Dict, Sequence

from ..core.bufpool import HeapSlabPool
from ..core.executor_base import Executor
from ..core.metrics import DataPlaneStats
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace
from ._common import OutputStore, ScratchPool, TaskKey, pool_data_plane, run_point


class DependencyCountingScheduler:
    """Shared state: ready queue, pending-input counters, completion latch."""

    def __init__(self, graphs: Sequence[TaskGraph]) -> None:
        self.graphs = {g.graph_index: g for g in graphs}
        self.lock = threading.Lock()
        self.ready: collections.deque[TaskKey] = collections.deque()
        self.ready_cv = threading.Condition(self.lock)
        self.pending: Dict[TaskKey, int] = {}
        self.remaining = 0
        self.error: BaseException | None = None
        for g in graphs:
            for t, i in g.points():
                key = (g.graph_index, t, i)
                ndeps = g.num_dependencies(t, i)
                self.remaining += 1
                if ndeps == 0:
                    self.ready.append(key)
                else:
                    self.pending[key] = ndeps

    def next_task(self) -> TaskKey | None:
        """Block until a task is ready; ``None`` when the DAG is complete.

        The wait is purely event-driven: every state change (``complete``
        enqueueing ready tasks or retiring the last one, ``fail`` recording
        an error) broadcasts on ``ready_cv``, so idle workers wake and exit
        promptly on failure instead of relying on a polling timeout or
        daemon-thread teardown."""
        with self.ready_cv:
            while True:
                if self.error is not None:
                    raise self.error
                if self.ready:
                    return self.ready.popleft()
                if self.remaining == 0:
                    return None
                self.ready_cv.wait()

    def complete(self, g: TaskGraph, t: int, i: int) -> None:
        """Record completion and release any newly-ready consumers."""
        with self.ready_cv:
            self.remaining -= 1
            for j in g.reverse_dependency_points(t, i):
                key = (g.graph_index, t + 1, j)
                left = self.pending[key] - 1
                if left == 0:
                    del self.pending[key]
                    self.ready.append(key)
                else:
                    self.pending[key] = left
            self.ready_cv.notify_all()

    def fail(self, exc: BaseException) -> None:
        with self.ready_cv:
            if self.error is None:
                self.error = exc
            self.ready_cv.notify_all()


class ThreadPoolTaskExecutor(Executor):
    """Worker threads executing a dependency-counted task DAG."""

    name = "threads"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._data_plane: DataPlaneStats | None = None

    @property
    def cores(self) -> int:
        return self.workers

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        sched = DependencyCountingScheduler(graphs)
        store = OutputStore()
        scratch = ScratchPool(graphs)
        # Same address space, so a heap-backed slab pool: output buffers
        # recycle across timesteps instead of being reallocated per task.
        buffers = HeapSlabPool()

        def worker() -> None:
            try:
                while True:
                    t0 = trace.begin() if trace.enabled else 0
                    key = sched.next_task()
                    if t0:
                        trace.complete("sched.wait", trace.CAT_SCHED, t0)
                    if key is None:
                        return
                    gi, t, i = key
                    g = sched.graphs[gi]
                    run_point(store, scratch, g, t, i, validate=validate,
                              pool=buffers)
                    sched.complete(g, t, i)
            except BaseException as exc:  # noqa: BLE001 - propagated below
                sched.fail(exc)

        threads = [
            threading.Thread(target=worker, name=f"task-worker-{w}", daemon=True)
            for w in range(self.workers)
        ]
        for th in threads:
            th.start()
        try:
            for th in threads:
                th.join()
            if sched.error is not None:
                raise sched.error
            store.assert_drained()
            self._data_plane = pool_data_plane(buffers)
        finally:
            buffers.close()
