"""Sequential-task-flow executor (PaRSEC DTD / StarPU analogue, paper
§3.8, §3.12).

The defining property of the dynamic-task-discovery model is that the
program never states dependencies explicitly: a main thread enumerates tasks
in *program order*, declaring only which data each task reads and writes,
and the runtime infers task-to-task edges from those accesses ("a task
depends on another task if it reads data written by the other task").

Each (graph, column, field) triple is a data item, where ``field = t mod
nb_fields`` rotates buffers across timesteps exactly like the official STF
shims double-buffer their columns (the core library's ``nb_fields``
parameter).  Task ``(t, i)`` reads the field written at ``t - 1`` of its
dependency columns and writes its own column's field ``t mod nb_fields``.
The scheduler derives read-after-write, write-after-read and
write-after-write edges and executes the discovered DAG on a worker pool
while discovery is still ongoing.  With ``nb_fields = 1`` the model degrades
to strict in-place semantics, which over-serializes — a measurable ablation
(see ``benchmarks/bench_ablation_nb_fields.py``).

Validation closes the loop: if the inferred edges were insufficient, a task
would run with a stale buffer and the core library would throw.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..core.executor_base import Executor
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace
from ._common import OutputStore, ScratchPool, TaskKey, run_point, task_keys

DataItem = Tuple[int, int, int]  # (graph_index, column, field)


@dataclass
class _ItemState:
    """Access history of one data item, as seen in program order."""

    last_writer: TaskKey | None = None
    readers: Set[TaskKey] = field(default_factory=set)


class STFScheduler:
    """Infers the DAG from sequential read/write declarations and runs it.

    Thread-safe: ``submit`` is called from the discovery thread while worker
    threads retire tasks concurrently.
    """

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._items: Dict[DataItem, _ItemState] = {}
        self._pending: Dict[TaskKey, int] = {}
        self._successors: Dict[TaskKey, List[TaskKey]] = {}
        self._completed: Set[TaskKey] = set()
        self._ready: List[TaskKey] = []
        self._bodies: Dict[TaskKey, object] = {}
        self._submitted = 0
        self._retired = 0
        self._discovery_done = False
        self._error: BaseException | None = None
        #: Edges inferred during discovery, by kind (for tests/inspection).
        self.edge_counts = {"raw": 0, "war": 0, "waw": 0}

    # -- discovery side -------------------------------------------------
    def submit(self, key: TaskKey, reads: Sequence[DataItem], write: DataItem,
               body) -> None:
        """Declare task ``key`` reading ``reads`` and writing ``write``."""
        with self._cv:
            if self._error is not None:
                raise self._error
            preds: Set[TaskKey] = set()
            for item in reads:
                st = self._items.setdefault(item, _ItemState())
                if st.last_writer is not None:
                    preds.add(st.last_writer)
                    self.edge_counts["raw"] += 1
                st.readers.add(key)
            wst = self._items.setdefault(write, _ItemState())
            for reader in wst.readers:
                if reader != key:
                    preds.add(reader)
                    self.edge_counts["war"] += 1
            if wst.last_writer is not None:
                preds.add(wst.last_writer)
                self.edge_counts["waw"] += 1
            wst.last_writer = key
            wst.readers = {key} if key in wst.readers else set()

            live_preds = {p for p in preds if p not in self._completed}
            self._bodies[key] = body
            self._submitted += 1
            for p in live_preds:
                self._successors.setdefault(p, []).append(key)
            if live_preds:
                self._pending[key] = len(live_preds)
            else:
                self._ready.append(key)
                self._cv.notify()

    def finish_discovery(self) -> None:
        with self._cv:
            self._discovery_done = True
            self._cv.notify_all()

    # -- execution side ---------------------------------------------------
    def _next(self) -> TaskKey | None:
        with self._cv:
            while True:
                if self._error is not None:
                    raise self._error
                if self._ready:
                    return self._ready.pop()
                if self._discovery_done and self._retired == self._submitted:
                    return None
                self._cv.wait(timeout=0.05)

    def _retire(self, key: TaskKey) -> None:
        with self._cv:
            self._completed.add(key)
            self._retired += 1
            for succ in self._successors.pop(key, ()):
                left = self._pending[succ] - 1
                if left == 0:
                    del self._pending[succ]
                    self._ready.append(succ)
                else:
                    self._pending[succ] = left
            self._cv.notify_all()

    def fail(self, exc: BaseException) -> None:
        with self._cv:
            if self._error is None:
                self._error = exc
            self._cv.notify_all()

    def worker_main(self) -> None:
        try:
            while True:
                key = self._next()
                if key is None:
                    return
                self._bodies.pop(key)()
                self._retire(key)
        except BaseException as exc:  # noqa: BLE001 - propagated to run()
            self.fail(exc)

    @property
    def error(self) -> BaseException | None:
        return self._error


class DataflowExecutor(Executor):
    """Sequential task discovery with runtime dependence inference."""

    name = "dataflow"

    def __init__(self, workers: int = 2, nb_fields: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if nb_fields < 1:
            raise ValueError(f"nb_fields must be >= 1, got {nb_fields}")
        self.workers = workers
        self.nb_fields = nb_fields

    @property
    def cores(self) -> int:
        # The discovery thread plays the role of the runtime's inline
        # main thread; workers execute tasks.
        return self.workers

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        by_index = {g.graph_index: g for g in graphs}
        sched = STFScheduler(self.workers)
        store = OutputStore()
        scratch = ScratchPool(graphs)

        threads = [
            threading.Thread(target=sched.worker_main, name=f"stf-worker-{w}",
                             daemon=True)
            for w in range(self.workers)
        ]
        for th in threads:
            th.start()

        try:
            nf = self.nb_fields
            t0 = trace.begin() if trace.enabled else 0
            for gi, t, i in task_keys(graphs):
                g = by_index[gi]
                reads = (
                    [(gi, j, (t - 1) % nf) for j in g.dependency_points(t, i)]
                    if t
                    else []
                )
                body = (
                    lambda g=g, t=t, i=i: run_point(
                        store, scratch, g, t, i, validate=validate
                    )
                )
                sched.submit((gi, t, i), reads, (gi, i, t % nf), body)
            if t0:
                # Discovery overlaps execution; its span length against the
                # workers' kernel spans shows how far ahead the main thread
                # runs.
                trace.complete("stf.discover", trace.CAT_DISPATCH, t0)
        finally:
            sched.finish_discovery()
            for th in threads:
                th.join()
        if sched.error is not None:
            raise sched.error
        store.assert_drained()
