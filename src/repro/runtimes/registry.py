"""Executor registry: name -> factory.

Mirrors the role of Table 3: one entry per runtime paradigm, all driving the
same core library.  New executors self-contained in one module + one line
here — the O(m + n) property of the paper's design.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Type

from ..core.executor_base import Executor
from .actors import ActorExecutor
from .async_rt import AsyncioExecutor
from .bulk_sync import BulkSyncExecutor
from .centralized import CentralizedExecutor
from .cluster_rt import ClusterTCPExecutor, ClusterUDSExecutor
from .dataflow import DataflowExecutor
from .futures_rt import FuturesExecutor
from .p2p import P2PExecutor
from .processes import ProcessPoolExecutor
from .ptg import PTGExecutor
from .serial import SerialExecutor
from .shm import ShmProcessPoolExecutor
from .threads import ThreadPoolTaskExecutor

# ``timeout`` (per-round worker deadline) and ``fault`` (injected fault)
# belong to the supervised process executors; the same-address-space
# executors accept and ignore them so callers can pass fault-tolerance
# options uniformly (e.g. from the CLI) without knowing the substrate.
_FACTORIES: Dict[str, Callable[..., Executor]] = {
    "serial": lambda workers=1, **kw: SerialExecutor(),
    "bulk_sync": lambda workers=2, **kw: BulkSyncExecutor(workers),
    "p2p": lambda workers=2, **kw: P2PExecutor(workers),
    "threads": lambda workers=2, **kw: ThreadPoolTaskExecutor(workers),
    "processes": lambda workers=2, timeout=None, fault=None, **kw:
        ProcessPoolExecutor(workers, timeout=timeout, fault=fault),
    "shm_processes": lambda workers=2, timeout=None, fault=None, **kw:
        ShmProcessPoolExecutor(workers, timeout=timeout, fault=fault),
    "dataflow": lambda workers=2, timeout=None, fault=None, **kw:
        DataflowExecutor(workers, **kw),
    "futures": lambda workers=2, **kw: FuturesExecutor(workers),
    "asyncio": lambda workers=2, **kw: AsyncioExecutor(workers),
    "ptg": lambda workers=2, **kw: PTGExecutor(workers),
    "actors": lambda workers=2, **kw: ActorExecutor(workers),
    "centralized": lambda workers=2, timeout=None, fault=None, **kw:
        CentralizedExecutor(workers, **kw),
    "cluster_tcp": lambda workers=2, timeout=None, fault=None, **kw:
        ClusterTCPExecutor(workers, timeout=timeout, fault=fault),
    "cluster_uds": lambda workers=2, timeout=None, fault=None, **kw:
        ClusterUDSExecutor(workers, timeout=timeout, fault=fault),
}

# Executor classes by name, used to report substrate metadata (isolation
# level) without instantiating — factories stay the single source of
# construction, this map the single source of "what kind of thing is it".
_CLASSES: Dict[str, Type[Executor]] = {
    "serial": SerialExecutor,
    "bulk_sync": BulkSyncExecutor,
    "p2p": P2PExecutor,
    "threads": ThreadPoolTaskExecutor,
    "processes": ProcessPoolExecutor,
    "shm_processes": ShmProcessPoolExecutor,
    "dataflow": DataflowExecutor,
    "futures": FuturesExecutor,
    "asyncio": AsyncioExecutor,
    "ptg": PTGExecutor,
    "actors": ActorExecutor,
    "centralized": CentralizedExecutor,
    "cluster_tcp": ClusterTCPExecutor,
    "cluster_uds": ClusterUDSExecutor,
}
assert _CLASSES.keys() == _FACTORIES.keys()


def available_runtimes() -> List[str]:
    """Names of all registered executors."""
    return sorted(_FACTORIES)


def runtime_isolation(name: str) -> str:
    """Isolation level of a registered executor (``serial`` / ``threads``
    / ``processes`` / ``cluster``) without instantiating it."""
    try:
        return _CLASSES[name].isolation
    except KeyError:
        raise ValueError(
            f"unknown runtime {name!r}; available: {', '.join(available_runtimes())}"
        ) from None


def runtime_core_cost(name: str, workers: int) -> int:
    """Host cores a run of this executor effectively occupies.

    The suite scheduler's admission currency: concurrent cells are admitted
    while their summed costs fit the host's core budget, so two process
    pools never oversubscribe the machine and corrupt each other's
    timings.  ``serial`` costs one core regardless of ``workers``; the
    process/thread substrates cost one core per worker; the cluster
    substrates cost one extra core for the supervising launcher that polls
    the rank mesh.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    isolation = runtime_isolation(name)
    if isolation == "serial":
        return 1
    if isolation == "cluster":
        return workers + 1
    return workers


def runtime_core_cost_formula(name: str) -> str:
    """Human-readable core-cost rule of a registered executor.

    The symbolic counterpart of :func:`runtime_core_cost`, shown by
    ``task-bench --list-runtimes`` so suite/serve admission decisions are
    inspectable without picking a worker count: ``"1"`` (serial),
    ``"workers"`` (one core per worker), or ``"workers+1"`` (cluster
    substrates reserve a core for the supervising launcher).
    """
    isolation = runtime_isolation(name)
    if isolation == "serial":
        return "1"
    if isolation == "cluster":
        return "workers+1"
    return "workers"


def describe_runtimes() -> List[Tuple[str, str, str]]:
    """``(name, isolation, core-cost formula)`` for every registered
    executor, sorted by name (the backing data of
    ``task-bench --list-runtimes``)."""
    return [
        (name, _CLASSES[name].isolation, runtime_core_cost_formula(name))
        for name in available_runtimes()
    ]


def make_executor(name: str, workers: int = 2, **kwargs) -> Executor:
    """Instantiate a registered executor by name.

    ``workers`` is the degree of parallelism; extra keyword arguments are
    forwarded to executors that accept them (e.g. ``nb_fields`` for
    ``dataflow``, ``dispatch_overhead_us`` for ``centralized``).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown runtime {name!r}; available: {', '.join(available_runtimes())}"
        ) from None
    return factory(workers=workers, **kwargs)
