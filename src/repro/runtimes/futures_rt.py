"""Delayed-futures executor (Dask analogue, paper §3.3).

The paper's Dask shim (Listing 2) builds a graph of delayed calls whose
arguments are the futures of their dependencies.  This executor does the
same with ``concurrent.futures``: every task is submitted as a callable
closing over its input futures and blocking on them before executing.

Deadlock freedom relies on two properties, both guaranteed here:

1. tasks are submitted in timestep-major (topological) order, and
2. ``ThreadPoolExecutor``'s work queue is FIFO,

so by the time a task is dequeued, every dependency has already been
dequeued — i.e. is finished or running on another worker — and blocking on
its future cannot starve the pool.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Sequence

import numpy as np

from ..core.executor_base import Executor
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace
from ._common import (
    EV_ACQUIRE,
    EV_FINISH,
    EV_PUBLISH,
    EV_START,
    ScratchPool,
    TaskKey,
    capture_output,
    record_event,
    task_keys,
)


class FuturesExecutor(Executor):
    """Dask-delayed-style execution over a FIFO thread pool."""

    name = "futures"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    @property
    def cores(self) -> int:
        return self.workers

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        by_index = {g.graph_index: g for g in graphs}
        scratch = ScratchPool(graphs)
        futures: Dict[TaskKey, Future] = {}

        def run_task(
            g: TaskGraph, t: int, i: int, input_futures: List[Future]
        ) -> np.ndarray:
            task = (g.graph_index, t, i)
            record_event(EV_START, task)
            inputs = []
            if t:
                for j, f in zip(g.dependency_points(t, i), input_futures):
                    inputs.append(f.result())
                    record_event(EV_ACQUIRE, task, (g.graph_index, t - 1, j))
            t0 = trace.begin() if trace.enabled else 0
            out = g.execute_point(
                t, i, inputs, scratch=scratch.get(g.graph_index, i),
                validate=validate,
            )
            if t0:
                trace.complete("task", trace.CAT_KERNEL, t0, {"task": task})
            record_event(EV_FINISH, task)
            # The future resolving (immediately after this return) is the
            # publication point; record it before the value becomes visible.
            t0 = trace.begin() if trace.enabled else 0
            record_event(EV_PUBLISH, task)
            capture_output(task, out)
            if t0:
                trace.complete("publish", trace.CAT_PUBLISH, t0, {"task": task})
            return out

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            # Topological submission order (see module docstring).
            for gi, t, i in task_keys(graphs):
                g = by_index[gi]
                deps = (
                    [futures[(gi, t - 1, j)] for j in g.dependency_points(t, i)]
                    if t
                    else []
                )
                futures[(gi, t, i)] = pool.submit(run_task, g, t, i, deps)
            # Propagate the first failure (and wait for completion).
            for f in futures.values():
                f.result()
