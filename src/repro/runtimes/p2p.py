"""Point-to-point message-passing executor (shared-memory p2p analogue).

Columns are block-partitioned across ``workers`` ranks, exactly like an MPI
Task Bench run maps columns to ranks.  Each rank advances timestep by
timestep: receive the inputs its tasks need from other ranks' posted
messages, execute, then send outputs to consumer ranks.  Sends are
non-blocking (mailbox posts), receives block until the message arrives —
the ``MPI_Isend``/``MPI_Irecv`` structure of the paper's best-performing MPI
variant (§3.4), but with *threads in one address space* standing in for
ranks: a "message" is a mailbox reference, nothing crosses a process
boundary.  For the genuinely distributed version of this pattern — rank
processes exchanging bytes over real sockets — see :mod:`repro.cluster`
(``cluster_tcp`` / ``cluster_uds``).  Unlike
:class:`~repro.runtimes.bulk_sync.BulkSyncExecutor` there is no global
barrier: ranks drift apart as far as the dependence pattern allows.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.executor_base import Executor
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace
from ._common import (
    EV_ACQUIRE,
    EV_FINISH,
    EV_PUBLISH,
    EV_START,
    OutputStore,
    ScratchPool,
    TaskKey,
    capture_output,
    record_event,
)


class _ExecutionFailure:
    """Shared failure flag so one rank's error releases all blocked ranks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.error: BaseException | None = None

    def set(self, exc: BaseException) -> None:
        with self._lock:
            if self.error is None:
                self.error = exc

    def check(self) -> None:
        with self._lock:
            if self.error is not None:
                raise self.error


class Mailbox:
    """Per-rank incoming message store keyed by producer task.

    ``post`` is non-blocking; ``recv`` blocks until the keyed message is
    available, then decrements its local reference count (several consumer
    columns on one rank may read the same remote output).
    """

    def __init__(self, failure: _ExecutionFailure) -> None:
        self._cond = threading.Condition()
        self._messages: Dict[TaskKey, Tuple[np.ndarray, int]] = {}
        self._failure = failure

    def post(self, key: TaskKey, value: np.ndarray, consumers: int) -> None:
        with self._cond:
            if key in self._messages:
                raise RuntimeError(f"duplicate message for {key}")
            self._messages[key] = (value, consumers)
            self._cond.notify_all()

    def recv(self, key: TaskKey) -> np.ndarray:
        with self._cond:
            while key not in self._messages:
                self._failure.check()
                self._cond.wait(timeout=0.05)
            value, remaining = self._messages[key]
            if remaining == 1:
                del self._messages[key]
            else:
                self._messages[key] = (value, remaining - 1)
            return value

    def wake(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._messages)


def block_owner(column: int, width: int, ranks: int) -> int:
    """Rank owning ``column`` under block partitioning (MPI-style)."""
    return min(column * ranks // width, ranks - 1)


class P2PExecutor(Executor):
    """Rank-per-thread executor with point-to-point message passing."""

    name = "p2p"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    @property
    def cores(self) -> int:
        return self.workers

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        failure = _ExecutionFailure()
        mailboxes = [Mailbox(failure) for _ in range(self.workers)]
        locals_ = [OutputStore() for _ in range(self.workers)]
        scratch = ScratchPool(graphs)

        threads = [
            threading.Thread(
                target=self._rank_main,
                args=(rank, graphs, mailboxes, locals_[rank], scratch, failure,
                      validate),
                name=f"p2p-rank-{rank}",
                daemon=True,
            )
            for rank in range(self.workers)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        failure.check()
        for rank in range(self.workers):
            locals_[rank].assert_drained()
            if len(mailboxes[rank]):
                raise RuntimeError(f"rank {rank} has undelivered messages")

    # ------------------------------------------------------------------
    def _rank_main(
        self,
        rank: int,
        graphs: Sequence[TaskGraph],
        mailboxes: List[Mailbox],
        local: OutputStore,
        scratch: ScratchPool,
        failure: _ExecutionFailure,
        validate: bool,
    ) -> None:
        try:
            self._rank_loop(rank, graphs, mailboxes, local, scratch, failure,
                            validate)
        except BaseException as exc:  # noqa: BLE001 - propagated to main thread
            failure.set(exc)
            for mb in mailboxes:
                mb.wake()

    def _rank_loop(
        self,
        rank: int,
        graphs: Sequence[TaskGraph],
        mailboxes: List[Mailbox],
        local: OutputStore,
        scratch: ScratchPool,
        failure: _ExecutionFailure,
        validate: bool,
    ) -> None:
        max_t = max(g.timesteps for g in graphs)
        for t in range(max_t):
            for g in graphs:
                if t >= g.timesteps:
                    continue
                off = g.offset_at_timestep(t)
                for i in range(off, off + g.width_at_timestep(t)):
                    if block_owner(i, g.max_width, self.workers) != rank:
                        continue
                    self._run_task(rank, g, t, i, mailboxes, local, scratch,
                                   validate)

    def _run_task(
        self,
        rank: int,
        g: TaskGraph,
        t: int,
        i: int,
        mailboxes: List[Mailbox],
        local: OutputStore,
        scratch: ScratchPool,
        validate: bool,
    ) -> None:
        task = (g.graph_index, t, i)
        record_event(EV_START, task)
        inputs = []
        if t > 0:
            for j in g.dependency_points(t, i):
                key = (g.graph_index, t - 1, j)
                if block_owner(j, g.max_width, self.workers) == rank:
                    inputs.append(local.take(key))
                else:
                    t0 = trace.begin() if trace.enabled else 0
                    inputs.append(mailboxes[rank].recv(key))
                    if t0:
                        trace.complete(
                            "recv.wait", trace.CAT_SCHED, t0,
                            {"task": task, "source": key},
                        )
                record_event(EV_ACQUIRE, task, key)
        t0 = trace.begin() if trace.enabled else 0
        out = g.execute_point(
            t, i, inputs, scratch=scratch.get(g.graph_index, i), validate=validate
        )
        if t0:
            trace.complete("task", trace.CAT_KERNEL, t0, {"task": task})
        record_event(EV_FINISH, task)
        self._deliver(rank, g, t, i, out, mailboxes, local)

    def _deliver(
        self,
        rank: int,
        g: TaskGraph,
        t: int,
        i: int,
        out: np.ndarray,
        mailboxes: List[Mailbox],
        local: OutputStore,
    ) -> None:
        # Count consumer columns per destination rank, then send each remote
        # rank the message once (with its local consumer count) and keep a
        # refcounted local copy for same-rank consumers.
        per_rank: Dict[int, int] = {}
        for j in g.reverse_dependency_points(t, i):
            dest = block_owner(j, g.max_width, self.workers)
            per_rank[dest] = per_rank.get(dest, 0) + 1
        key = (g.graph_index, t, i)
        if any(dest != rank for dest in per_rank):
            # Remote sends bypass OutputStore.put, so the mailbox path needs
            # its own publish event and capture snapshot (local.put records
            # its own).
            t0 = trace.begin() if trace.enabled else 0
            record_event(EV_PUBLISH, key)
            capture_output(key, out)
            if t0:
                trace.complete("publish", trace.CAT_PUBLISH, t0, {"task": key})
        for dest, consumers in per_rank.items():
            if dest == rank:
                local.put(key, out, consumers)
            else:
                mailboxes[dest].post(key, out, consumers)
