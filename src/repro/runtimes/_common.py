"""Shared machinery for runtime shims.

The paper's core library keeps each system implementation small ("our 15
Task Bench implementations range from 88 to 1500 lines").  The same applies
here: executors share the bookkeeping below and differ only in *how* they
schedule tasks and route buffers.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core import bufpool
from ..core import fastpath as _fastpath
from ..core.bufpool import PayloadRef, PoolStats, SlabPool
from ..core.metrics import DataPlaneStats
from ..core.task_graph import TaskGraph
from ..trace import recorder as trace

#: Task key: (graph_index, timestep, column).
TaskKey = Tuple[int, int, int]


# ----------------------------------------------------------------------
# Event tracing (consumed by repro.check.hb_audit)
# ----------------------------------------------------------------------
#: Event kinds recorded by the trace hooks.
EV_START = "start"  #: a task began executing
EV_ACQUIRE = "acquire"  #: a task obtained one input buffer (source = producer)
EV_FINISH = "finish"  #: a task's kernel completed (output fully computed)
EV_PUBLISH = "publish"  #: a task's output was made visible to consumers


@dataclass(frozen=True)
class TraceEvent:
    """One scheduling event of one task, recorded in global arrival order.

    ``seq`` is a total order consistent with real time (the recorder holds a
    lock), ``thread`` identifies the executing thread (the "process" of the
    vector-clock model), and ``source`` names the producer task for
    ``acquire`` events.
    """

    seq: int
    thread: int
    kind: str
    task: TaskKey
    source: Optional[TaskKey] = None


class TraceRecorder:
    """Thread-safe append-only event log.

    Installed via :func:`tracing`; when no recorder is installed the hooks
    cost one ``None`` check per event site, keeping the un-audited hot path
    unaffected.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: List[TraceEvent] = []

    def record(self, kind: str, task: TaskKey, source: TaskKey | None = None) -> None:
        with self._lock:
            self.events.append(
                TraceEvent(len(self.events), threading.get_ident(), kind, task, source)
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)


_active_recorder: TraceRecorder | None = None


def trace_recorder() -> TraceRecorder | None:
    """The currently installed recorder, or ``None`` when tracing is off."""
    return _active_recorder


@contextlib.contextmanager
def tracing(recorder: TraceRecorder):
    """Install ``recorder`` as the process-wide trace sink for the duration.

    Process-wide (not thread-local) on purpose: executors spawn worker
    threads that must all report into the same schedule trace.  Nesting or
    concurrent audited runs are not supported.
    """
    global _active_recorder
    if _active_recorder is not None:
        raise RuntimeError("a trace recorder is already installed")
    _active_recorder = recorder
    try:
        yield recorder
    finally:
        _active_recorder = None


#: Synchronous per-event observer (see :func:`set_event_observer`).
_event_observer: Callable[[str, TaskKey, Optional[TaskKey]], None] | None = None


def set_event_observer(
    fn: Callable[[str, TaskKey, Optional[TaskKey]], None] | None,
) -> None:
    """Install ``fn`` as the process-wide trace-event observer (``None``
    clears it).

    Unlike a :class:`TraceRecorder` — which buffers events for post-hoc
    replay — the observer is invoked *synchronously in the recording
    thread* at every event site, so it can inspect that thread's live
    state (its lockset, its clock) at the exact moment of the access.
    This is the hook the lockset sanitizer
    (:mod:`repro.check.concurrency`) hangs off; it composes with an
    installed recorder (both fire).  Only one observer at a time.
    """
    global _event_observer
    if fn is not None and _event_observer is not None:
        raise RuntimeError("a trace-event observer is already installed")
    _event_observer = fn


def record_event(kind: str, task: TaskKey, source: TaskKey | None = None) -> None:
    """Record one event if tracing is active (no-op otherwise)."""
    rec = _active_recorder
    if rec is not None:
        rec.record(kind, task, source)
    obs = _event_observer
    if obs is not None:
        obs(kind, task, source)


def events_active() -> bool:
    """Whether any schedule-event sink (recorder or observer) is installed.

    Batch paths that would have to *compute* something per event — e.g.
    re-deriving dependency columns to emit acquires — check this first so
    the work is skipped entirely on untraced runs, where
    :func:`record_event` alone would already no-op."""
    return _active_recorder is not None or _event_observer is not None


# ----------------------------------------------------------------------
# Output capture (consumed by the executor-conformance suite)
# ----------------------------------------------------------------------
_capture_lock = threading.Lock()
_capture_sink: Dict[TaskKey, bytes] | None = None


@contextlib.contextmanager
def capturing_outputs() -> Iterator[Dict[TaskKey, bytes]]:
    """Record a bytes snapshot of every published task output.

    The differential conformance suite runs each executor under this
    context and compares the captured ``{task: bytes}`` mapping bytewise
    against the serial executor's.  Snapshots are taken at publish time —
    before pooled buffers can be recycled — and publishing two *different*
    payloads for one task is an immediate error.

    Process-wide like :func:`tracing`: worker threads all report into the
    same sink.  Nested captures are not supported.
    """
    global _capture_sink
    if _capture_sink is not None:
        raise RuntimeError("an output capture is already active")
    sink: Dict[TaskKey, bytes] = {}
    _capture_sink = sink
    try:
        yield sink
    finally:
        _capture_sink = None


def capture_active() -> bool:
    """Whether an output capture is currently installed.

    Cross-process executors check this before a run so they only ship
    output snapshots back from their workers/ranks when a conformance
    capture is actually listening.
    """
    return _capture_sink is not None


def capture_output(key: TaskKey, value: "bufpool.Payload") -> None:
    """Snapshot one published output if a capture is active (no-op
    otherwise).  Called from every publish site: :meth:`OutputStore.put`
    and executor-private delivery paths that bypass it."""
    sink = _capture_sink
    if sink is None:
        return
    data = bufpool.as_array(value).tobytes()
    with _capture_lock:
        prev = sink.get(key)
        if prev is not None and prev != data:
            raise RuntimeError(
                f"task {key} published two different payloads "
                f"({len(prev)} vs {len(data)} bytes)"
            )
        sink[key] = data


def task_keys(graphs: Sequence[TaskGraph]) -> Iterator[TaskKey]:
    """All task keys of all graphs, timestep-major and graph-interleaved,
    the canonical "program order" for sequential-discovery runtimes."""
    max_t = max(g.timesteps for g in graphs)
    for t in range(max_t):
        for g in graphs:
            if t >= g.timesteps:
                continue
            off = g.offset_at_timestep(t)
            for i in range(off, off + g.width_at_timestep(t)):
                yield (g.graph_index, t, i)


def consumer_count(g: TaskGraph, t: int, i: int) -> int:
    """How many tasks read the output of ``(t, i)``.

    Delegates to :meth:`TaskGraph.consumer_count`, which serves the answer
    from the compiled dependence table when the fast path is enabled —
    historically this recomputed ``reverse_dependencies`` on every
    ``OutputStore.put``, which dominated publish cost for fine-grained
    graphs.
    """
    return g.consumer_count(t, i)


class OutputStore:
    """Thread-safe, reference-counted storage of task outputs.

    Each output is stored with the number of consumers that will read it and
    is discarded after the last read, so executors hold only the live
    frontier of the graph (like the ``last_row`` variable of the paper's
    Dask listing, but correct for asynchronous execution where several
    timesteps are in flight).

    Values may be raw arrays or :class:`~repro.core.bufpool.PayloadRef`
    handles — the store never touches payload bytes, so pooled executors
    route handles through it unchanged (pool reference counts are the
    executor's responsibility; the store counts *reads*, the pool counts
    *readers still holding the buffer*).

    :meth:`assert_drained` turns forgotten reads — i.e. buffer leaks caused
    by mis-routed dependencies — into test failures.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: Dict[TaskKey, Tuple[bufpool.Payload, int]] = {}

    def put(
        self,
        key: TaskKey,
        value: "bufpool.Payload",
        consumers: int,
        *,
        quiet: bool = False,
    ) -> None:
        """Store ``value`` to be read by exactly ``consumers`` tasks.

        ``quiet=True`` registers the entry without emitting the publish
        event or capturing the payload: the window planner of the shm
        executor inserts handles *before* the kernels that fill them have
        run, and surfaces publication (event + capture) itself at retire
        time, once the bytes exist and program order can be respected.
        """
        if consumers <= 0:
            return
        traced = trace.enabled
        t0 = trace.begin() if traced else 0
        if not quiet:
            record_event(EV_PUBLISH, key)
            capture_output(key, value)
        with self._lock:
            if key in self._data:
                raise RuntimeError(f"output for task {key} stored twice")
            self._data[key] = (value, consumers)
        if traced:
            trace.complete("publish", trace.CAT_PUBLISH, t0, {"task": key})

    def take(self, key: TaskKey) -> "bufpool.Payload":
        """Read one consumer's copy of the output of ``key``."""
        with self._lock:
            try:
                value, remaining = self._data[key]
            except KeyError:
                raise RuntimeError(
                    f"output for task {key} requested but not produced"
                ) from None
            if remaining == 1:
                del self._data[key]
            else:
                self._data[key] = (value, remaining - 1)
            return value

    def gather(
        self, g: TaskGraph, t: int, i: int, *, quiet: bool = False
    ) -> List["bufpool.Payload"]:
        """Collect the inputs of task ``(t, i)`` in canonical order.

        On the fast path all takes happen under one lock hold (a per-input
        lock round-trip is measurable at empty-kernel granularity); with
        the fast path off the original per-input ``take`` loop runs
        unchanged as the reference.  ``quiet=True`` suppresses the acquire
        events (see :meth:`put`): the shm window planner gathers handles
        ahead of execution and emits the events in program order at retire.
        """
        if t == 0:
            return []
        if quiet:
            gi = g.graph_index
            data = self._data
            inputs: List["bufpool.Payload"] = []
            with self._lock:
                for j in g.dependency_columns(t, i):
                    source = (gi, t - 1, j)
                    entry = data.get(source)
                    if entry is None:
                        raise RuntimeError(
                            f"output for task {source} requested but not "
                            "produced"
                        )
                    value, remaining = entry
                    if remaining == 1:
                        del data[source]
                    else:
                        data[source] = (value, remaining - 1)
                    inputs.append(value)
            return inputs
        if not _fastpath._ENABLED:
            consumer = (g.graph_index, t, i)
            inputs = []
            for j in g.dependency_columns(t, i):
                source = (g.graph_index, t - 1, j)
                inputs.append(self.take(source))
                record_event(EV_ACQUIRE, consumer, source)
            return inputs
        gi = g.graph_index
        cols = g.dependency_columns(t, i)
        data = self._data
        inputs = []
        with self._lock:
            for j in cols:
                source = (gi, t - 1, j)
                entry = data.get(source)
                if entry is None:
                    raise RuntimeError(
                        f"output for task {source} requested but not produced"
                    )
                value, remaining = entry
                if remaining == 1:
                    del data[source]
                else:
                    data[source] = (value, remaining - 1)
                inputs.append(value)
        if _active_recorder is not None or _event_observer is not None:
            consumer = (gi, t, i)
            for j in cols:
                record_event(EV_ACQUIRE, consumer, (gi, t - 1, j))
        return inputs

    def gather_batch(
        self, graphs: Dict[int, TaskGraph], keys: Sequence[TaskKey]
    ) -> List[List["bufpool.Payload"]]:
        """Collect the inputs of several *ready* tasks under one lock hold.

        The fast-path batch twin of :meth:`gather`: every key's producers
        have already published (the scheduler only batches ready tasks), so
        no take can fail to find its source mid-batch.  Start/acquire
        events are emitted after the lock, in per-task program order.
        """
        results: List[List["bufpool.Payload"]] = []
        with self._lock:
            data = self._data
            for gi, t, i in keys:
                if t == 0:
                    results.append([])
                    continue
                g = graphs[gi]
                inputs = []
                for j in g.dependency_columns(t, i):
                    source = (gi, t - 1, j)
                    entry = data.get(source)
                    if entry is None:
                        raise RuntimeError(
                            f"output for task {source} requested but not "
                            "produced"
                        )
                    value, remaining = entry
                    if remaining == 1:
                        del data[source]
                    else:
                        data[source] = (value, remaining - 1)
                    inputs.append(value)
                results.append(inputs)
        if _active_recorder is not None or _event_observer is not None:
            for (gi, t, i), inputs in zip(keys, results):
                key = (gi, t, i)
                record_event(EV_START, key)
                if t > 0:
                    for j in graphs[gi].dependency_columns(t, i):
                        record_event(EV_ACQUIRE, key, (gi, t - 1, j))
        return results

    def put_batch(
        self,
        items: Sequence[Tuple[TaskKey, "bufpool.Payload", int]],
    ) -> None:
        """Store several ``(key, value, consumers)`` outputs under one lock
        hold (zero-consumer entries are skipped, as in :meth:`put`)."""
        items = [entry for entry in items if entry[2] > 0]
        if not items:
            return
        traced = trace.enabled
        t0 = trace.begin() if traced else 0
        for key, value, _consumers in items:
            record_event(EV_PUBLISH, key)
            capture_output(key, value)
        with self._lock:
            data = self._data
            for key, value, consumers in items:
                if key in data:
                    raise RuntimeError(f"output for task {key} stored twice")
                data[key] = (value, consumers)
        if traced:
            trace.complete(
                "publish", trace.CAT_PUBLISH, t0, {"tasks": len(items)}
            )

    def assert_drained(self) -> None:
        """Raise if any outputs were produced but never fully consumed."""
        with self._lock:
            if self._data:
                leaked = sorted(self._data)[:5]
                raise RuntimeError(
                    f"{len(self._data)} task outputs never consumed, "
                    f"e.g. {leaked}"
                )

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class ScratchPool:
    """Per-column scratch buffers, allocated lazily and reused across
    timesteps (the official shims thread one scratch buffer through each
    column — see the Dask listing in the paper)."""

    def __init__(self, graphs: Sequence[TaskGraph]) -> None:
        self._graphs = {g.graph_index: g for g in graphs}
        self._no_scratch = all(
            g.scratch_bytes_per_task == 0 for g in graphs
        )
        self._lock = threading.Lock()
        self._buffers: Dict[Tuple[int, int], np.ndarray] = {}
        # Per-thread memo of the shared table: after the first (graph,
        # column) touch, steady-state lookups are a lock-free dict hit in
        # the calling thread (columns are re-visited every timestep, so
        # this removes one lock acquire per task).
        self._tls = threading.local()

    def get(self, graph_index: int, column: int) -> np.ndarray | None:
        if self._no_scratch:
            return None
        g = self._graphs[graph_index]
        if g.scratch_bytes_per_task == 0:
            return None
        key = (graph_index, column)
        try:
            memo = self._tls.memo
        except AttributeError:
            memo = self._tls.memo = {}
        buf = memo.get(key)
        if buf is not None:
            return buf
        with self._lock:
            buf = self._buffers.get(key)
            if buf is None:
                buf = g.prepare_scratch()
                self._buffers[key] = buf
        memo[key] = buf
        return buf


def run_point(
    store: OutputStore,
    scratch: ScratchPool,
    g: TaskGraph,
    t: int,
    i: int,
    *,
    validate: bool,
    pool: SlabPool | None = None,
) -> None:
    """Gather inputs, execute one task, and publish its output.

    With a ``pool``, the task's output is written into a recycled slab slot
    acquired with one reference per consumer; each consumer (a later
    ``run_point`` call) drops its reference once it has read the buffer, at
    which point the slot returns to the free list.  Without a pool the
    historical allocate-per-task path is used.
    """
    key = (g.graph_index, t, i)
    record_event(EV_START, key)
    inputs = store.gather(g, t, i)
    consumers = consumer_count(g, t, i)
    traced = trace.enabled
    if pool is None:
        t0 = trace.begin() if traced else 0
        out = g.execute_point(
            t, i, inputs, scratch=scratch.get(g.graph_index, i), validate=validate
        )
        if traced:
            trace.complete("task", trace.CAT_KERNEL, t0, {"task": key})
        record_event(EV_FINISH, key)
        store.put(key, out, consumers)
        return
    ref = pool.acquire(g.output_bytes_per_task, refs=max(consumers, 1))
    t0 = trace.begin() if traced else 0
    g.execute_point(
        t, i, inputs, scratch=scratch.get(g.graph_index, i), validate=validate,
        out=ref,
    )
    if traced:
        trace.complete("task", trace.CAT_KERNEL, t0, {"task": key})
    record_event(EV_FINISH, key)
    if consumers > 0:
        store.put(key, ref, consumers)
    else:
        pool.decref(ref)
    # Reading is done: drop this consumer's reference on every pooled input
    # so fully-read slots recycle (one lock hold for all of them on the
    # fast path; the per-input loop is the reference behavior).
    if _fastpath._ENABLED:
        drops = [value for value in inputs if type(value) is PayloadRef]
        if drops:
            pool.decref_batch(drops)
        return
    for value in inputs:
        if isinstance(value, PayloadRef):
            pool.decref(value)


def run_point_batch(
    store: OutputStore,
    scratch: ScratchPool,
    graphs: Dict[int, TaskGraph],
    keys: Sequence[TaskKey],
    *,
    validate: bool,
    pool: SlabPool,
) -> List[Tuple[TaskGraph, int, int]]:
    """Fast-path fusion of :func:`run_point` over a batch of ready tasks.

    Every task in ``keys`` is ready (all inputs published), so the batch's
    data-plane traffic can be coalesced: one pool lock hold acquires all
    output slots (per size class), one store lock hold publishes all
    outputs, and one pool lock hold drops every consumed input reference.
    Per-task semantics — event order, validation, trace spans — match
    ``run_point`` exactly.  Returns ``(graph, t, i)`` completion tuples for
    the scheduler.
    """
    inputs_list = store.gather_batch(graphs, keys)
    metas = []
    single_graph = True
    g0 = graphs[keys[0][0]]
    for key, inputs in zip(keys, inputs_list):
        gi, t, i = key
        g = graphs[gi]
        if g is not g0:
            single_graph = False
        metas.append((g, t, i, key, inputs, g.consumer_count(t, i)))
    if single_graph:
        out_refs: List[PayloadRef | None] = pool.acquire_batch(
            g0.output_bytes_per_task, [max(m[5], 1) for m in metas]
        )
    else:
        out_refs = [None] * len(metas)
        by_size: Dict[int, List[int]] = {}
        for idx, meta in enumerate(metas):
            by_size.setdefault(meta[0].output_bytes_per_task, []).append(idx)
        for nbytes, idxs in by_size.items():
            got = pool.acquire_batch(
                nbytes, [max(metas[j][5], 1) for j in idxs]
            )
            for j, ref in zip(idxs, got):
                out_refs[j] = ref
    traced = trace.enabled
    puts: List[Tuple[TaskKey, PayloadRef, int]] = []
    drops: List[PayloadRef] = []
    done: List[Tuple[TaskGraph, int, int]] = []
    for (g, t, i, key, inputs, consumers), ref in zip(metas, out_refs):
        t0 = trace.begin() if traced else 0
        g.execute_point(
            t, i, inputs, scratch=scratch.get(g.graph_index, i),
            validate=validate, out=ref,
        )
        if traced:
            trace.complete("task", trace.CAT_KERNEL, t0, {"task": key})
        record_event(EV_FINISH, key)
        if consumers > 0:
            puts.append((key, ref, consumers))
        else:
            drops.append(ref)
        for value in inputs:
            if type(value) is PayloadRef:
                drops.append(value)
        done.append((g, t, i))
    store.put_batch(puts)
    if drops:
        pool.decref_batch(drops)
    return done


def pool_data_plane(
    pool: SlabPool,
    *,
    base: "PoolStats | None" = None,
    bytes_copied: int = 0,
    payloads_copied: int = 0,
) -> DataPlaneStats:
    """Fold a pool's counters (plus any copy accounting the executor kept)
    into the uniform :class:`DataPlaneStats` record.

    ``base`` is a snapshot (``dataclasses.replace(pool.stats)``) taken at run
    start; executors whose pool persists across runs pass it so each run
    reports its own delta rather than the pool's lifetime totals.
    """
    s = pool.stats
    acquires = s.acquires - (base.acquires if base else 0)
    hits = s.hits - (base.hits if base else 0)
    misses = s.misses - (base.misses if base else 0)
    bytes_shared = s.bytes_shared - (base.bytes_shared if base else 0)
    return DataPlaneStats(
        bytes_copied=bytes_copied,
        payloads_copied=payloads_copied,
        bytes_shared=bytes_shared,
        payloads_shared=acquires,
        pool_hits=hits,
        pool_misses=misses,
    )
