"""Shared machinery for runtime shims.

The paper's core library keeps each system implementation small ("our 15
Task Bench implementations range from 88 to 1500 lines").  The same applies
here: executors share the bookkeeping below and differ only in *how* they
schedule tasks and route buffers.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.task_graph import TaskGraph

#: Task key: (graph_index, timestep, column).
TaskKey = Tuple[int, int, int]


# ----------------------------------------------------------------------
# Event tracing (consumed by repro.check.hb_audit)
# ----------------------------------------------------------------------
#: Event kinds recorded by the trace hooks.
EV_START = "start"  #: a task began executing
EV_ACQUIRE = "acquire"  #: a task obtained one input buffer (source = producer)
EV_FINISH = "finish"  #: a task's kernel completed (output fully computed)
EV_PUBLISH = "publish"  #: a task's output was made visible to consumers


@dataclass(frozen=True)
class TraceEvent:
    """One scheduling event of one task, recorded in global arrival order.

    ``seq`` is a total order consistent with real time (the recorder holds a
    lock), ``thread`` identifies the executing thread (the "process" of the
    vector-clock model), and ``source`` names the producer task for
    ``acquire`` events.
    """

    seq: int
    thread: int
    kind: str
    task: TaskKey
    source: Optional[TaskKey] = None


class TraceRecorder:
    """Thread-safe append-only event log.

    Installed via :func:`tracing`; when no recorder is installed the hooks
    cost one ``None`` check per event site, keeping the un-audited hot path
    unaffected.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: List[TraceEvent] = []

    def record(self, kind: str, task: TaskKey, source: TaskKey | None = None) -> None:
        with self._lock:
            self.events.append(
                TraceEvent(len(self.events), threading.get_ident(), kind, task, source)
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)


_active_recorder: TraceRecorder | None = None


def trace_recorder() -> TraceRecorder | None:
    """The currently installed recorder, or ``None`` when tracing is off."""
    return _active_recorder


@contextlib.contextmanager
def tracing(recorder: TraceRecorder):
    """Install ``recorder`` as the process-wide trace sink for the duration.

    Process-wide (not thread-local) on purpose: executors spawn worker
    threads that must all report into the same schedule trace.  Nesting or
    concurrent audited runs are not supported.
    """
    global _active_recorder
    if _active_recorder is not None:
        raise RuntimeError("a trace recorder is already installed")
    _active_recorder = recorder
    try:
        yield recorder
    finally:
        _active_recorder = None


def record_event(kind: str, task: TaskKey, source: TaskKey | None = None) -> None:
    """Record one event if tracing is active (no-op otherwise)."""
    rec = _active_recorder
    if rec is not None:
        rec.record(kind, task, source)


def task_keys(graphs: Sequence[TaskGraph]) -> Iterator[TaskKey]:
    """All task keys of all graphs, timestep-major and graph-interleaved,
    the canonical "program order" for sequential-discovery runtimes."""
    max_t = max(g.timesteps for g in graphs)
    for t in range(max_t):
        for g in graphs:
            if t >= g.timesteps:
                continue
            off = g.offset_at_timestep(t)
            for i in range(off, off + g.width_at_timestep(t)):
                yield (g.graph_index, t, i)


def consumer_count(g: TaskGraph, t: int, i: int) -> int:
    """How many tasks read the output of ``(t, i)``."""
    return sum(hi - lo + 1 for lo, hi in g.reverse_dependencies(t, i))


class OutputStore:
    """Thread-safe, reference-counted storage of task outputs.

    Each output is stored with the number of consumers that will read it and
    is discarded after the last read, so executors hold only the live
    frontier of the graph (like the ``last_row`` variable of the paper's
    Dask listing, but correct for asynchronous execution where several
    timesteps are in flight).

    :meth:`assert_drained` turns forgotten reads — i.e. buffer leaks caused
    by mis-routed dependencies — into test failures.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: Dict[TaskKey, Tuple[np.ndarray, int]] = {}

    def put(self, key: TaskKey, value: np.ndarray, consumers: int) -> None:
        """Store ``value`` to be read by exactly ``consumers`` tasks."""
        if consumers <= 0:
            return
        record_event(EV_PUBLISH, key)
        with self._lock:
            if key in self._data:
                raise RuntimeError(f"output for task {key} stored twice")
            self._data[key] = (value, consumers)

    def take(self, key: TaskKey) -> np.ndarray:
        """Read one consumer's copy of the output of ``key``."""
        with self._lock:
            try:
                value, remaining = self._data[key]
            except KeyError:
                raise RuntimeError(
                    f"output for task {key} requested but not produced"
                ) from None
            if remaining == 1:
                del self._data[key]
            else:
                self._data[key] = (value, remaining - 1)
            return value

    def gather(self, g: TaskGraph, t: int, i: int) -> List[np.ndarray]:
        """Collect the inputs of task ``(t, i)`` in canonical order."""
        if t == 0:
            return []
        consumer = (g.graph_index, t, i)
        inputs = []
        for j in g.dependency_points(t, i):
            source = (g.graph_index, t - 1, j)
            inputs.append(self.take(source))
            record_event(EV_ACQUIRE, consumer, source)
        return inputs

    def assert_drained(self) -> None:
        """Raise if any outputs were produced but never fully consumed."""
        with self._lock:
            if self._data:
                leaked = sorted(self._data)[:5]
                raise RuntimeError(
                    f"{len(self._data)} task outputs never consumed, "
                    f"e.g. {leaked}"
                )

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class ScratchPool:
    """Per-column scratch buffers, allocated lazily and reused across
    timesteps (the official shims thread one scratch buffer through each
    column — see the Dask listing in the paper)."""

    def __init__(self, graphs: Sequence[TaskGraph]) -> None:
        self._graphs = {g.graph_index: g for g in graphs}
        self._lock = threading.Lock()
        self._buffers: Dict[Tuple[int, int], np.ndarray] = {}

    def get(self, graph_index: int, column: int) -> np.ndarray | None:
        g = self._graphs[graph_index]
        if g.scratch_bytes_per_task == 0:
            return None
        key = (graph_index, column)
        with self._lock:
            buf = self._buffers.get(key)
            if buf is None:
                buf = g.prepare_scratch()
                self._buffers[key] = buf
            return buf


def run_point(
    store: OutputStore,
    scratch: ScratchPool,
    g: TaskGraph,
    t: int,
    i: int,
    *,
    validate: bool,
) -> None:
    """Gather inputs, execute one task, and publish its output."""
    key = (g.graph_index, t, i)
    record_event(EV_START, key)
    inputs = store.gather(g, t, i)
    out = g.execute_point(
        t, i, inputs, scratch=scratch.get(g.graph_index, i), validate=validate
    )
    record_event(EV_FINISH, key)
    store.put(key, out, consumer_count(g, t, i))
