"""Fault injection and fault-tolerance configuration.

The paper's METG methodology re-runs one executor configuration dozens of
times per sweep (§4); a single wedged or killed worker process must not
hang — or abort — the whole benchmark.  This module is the *control* side
of the fault-tolerance layer:

* :class:`FaultSpec` describes one injected fault: ``kind`` (``crash`` =
  SIGKILL, ``wedge`` = SIGTERM-ignoring busy loop, ``delay`` = transient
  stall), the target worker index, and the worker-local round at which it
  fires;
* :func:`parse_fault` parses the ``kind:worker:round[:seconds]`` syntax
  used by ``task-bench --inject-fault`` and the ``TASKBENCH_INJECT_FAULT``
  environment variable;
* :func:`apply_fault` *executes* a fault inside a worker process (called
  by :mod:`repro.runtimes._procpool` at the chosen round);
* :func:`default_timeout` / :func:`default_max_retries` read the
  environment-level defaults (``TASKBENCH_TIMEOUT``,
  ``TASKBENCH_MAX_RETRIES``) so test suites and CI chaos legs can arm
  deadlines and retries without threading flags through every call site.
  Both parse through :mod:`repro.core.envvars`, so a malformed value
  raises a :class:`~repro.core.envvars.UsageError` naming the variable
  instead of a bare ``ValueError`` traceback.

Faults are **transient by construction**: a fault is attached to the first
generation of a pool's workers only, so a respawned worker runs clean and
a retried probe succeeds.  This mirrors how TaPS treats failure behavior
as a first-class evaluation axis — the benchmark must *survive* the fault
to measure its cost.

For the distributed executors (``cluster_tcp`` / ``cluster_uds``,
:mod:`repro.cluster`) the same spec applies with cluster semantics:
``worker`` is the *rank* index and ``round_index`` is the *timestep* of
the rank's first run at which the fault fires (``crash:1:2`` kills rank 1
just before it executes timestep 2).  Faults arm only the first launch of
a mesh; a relaunch after a failure runs clean.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from .core.envvars import env_float, env_int

#: Recognized fault kinds.
FAULT_KINDS = ("crash", "wedge", "delay")

#: Environment variables honored by the fault-tolerance layer.
ENV_FAULT = "TASKBENCH_INJECT_FAULT"
ENV_TIMEOUT = "TASKBENCH_TIMEOUT"
ENV_MAX_RETRIES = "TASKBENCH_MAX_RETRIES"


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``kind`` at (``worker``, ``round_index``).

    ``round_index`` counts the chunk rounds a single worker process has
    executed (broadcasts are not counted), so ``crash:0:3`` kills worker 0
    immediately before it would execute its fourth round of chunks.
    """

    kind: str
    worker: int
    round_index: int
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.worker < 0:
            raise ValueError(f"fault worker must be >= 0, got {self.worker}")
        if self.round_index < 0:
            raise ValueError(
                f"fault round must be >= 0, got {self.round_index}"
            )
        if self.delay_seconds < 0:
            raise ValueError(
                f"fault delay must be >= 0, got {self.delay_seconds}"
            )


def parse_fault(spec: str) -> FaultSpec:
    """Parse ``kind:worker:round[:seconds]`` into a :class:`FaultSpec`.

    Examples: ``crash:0:3`` (SIGKILL worker 0 at its fourth round),
    ``wedge:1:0`` (worker 1 busy-loops from its first round),
    ``delay:0:2:0.2`` (worker 0 stalls 200 ms before its third round).
    """
    parts = spec.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(
            f"malformed fault spec {spec!r}; expected kind:worker:round[:seconds]"
        )
    kind = parts[0].strip().lower()
    try:
        worker = int(parts[1])
        round_index = int(parts[2])
    except ValueError:
        raise ValueError(
            f"malformed fault spec {spec!r}: worker and round must be integers"
        ) from None
    if len(parts) == 4:
        try:
            delay = float(parts[3])
        except ValueError:
            raise ValueError(
                f"malformed fault spec {spec!r}: seconds must be a number"
            ) from None
        return FaultSpec(kind, worker, round_index, delay)
    return FaultSpec(kind, worker, round_index)


def fault_from_env() -> FaultSpec | None:
    """The fault armed via ``TASKBENCH_INJECT_FAULT``, if any."""
    spec = os.environ.get(ENV_FAULT, "").strip()
    return parse_fault(spec) if spec else None


def default_timeout() -> float | None:
    """Per-round deadline (seconds) from ``TASKBENCH_TIMEOUT``; ``None``
    (no deadline) when unset or empty."""
    return env_float(ENV_TIMEOUT, None, exclusive_minimum=0.0)


def default_max_retries() -> int:
    """Transient-failure retry budget from ``TASKBENCH_MAX_RETRIES``
    (default 0: fail fast)."""
    value = env_int(ENV_MAX_RETRIES, 0, minimum=0)
    assert value is not None  # a non-None default is returned as-is
    return value


def apply_fault(fault: FaultSpec) -> None:
    """Execute ``fault`` in the calling (worker) process.

    ``crash`` and ``wedge`` never return; ``delay`` stalls and returns so
    the round still completes (exercising the deadline machinery without
    failing the run).

    Under an active lockset sanitizer (:mod:`repro.check.concurrency`)
    only ``delay`` is honored — recorded as an injected stall so the
    sanitizer can distinguish instrumentation slowness from injected
    latency.  ``crash``/``wedge`` are refused: killing or wedging the
    instrumented process would abandon recorded locksets mid-flight and
    turn every subsequent report into noise.
    """
    from .check.concurrency import active_sanitizer

    san = active_sanitizer()
    if san is not None:
        if fault.kind == "delay":
            san.note_stall(fault.delay_seconds)
            time.sleep(fault.delay_seconds)
            return
        raise RuntimeError(
            f"refusing to inject {fault.kind!r} fault under the lockset "
            "sanitizer: sanitized runs measure ordering, not survival — "
            "run the chaos leg without --sanitize"
        )
    if fault.kind == "crash":
        # SIGKILL: no cleanup, no exception shipped to the parent — the
        # parent must detect the death through the broken pipe/heartbeat.
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault.kind == "wedge":
        # A SIGTERM-ignoring busy loop: the parent's deadline must fire,
        # and shutdown must escalate terminate() -> kill() to reap it.
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        while True:  # pragma: no cover - the process is killed externally
            pass
    elif fault.kind == "delay":
        time.sleep(fault.delay_seconds)
