"""Reference-counted slab buffer pools and the :class:`PayloadRef` handle.

The paper's C++ shims pass task payloads by pointer; the Python executors
historically pickled every input and output across thread and process
boundaries, which inflates measured runtime overhead by orders of magnitude
exactly in the sub-millisecond granularity regime METG probes (TaskTorrent
and the AMT Task Bench study both show communication-layer copies swamping
scheduler overhead there).  This module is the zero-copy data plane that
removes those copies:

* a **slab pool** hands out fixed-capacity *slots* carved from large slabs,
  grouped into power-of-two size classes and recycled through per-class free
  lists, so steady-state acquisition is a pop/push instead of an allocation;
* every slot is addressed through a :class:`PayloadRef` — a small, picklable
  handle carrying a **generation tag**.  Releasing a slot bumps its
  generation, so any stale handle (use-after-release) raises
  :class:`StaleHandleError` instead of silently reading recycled bytes;
* slots are **reference counted**: a producer acquires a slot with one
  reference per consumer, each consumer drops its reference after reading,
  and the slot returns to the free list exactly when the last reader is
  done.

Two backings share the same interface:

* :class:`HeapSlabPool` — in-heap numpy slabs for same-address-space
  executors (thread pools recycle output buffers per timestep instead of
  reallocating them);
* :class:`SharedMemorySlabPool` — ``multiprocessing.shared_memory`` slabs
  for cross-process executors.  Handles cross the process boundary as a few
  machine words; payload bytes never do.  Each shared slot carries its
  generation tag *in the shared segment itself* (an 8-byte header), so even
  a forked worker whose Python-side pool state is a stale snapshot detects
  use-after-release.

Pools register themselves in a process-wide registry at construction so a
bare :func:`as_array` call — e.g. inside
:meth:`~repro.core.task_graph.TaskGraph.execute_point` — can resolve a
handle without threading the pool object through every call site.  Workers
forked *after* pool construction inherit the registry; segments created
after the fork are attached lazily by name.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

from ..trace import recorder as trace

#: Payload bytes live behind either a raw array or a pool handle.
Payload = Union[np.ndarray, "PayloadRef"]

#: Smallest slot capacity: one validation header's worth of bytes.
MIN_SLOT_BYTES = 32

#: Per-slot generation header size in shared-memory slabs.
GEN_HEADER_BYTES = 8

#: Target slab size; slabs hold many slots to amortize segment creation.
SLAB_BYTES = 1 << 20

#: Cap on slots per slab: slot views are materialized eagerly at growth
#: time, and tiny size classes would otherwise mint tens of thousands of
#: views per 1 MiB slab (a multi-millisecond stall on the hot path).
MAX_SLOTS_PER_SLAB = 256


class StaleHandleError(RuntimeError):
    """A :class:`PayloadRef` was resolved after its slot was released (or
    its pool closed).  Generation tags exist to turn use-after-release —
    otherwise a silent read of recycled bytes — into this loud failure."""


class PoolClosedError(RuntimeError):
    """An operation was attempted on a closed pool."""


@dataclass(frozen=True)
class PayloadRef:
    """A small, picklable handle to one pooled payload buffer.

    Attributes
    ----------
    pool:
        Registry id of the owning pool (see :func:`as_array`).
    slot:
        Slot index inside the pool.
    generation:
        Generation tag the slot had when this handle was issued; resolving
        the handle after the slot was recycled raises
        :class:`StaleHandleError`.
    nbytes:
        Length of the payload (may be smaller than the slot capacity).
    segment:
        Name of the backing shared-memory segment (empty for heap slots).
    offset:
        Byte offset of the payload inside the segment (past the generation
        header for shared slots).
    """

    pool: int
    slot: int
    generation: int
    nbytes: int
    segment: str = ""
    offset: int = 0

    def __reduce__(
        self,
    ) -> Tuple[type, Tuple[int, int, int, int, str, int]]:
        # Handles are pickled once per payload per hop; the positional-tuple
        # protocol is ~3x faster than dataclass state pickling.
        return (
            PayloadRef,
            (self.pool, self.slot, self.generation, self.nbytes,
             self.segment, self.offset),
        )


@dataclass
class PoolStats:
    """Data-plane accounting of one pool (merged into
    :class:`~repro.core.metrics.DataPlaneStats` by executors)."""

    acquires: int = 0
    hits: int = 0  #: free-list reuses (no new slab memory touched)
    misses: int = 0  #: acquisitions that had to grow a slab
    bytes_shared: int = 0  #: payload bytes routed through pool slots
    peak_live: int = 0  #: maximum simultaneously-live slots

    @property
    def hit_rate(self) -> float:
        return self.hits / self.acquires if self.acquires else 0.0


# ----------------------------------------------------------------------
# Process-wide pool registry
# ----------------------------------------------------------------------
_pool_ids = itertools.count(1)
_POOLS: Dict[int, "SlabPool"] = {}


def size_class(nbytes: int) -> int:
    """Slot capacity for a payload of ``nbytes``: next power of two, at
    least :data:`MIN_SLOT_BYTES`."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    cap = MIN_SLOT_BYTES
    while cap < nbytes:
        cap <<= 1
    return cap


def as_array(payload: Payload) -> np.ndarray:
    """Coerce a payload — raw array or pool handle — to a ``uint8`` view.

    This is the single indirection point that lets
    :meth:`TaskGraph.execute_point` and validation accept
    :class:`PayloadRef` wherever they accept ``np.ndarray``.
    """
    if isinstance(payload, PayloadRef):
        pool = _POOLS.get(payload.pool)
        if pool is not None:
            return pool.resolve(payload)
        if payload.segment:
            return _resolve_foreign(payload)
        raise StaleHandleError(
            f"handle {payload} references pool {payload.pool}, which is not "
            "registered in this process (closed, or a heap-backed handle "
            "crossed a process boundary)"
        )
    return payload


class SlabPool:
    """Reference-counted slab allocator (base class; see module docstring).

    Thread-safe: thread-pool executors acquire and release slots from
    worker threads concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._owner_pid = os.getpid()
        self._closed = False
        self.pool_id = next(_pool_ids)
        self.stats = PoolStats()
        # Parallel per-slot arrays.
        self._views: List[np.ndarray] = []  # full-capacity payload views
        self._capacity: List[int] = []
        self._generation: List[int] = []
        self._refcount: List[int] = []
        self._segment_of: List[str] = []
        self._offset_of: List[int] = []
        self._free: Dict[int, List[int]] = {}  # capacity -> free slot ids
        self._live = 0
        _POOLS[self.pool_id] = self

    # -- backing-specific hooks ----------------------------------------
    def _grow(self, capacity: int) -> None:
        """Create a slab of ``capacity``-sized slots and push them onto the
        free list (backing-specific)."""
        raise NotImplementedError

    def _stamp_generation(self, slot: int, generation: int) -> None:
        """Record ``generation`` where :meth:`resolve` will verify it."""
        self._generation[slot] = generation

    def _register_slot(
        self, view: np.ndarray, capacity: int, segment: str, offset: int
    ) -> int:
        slot = len(self._views)
        self._views.append(view)
        self._capacity.append(capacity)
        self._generation.append(0)
        self._refcount.append(0)
        self._segment_of.append(segment)
        self._offset_of.append(offset)
        self._free.setdefault(capacity, []).append(slot)
        return slot

    # -- public API ----------------------------------------------------
    def acquire(self, nbytes: int, refs: int = 1) -> PayloadRef:
        """Check out a slot holding ``nbytes``, issued with ``refs``
        references (one per eventual :meth:`decref`)."""
        if refs < 1:
            raise ValueError(f"refs must be >= 1, got {refs}")
        cap = size_class(nbytes)
        with self._lock:
            self._ensure_open()
            ref = self._acquire_locked(cap, nbytes, refs)
        if trace.enabled:
            self._sample_counters()
        return ref

    def acquire_batch(self, nbytes: int, refs: Sequence[int]) -> List[PayloadRef]:
        """Check out ``len(refs)`` same-sized slots under one lock hold.

        The hot path of the shared-memory executor: the parent acquires a
        whole chunk's output slots at once instead of paying a lock
        round-trip per column.
        """
        if any(r < 1 for r in refs):
            raise ValueError(f"refs must all be >= 1, got {list(refs)}")
        cap = size_class(nbytes)
        with self._lock:
            self._ensure_open()
            out = [self._acquire_locked(cap, nbytes, r) for r in refs]
        if trace.enabled:
            self._sample_counters()
        return out

    def _sample_counters(self) -> None:
        """Emit one ``bufpool.hits`` counter sample to the span recorder
        (a Chrome counter track; cold — only runs under ``--trace``)."""
        trace.counter(
            "bufpool.hits",
            {"hits": self.stats.hits, "misses": self.stats.misses},
        )

    def _acquire_locked(self, cap: int, nbytes: int, refs: int) -> PayloadRef:
        free = self._free.setdefault(cap, [])
        if free:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            self._grow(cap)
        slot = free.pop()
        self.stats.acquires += 1
        self.stats.bytes_shared += nbytes
        self._live += 1
        if self._live > self.stats.peak_live:
            self.stats.peak_live = self._live
        gen = self._generation[slot] + 1
        self._stamp_generation(slot, gen)
        self._refcount[slot] = refs
        return PayloadRef(
            pool=self.pool_id,
            slot=slot,
            generation=gen,
            nbytes=nbytes,
            segment=self._segment_of[slot],
            offset=self._offset_of[slot],
        )

    def incref(self, ref: PayloadRef, n: int = 1) -> None:
        """Add ``n`` references (e.g. one per extra consumer)."""
        with self._lock:
            self._check(ref)
            self._refcount[ref.slot] += n

    def decref(self, ref: PayloadRef, n: int = 1) -> None:
        """Drop ``n`` references; the last one recycles the slot and bumps
        its generation so outstanding handles go stale."""
        with self._lock:
            self._check(ref)
            self._decref_locked(ref, n)

    def decref_batch(self, refs: Iterable[PayloadRef]) -> None:
        """Drop one reference from each handle under one lock hold."""
        with self._lock:
            for ref in refs:
                self._check(ref)
                self._decref_locked(ref, 1)

    def _decref_locked(self, ref: PayloadRef, n: int) -> None:
        slot = ref.slot
        left = self._refcount[slot] - n
        if left < 0:
            raise StaleHandleError(f"over-release of {ref}")
        self._refcount[slot] = left
        if left == 0:
            self._stamp_generation(slot, self._generation[slot] + 1)
            self._free[self._capacity[slot]].append(slot)
            self._live -= 1

    def refcount(self, ref: PayloadRef) -> int:
        """Current reference count of a live handle (testing hook)."""
        with self._lock:
            self._check(ref)
            return self._refcount[ref.slot]

    def release_live(self) -> int:
        """Force-release every live slot; returns how many were reclaimed.

        Crash-recovery unwinding: when a run aborts mid-round (a worker
        crashed or missed its deadline), the consumer decrefs that would
        have followed the barrier never happen and the aborted round's
        output slots stay live.  Once every worker is dead or drained no
        write can race the release, so the owning executor reclaims the
        slots wholesale — the next run starts from a zero-live pool
        instead of masking the original failure with the per-run
        data-plane leak check.  Outstanding handles go stale (generation
        bump), so any erroneous late read still fails loudly.
        """
        with self._lock:
            if self._closed:
                return 0
            released = 0
            for slot, refs in enumerate(self._refcount):
                if refs > 0:
                    self._refcount[slot] = 0
                    self._stamp_generation(slot, self._generation[slot] + 1)
                    self._free[self._capacity[slot]].append(slot)
                    released += 1
            self._live -= released
            return released

    def resolve(self, ref: PayloadRef) -> np.ndarray:
        """The live payload bytes behind ``ref`` as a mutable uint8 view."""
        self._check(ref)
        return self._views[ref.slot][: ref.nbytes]

    @property
    def live_slots(self) -> int:
        with self._lock:
            return self._live

    def close(self) -> None:
        """Tear the pool down and deregister it.  Idempotent; a no-op in
        forked children (only the creating process owns the backing)."""
        with self._lock:
            if self._closed or os.getpid() != self._owner_pid:
                return
            self._closed = True
            self._views.clear()
            self._teardown()
        _POOLS.pop(self.pool_id, None)

    def _teardown(self) -> None:
        """Release backing storage (backing-specific)."""

    def __enter__(self) -> "SlabPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals -----------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise PoolClosedError(f"pool {self.pool_id} is closed")

    def _check(self, ref: PayloadRef) -> None:
        if self._closed:
            raise PoolClosedError(f"pool {self.pool_id} is closed")
        if ref.pool != self.pool_id:
            raise StaleHandleError(f"{ref} does not belong to pool {self.pool_id}")
        if ref.slot >= len(self._generation):
            raise StaleHandleError(f"{ref} names an unknown slot")
        if self._generation[ref.slot] != ref.generation:
            raise StaleHandleError(
                f"stale handle {ref}: slot generation is now "
                f"{self._generation[ref.slot]} (use after release)"
            )


class HeapSlabPool(SlabPool):
    """Slab pool backed by in-heap numpy slabs (same-address-space use)."""

    def __init__(self) -> None:
        super().__init__()
        self._slabs: List[np.ndarray] = []

    def _grow(self, capacity: int) -> None:
        count = max(1, min(MAX_SLOTS_PER_SLAB, SLAB_BYTES // capacity))
        slab = np.zeros(count * capacity, dtype=np.uint8)
        self._slabs.append(slab)
        for k in range(count):
            self._register_slot(
                slab[k * capacity : (k + 1) * capacity], capacity, "", 0
            )

    def _teardown(self) -> None:
        self._slabs.clear()


class SharedMemorySlabPool(SlabPool):
    """Slab pool backed by ``multiprocessing.shared_memory`` segments.

    Layout of each slot inside a segment::

        [ 8-byte generation tag | capacity payload bytes ]

    The generation tag lives in the *shared* segment, written on every
    acquire and release, so a forked worker — whose Python-side pool object
    is a frozen snapshot from fork time — still verifies handles against
    the live generation.
    """

    def __init__(self) -> None:
        super().__init__()
        self._segments: List[shared_memory.SharedMemory] = []
        self._gen_views: List[np.ndarray] = []  # per-slot int64 gen headers

    def _grow(self, capacity: int) -> None:
        stride = GEN_HEADER_BYTES + capacity
        count = max(1, min(MAX_SLOTS_PER_SLAB, SLAB_BYTES // stride))
        seg = shared_memory.SharedMemory(create=True, size=count * stride)
        self._segments.append(seg)
        with _created_lock:
            _CREATED_SEGMENTS[seg.name] = self.pool_id
        base = np.frombuffer(seg.buf, dtype=np.uint8)
        for k in range(count):
            start = k * stride
            gen_view = base[start : start + GEN_HEADER_BYTES].view("<i8")
            gen_view[0] = 0
            payload = base[start + GEN_HEADER_BYTES : start + stride]
            slot = self._register_slot(
                payload, capacity, seg.name, start + GEN_HEADER_BYTES
            )
            assert slot == len(self._gen_views)
            self._gen_views.append(gen_view)

    def reserve(self, nbytes: int, count: int) -> None:
        """Pre-create slabs so at least ``count`` free slots of the size
        class of ``nbytes`` exist.  Called before forking workers, so
        children inherit every segment mapping they will need."""
        cap = size_class(nbytes)
        with self._lock:
            self._ensure_open()
            while len(self._free.setdefault(cap, [])) < count:
                self._grow(cap)

    def _stamp_generation(self, slot: int, generation: int) -> None:
        self._generation[slot] = generation
        self._gen_views[slot][0] = generation

    def resolve(self, ref: PayloadRef) -> np.ndarray:
        # Verify against the tag in shared memory, which is live even when
        # this pool object is a forked snapshot.
        if self._closed:
            raise PoolClosedError(f"pool {self.pool_id} is closed")
        if ref.pool != self.pool_id:
            raise StaleHandleError(f"{ref} does not belong to pool {self.pool_id}")
        if ref.slot >= len(self._gen_views):
            # Slab created after this process forked: attach by name.
            return _resolve_foreign(ref)
        if int(self._gen_views[ref.slot][0]) != ref.generation:
            raise StaleHandleError(
                f"stale handle {ref}: shared slot generation is now "
                f"{int(self._gen_views[ref.slot][0])} (use after release)"
            )
        return self._views[ref.slot][: ref.nbytes]

    @property
    def segment_names(self) -> List[str]:
        """Names of all backing segments (leak-check hook for tests)."""
        return [seg.name for seg in self._segments]

    def _teardown(self) -> None:
        self._gen_views.clear()
        for seg in self._segments:
            # Unlink before close: even if a caller still holds a view
            # (which makes close raise BufferError), the segment must not
            # outlive the pool in /dev/shm.
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            try:
                seg.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
            with _created_lock:
                _CREATED_SEGMENTS.pop(seg.name, None)
        self._segments.clear()


# ----------------------------------------------------------------------
# Orphaned-segment accounting
# ----------------------------------------------------------------------
_created_lock = threading.Lock()
#: Shared-memory segments created by this process: name -> owning pool id.
_CREATED_SEGMENTS: Dict[str, int] = {}


def orphaned_segments() -> List[str]:
    """Names of segments this process created whose owning pool is no
    longer registered (dropped or deregistered without a clean teardown —
    e.g. an injected fault unwound the owner before ``close()`` ran)."""
    with _created_lock:
        return sorted(
            name
            for name, pool_id in _CREATED_SEGMENTS.items()
            if pool_id not in _POOLS
        )


def sweep_orphaned_segments() -> List[str]:
    """Unlink every orphaned segment; returns the names swept.

    The recovery-path counterpart of :meth:`SlabPool.close`: pools normally
    unlink their segments on teardown, but a fault can strand a segment in
    ``/dev/shm`` (owner unwound mid-operation, teardown interrupted).  Only
    segments *created by this process* and no longer owned by a live pool
    are touched, so concurrent benchmarks cannot sweep each other.
    """
    swept: List[str] = []
    for name in orphaned_segments():
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            pass
        else:
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - raced away
                pass
            seg.close()
        with _created_lock:
            _CREATED_SEGMENTS.pop(name, None)
        swept.append(name)
    return swept


# ----------------------------------------------------------------------
# Foreign-segment resolution (forked workers)
# ----------------------------------------------------------------------
_foreign_lock = threading.Lock()
_FOREIGN: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without registering it with the resource
    tracker (attachers must not unlink the owner's segment at exit; Python
    gained ``track=False`` only in 3.13)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _resolve_foreign(ref: PayloadRef) -> np.ndarray:
    """Resolve a shared-memory handle in a process that does not own the
    pool (or whose inherited pool predates the slot's slab)."""
    with _foreign_lock:
        entry = _FOREIGN.get(ref.segment)
        if entry is None:
            seg = _attach_untracked(ref.segment)
            entry = (seg, np.frombuffer(seg.buf, dtype=np.uint8))
            _FOREIGN[ref.segment] = entry
    base = entry[1]
    gen = int(
        base[ref.offset - GEN_HEADER_BYTES : ref.offset].view("<i8")[0]
    )
    if gen != ref.generation:
        raise StaleHandleError(
            f"stale handle {ref}: shared slot generation is now {gen} "
            "(use after release)"
        )
    return base[ref.offset : ref.offset + ref.nbytes]
