"""Full validation of task inputs and outputs (paper §2).

"The output of every task in Task Bench is unique, and all inputs are
verified.  An assertion is thrown if validation fails.  These checks ensure
that every execution of Task Bench, if it completes successfully, is
correct."

The output of task ``(t, i)`` of graph ``g`` is a deterministic byte pattern:
a 32-byte header packing ``(seed, graph_index, timestep, column)`` as little-
endian int64s, tiled to fill ``output_bytes_per_task``.  Tiling (rather than
header-then-zeros) means corruption *anywhere* in a communicated buffer is
detected, not just in the first bytes.  Any runtime bug — a wrong dependency,
a stale buffer, a dropped or reordered message — trips a
:class:`ValidationError` naming the offending task and input.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, List, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .task_graph import TaskGraph

HEADER_BYTES = 32


class ValidationError(AssertionError):
    """Raised when a task receives an input that does not match the graph
    specification.  Subclasses :class:`AssertionError` to mirror the paper's
    "an assertion is thrown if validation fails"."""


@lru_cache(maxsize=65536)
def _output_bytes(seed: int, graph_index: int, t: int, i: int, nbytes: int) -> bytes:
    """Cached immutable form of a task's output pattern.

    ``(t, i)`` lead the packed header so that even outputs smaller than the
    full 32 bytes remain unique within a graph; graph_index and seed follow
    for cross-graph and cross-run uniqueness when the buffer is larger.

    Keyed on plain ints so lookups avoid numpy construction entirely —
    validation happens on every input of every task, so this is the hottest
    path of the core library (the paper bounds validation overhead at 3%)."""
    header = np.array([t, i, graph_index, seed], dtype="<i8").tobytes()
    reps = -(-nbytes // HEADER_BYTES)  # ceil division
    return (header * reps)[:nbytes]


def task_output(graph: "TaskGraph", t: int, i: int) -> np.ndarray:
    """The unique output buffer of task ``(t, i)``.

    Deterministic in ``(seed, graph_index, t, i)`` and of length
    ``graph.output_bytes_per_task``.  Returns a fresh mutable array (the
    cached pattern backs validation comparisons only).
    """
    nbytes = graph.output_bytes_per_task
    if nbytes == 0:
        return np.empty(0, dtype=np.uint8)
    pattern = _output_bytes(graph.seed, graph.graph_index, t, i, nbytes)
    return np.frombuffer(pattern, dtype=np.uint8).copy()


def write_task_output(graph: "TaskGraph", t: int, i: int, dest: np.ndarray) -> None:
    """Write the unique output of task ``(t, i)`` into ``dest`` in place.

    The in-place twin of :func:`task_output`, used by the pooled data plane
    (:mod:`repro.core.bufpool`) to fill a recycled slab slot instead of
    allocating a fresh array per task.
    """
    nbytes = graph.output_bytes_per_task
    if dest.nbytes != nbytes:
        raise ValueError(
            f"destination holds {dest.nbytes} bytes, task output needs {nbytes}"
        )
    if nbytes == 0:
        return
    pattern = _output_bytes(graph.seed, graph.graph_index, t, i, nbytes)
    dest[:] = np.frombuffer(pattern, dtype=np.uint8)


def validate_inputs(
    graph: "TaskGraph", t: int, i: int, inputs: Sequence[np.ndarray]
) -> None:
    """Check that ``inputs`` are exactly the outputs of the dependencies of
    task ``(t, i)``, in canonical (ascending-column) order.

    Raises
    ------
    ValidationError
        If the number of inputs is wrong or any buffer differs from the
        expected producer output.
    """
    expected_cols = list(graph.dependency_points(t, i)) if t > 0 else []
    if len(inputs) != len(expected_cols):
        raise ValidationError(
            f"task (t={t}, i={i}) of graph {graph.graph_index}: expected "
            f"{len(expected_cols)} inputs from columns {expected_cols}, "
            f"got {len(inputs)}"
        )
    nbytes = graph.output_bytes_per_task
    for slot, (col, buf) in enumerate(zip(expected_cols, inputs)):
        arr = np.asarray(buf, dtype=np.uint8).reshape(-1)
        expected = _output_bytes(graph.seed, graph.graph_index, t - 1, col, nbytes)
        if arr.nbytes != nbytes or arr.tobytes() != expected:
            detail = _describe_buffer(graph, arr)
            raise ValidationError(
                f"task (t={t}, i={i}) of graph {graph.graph_index}: input "
                f"slot {slot} should be the output of (t={t - 1}, i={col}) "
                f"but {detail}"
            )


def _describe_buffer(graph: "TaskGraph", arr: np.ndarray) -> str:
    """Best-effort description of an unexpected buffer for error messages."""
    if arr.nbytes != graph.output_bytes_per_task:
        return f"has wrong size {arr.nbytes} (expected {graph.output_bytes_per_task})"
    if arr.nbytes >= HEADER_BYTES:
        t, i, gidx, seed = arr[:HEADER_BYTES].view("<i8")
        if seed == graph.seed:
            return f"is the output of graph {gidx} task (t={t}, i={i})"
    return "does not match any expected task output"


def expected_inputs(graph: "TaskGraph", t: int, i: int) -> List[np.ndarray]:
    """The exact input buffers task ``(t, i)`` must receive, in canonical
    order.  Useful for constructing tests and for runtimes that need to
    seed the first timestep."""
    if t == 0:
        return []
    return [task_output(graph, t - 1, j) for j in graph.dependency_points(t, i)]
