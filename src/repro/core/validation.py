"""Full validation of task inputs and outputs (paper §2).

"The output of every task in Task Bench is unique, and all inputs are
verified.  An assertion is thrown if validation fails.  These checks ensure
that every execution of Task Bench, if it completes successfully, is
correct."

The output of task ``(t, i)`` of graph ``g`` is a deterministic byte pattern:
a 32-byte header packing ``(seed, graph_index, timestep, column)`` as little-
endian int64s, tiled to fill ``output_bytes_per_task``.  Tiling (rather than
header-then-zeros) means corruption *anywhere* in a communicated buffer is
detected, not just in the first bytes.  Any runtime bug — a wrong dependency,
a stale buffer, a dropped or reordered message — trips a
:class:`ValidationError` naming the offending task and input.

Validation happens on every input of every task, so this is the hottest
path of the core library (the paper bounds validation overhead at 3%).  On
the fast path (:mod:`repro.core.fastpath` enabled) expected patterns are
memoized as read-only NumPy arrays built from a per-column int64 template
with the timestep stamped in place, and ``validate_inputs`` compares a
task's inputs against one cached concatenated block in a single bulk
comparison instead of copying every buffer to ``bytes`` per input.  With
the fast path disabled the original per-input loop runs unchanged.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

from . import fastpath as _fastpath

if TYPE_CHECKING:  # pragma: no cover
    from .task_graph import TaskGraph

HEADER_BYTES = 32

#: Inputs whose combined size is at most this many bytes are checked with
#: one concatenated bulk comparison; larger payloads are compared buffer by
#: buffer (concatenation would copy more than it saves).
_BULK_BYTES = 1 << 16

_UINT8 = np.dtype(np.uint8)


class ValidationError(AssertionError):
    """Raised when a task receives an input that does not match the graph
    specification.  Subclasses :class:`AssertionError` to mirror the paper's
    "an assertion is thrown if validation fails"."""


@lru_cache(maxsize=65536)
def _output_bytes(seed: int, graph_index: int, t: int, i: int, nbytes: int) -> bytes:
    """Cached immutable form of a task's output pattern.

    ``(t, i)`` lead the packed header so that even outputs smaller than the
    full 32 bytes remain unique within a graph; graph_index and seed follow
    for cross-graph and cross-run uniqueness when the buffer is larger.

    Keyed on plain ints so lookups avoid numpy construction entirely."""
    header = np.array([t, i, graph_index, seed], dtype="<i8").tobytes()
    reps = -(-nbytes // HEADER_BYTES)  # ceil division
    return (header * reps)[:nbytes]


@lru_cache(maxsize=8192)
def _column_template(seed: int, graph_index: int, i: int, nbytes: int) -> np.ndarray:
    """Read-only ``(reps, 4)`` int64 header template for column ``i`` with
    the timestep field left zero — one per (graph identity, column), shared
    by every timestep (the dependence relation revisits the same columns
    each timestep, the timestep is stamped per use)."""
    reps = -(-nbytes // HEADER_BYTES)
    tmpl = np.empty((reps, 4), dtype="<i8")
    tmpl[:, 0] = 0
    tmpl[:, 1] = i
    tmpl[:, 2] = graph_index
    tmpl[:, 3] = seed
    tmpl.setflags(write=False)
    return tmpl


@lru_cache(maxsize=65536)
def _expected_array(seed: int, graph_index: int, t: int, i: int,
                    nbytes: int) -> np.ndarray:
    """Read-only uint8 array of the output pattern of ``(t, i)``.

    Built by stamping ``t`` into the cached column template; bit-identical
    to :func:`_output_bytes` (the tiled little-endian header) but usable in
    zero-copy NumPy comparisons and in-place writes.
    """
    stamped = _column_template(seed, graph_index, i, nbytes).copy()
    stamped[:, 0] = t
    return np.frombuffer(stamped.tobytes(), dtype=np.uint8)[:nbytes]


@lru_cache(maxsize=65536)
def _expected_block(seed: int, graph_index: int, t: int,
                    cols: Tuple[int, ...], nbytes: int) -> bytes:
    """Concatenated expected inputs of one task (producers ``(t, col)`` for
    ``col`` in ``cols``) as one immutable ``bytes`` block: small-input bulk
    validation is a single C ``memcmp`` against it."""
    return b"".join(_output_bytes(seed, graph_index, t, c, nbytes)
                    for c in cols)


def task_output(graph: "TaskGraph", t: int, i: int) -> np.ndarray:
    """The unique output buffer of task ``(t, i)``.

    Deterministic in ``(seed, graph_index, t, i)`` and of length
    ``graph.output_bytes_per_task``.  Returns a fresh mutable array (the
    cached pattern backs validation comparisons only).
    """
    nbytes = graph.output_bytes_per_task
    if nbytes == 0:
        return np.empty(0, dtype=np.uint8)
    if _fastpath._ENABLED:
        return _expected_array(graph.seed, graph.graph_index, t, i, nbytes).copy()
    pattern = _output_bytes(graph.seed, graph.graph_index, t, i, nbytes)
    return np.frombuffer(pattern, dtype=np.uint8).copy()


def write_task_output(graph: "TaskGraph", t: int, i: int, dest: np.ndarray) -> None:
    """Write the unique output of task ``(t, i)`` into ``dest`` in place.

    The in-place twin of :func:`task_output`, used by the pooled data plane
    (:mod:`repro.core.bufpool`) to fill a recycled slab slot instead of
    allocating a fresh array per task.
    """
    nbytes = graph.output_bytes_per_task
    if dest.nbytes != nbytes:
        raise ValueError(
            f"destination holds {dest.nbytes} bytes, task output needs {nbytes}"
        )
    if nbytes == 0:
        return
    if _fastpath._ENABLED:
        dest[:] = _expected_array(graph.seed, graph.graph_index, t, i, nbytes)
        return
    pattern = _output_bytes(graph.seed, graph.graph_index, t, i, nbytes)
    dest[:] = np.frombuffer(pattern, dtype=np.uint8)


def _as_flat_uint8(buf) -> np.ndarray:
    if type(buf) is np.ndarray and buf.dtype == np.uint8 and buf.ndim == 1:
        return buf
    return np.asarray(buf, dtype=np.uint8).reshape(-1)


def validate_inputs(
    graph: "TaskGraph", t: int, i: int, inputs: Sequence[np.ndarray]
) -> None:
    """Check that ``inputs`` are exactly the outputs of the dependencies of
    task ``(t, i)``, in canonical (ascending-column) order.

    Raises
    ------
    ValidationError
        If the number of inputs is wrong or any buffer differs from the
        expected producer output.
    """
    if not _fastpath._ENABLED:
        _validate_inputs_slow(graph, t, i, inputs)
        return
    cols = graph.dependency_columns(t, i) if t > 0 else ()
    if len(inputs) != len(cols):
        raise ValidationError(
            f"task (t={t}, i={i}) of graph {graph.graph_index}: expected "
            f"{len(cols)} inputs from columns {list(cols)}, "
            f"got {len(inputs)}"
        )
    if not cols:
        return
    nbytes = graph.output_bytes_per_task
    seed, gidx = graph.seed, graph.graph_index
    if 0 < nbytes * len(cols) <= _BULK_BYTES:
        # Small inputs: one memcmp against the cached concatenated block.
        # ``tobytes`` on a uint8 array is a raw copy of at most _BULK_BYTES,
        # far cheaper than per-input NumPy comparisons at this size.
        try:
            combined = b"".join(
                b.tobytes()
                if type(b) is np.ndarray and b.dtype == _UINT8
                else _as_flat_uint8(b).tobytes()
                for b in inputs
            )
        except AttributeError:  # pragma: no cover - degenerate input type
            combined = None
        if combined is not None and combined == _expected_block(
            seed, gidx, t - 1, cols, nbytes
        ):
            return
        # Mismatch somewhere: fall through to the per-input walk, which
        # pinpoints the offending slot for the error message.
        for slot, (col, buf) in enumerate(zip(cols, inputs)):
            arr = _as_flat_uint8(buf)
            expected = _expected_array(seed, gidx, t - 1, col, nbytes)
            if not np.array_equal(arr, expected):
                _raise_bad_input(graph, t, i, slot, col, arr)
        return
    for slot, (col, buf) in enumerate(zip(cols, inputs)):
        arr = _as_flat_uint8(buf)
        expected = _expected_array(seed, gidx, t - 1, col, nbytes)
        if not np.array_equal(arr, expected):
            _raise_bad_input(graph, t, i, slot, col, arr)


def _validate_inputs_slow(
    graph: "TaskGraph", t: int, i: int, inputs: Sequence[np.ndarray]
) -> None:
    """The original per-input loop (kept as the ``TASKBENCH_FASTPATH=0``
    reference path, exercised by CI)."""
    expected_cols = list(graph.dependency_points(t, i)) if t > 0 else []
    if len(inputs) != len(expected_cols):
        raise ValidationError(
            f"task (t={t}, i={i}) of graph {graph.graph_index}: expected "
            f"{len(expected_cols)} inputs from columns {expected_cols}, "
            f"got {len(inputs)}"
        )
    nbytes = graph.output_bytes_per_task
    for slot, (col, buf) in enumerate(zip(expected_cols, inputs)):
        arr = np.asarray(buf, dtype=np.uint8).reshape(-1)
        expected = _output_bytes(graph.seed, graph.graph_index, t - 1, col, nbytes)
        if arr.nbytes != nbytes or arr.tobytes() != expected:
            _raise_bad_input(graph, t, i, slot, col, arr)


def _raise_bad_input(
    graph: "TaskGraph", t: int, i: int, slot: int, col: int, arr: np.ndarray
) -> None:
    detail = _describe_buffer(graph, arr)
    raise ValidationError(
        f"task (t={t}, i={i}) of graph {graph.graph_index}: input "
        f"slot {slot} should be the output of (t={t - 1}, i={col}) "
        f"but {detail}"
    )


def _describe_buffer(graph: "TaskGraph", arr: np.ndarray) -> str:
    """Best-effort description of an unexpected buffer for error messages."""
    if arr.nbytes != graph.output_bytes_per_task:
        return f"has wrong size {arr.nbytes} (expected {graph.output_bytes_per_task})"
    if arr.nbytes >= HEADER_BYTES:
        t, i, gidx, seed = arr[:HEADER_BYTES].view("<i8")
        if seed == graph.seed:
            return f"is the output of graph {gidx} task (t={t}, i={i})"
    return "does not match any expected task output"


def expected_inputs(graph: "TaskGraph", t: int, i: int) -> List[np.ndarray]:
    """The exact input buffers task ``(t, i)`` must receive, in canonical
    order.  Useful for constructing tests and for runtimes that need to
    seed the first timestep."""
    if t == 0:
        return []
    return [task_output(graph, t - 1, j) for j in graph.dependency_points(t, i)]
