"""Command-line parameter parsing (paper §2, Table 1).

The core library "manages parsing input parameters ... ensuring that all
implementations behave uniformly and can be scripted consistently".  This
module accepts the official Task Bench flag vocabulary::

    -steps H -width W -type stencil_1d -radix 5 -kernel compute_bound
    -iter 1024 -output 16 -scratch 0 -and <next graph...>

``-and`` separates multiple concurrently-executed task graphs (paper §2:
"multiple (potentially heterogeneous) task graphs can be executed
concurrently").  Graph-level flags apply to the graph currently being
described; app-level flags (``-runtime``, ``-nodes``, ...) may appear
anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence

from .kernels import Kernel
from .task_graph import DEFAULT_SEED, TaskGraph
from .types import DependenceType, KernelType


class ConfigError(ValueError):
    """Raised for malformed command lines."""


@dataclass
class AppConfig:
    """A fully parsed Task Bench invocation: graphs plus app options."""

    graphs: List[TaskGraph] = field(default_factory=list)
    runtime: str = "serial"
    workers: int = 1
    nodes: int = 1
    cores_per_node: int = 0  # 0 = use the runtime's default
    validate: bool = True
    verbose: bool = False
    #: Per-round worker deadline in seconds (None = runtime default).
    timeout: float | None = None
    #: Retry budget for transiently-failed probes (None = runtime default).
    max_retries: int | None = None
    #: Armed fault-injection spec ("kind:worker:round[:seconds]").
    inject_fault: str | None = None


@dataclass
class _GraphDraft:
    """Mutable accumulator for one graph's flags before freezing."""

    steps: int = 10
    width: int = 4
    dtype: DependenceType = DependenceType.TRIVIAL
    radix: int = 3
    period: int = -1
    fraction: float = 0.25
    kernel_type: KernelType = KernelType.EMPTY
    iterations: int = 0
    span: int = 0
    imbalance: float = 0.0
    persistent_imbalance: bool = False
    wait_us: float = 0.0
    output: int = 16
    scratch: int = 0
    seed: int = DEFAULT_SEED

    def freeze(self, graph_index: int) -> TaskGraph:
        kernel = Kernel(
            kernel_type=self.kernel_type,
            iterations=self.iterations,
            span_bytes=self.span,
            imbalance=self.imbalance,
            persistent=self.persistent_imbalance,
            wait_us=self.wait_us,
        )
        return TaskGraph(
            timesteps=self.steps,
            max_width=self.width,
            dependence=self.dtype,
            radix=self.radix,
            period=self.period,
            fraction_connected=self.fraction,
            kernel=kernel,
            output_bytes_per_task=self.output,
            scratch_bytes_per_task=self.scratch,
            graph_index=graph_index,
            seed=self.seed,
        )


def _to_int(flag: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ConfigError(f"{flag} expects an integer, got {value!r}") from None


def _to_float(flag: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ConfigError(f"{flag} expects a number, got {value!r}") from None


#: Graph-level flags: flag -> (draft attribute, converter)
_GRAPH_FLAGS: Dict[str, tuple] = {
    "-steps": ("steps", _to_int),
    "-width": ("width", _to_int),
    "-radix": ("radix", _to_int),
    "-period": ("period", _to_int),
    "-iter": ("iterations", _to_int),
    "-span": ("span", _to_int),
    "-output": ("output", _to_int),
    "-scratch": ("scratch", _to_int),
    "-seed": ("seed", _to_int),
    "-fraction": ("fraction", _to_float),
    "-imbalance": ("imbalance", _to_float),
    "-wait": ("wait_us", _to_float),
}


def parse_args(argv: Sequence[str]) -> AppConfig:
    """Parse a Task Bench command line into an :class:`AppConfig`.

    Raises :class:`ConfigError` on unknown flags, missing values, or invalid
    parameter combinations (the underlying dataclasses re-validate ranges).
    """
    app = AppConfig()
    drafts: List[_GraphDraft] = [_GraphDraft()]
    tokens = list(argv)
    pos = 0

    def take_value(flag: str) -> str:
        nonlocal pos
        if pos >= len(tokens):
            raise ConfigError(f"flag {flag} is missing its value")
        value = tokens[pos]
        pos += 1
        return value

    while pos < len(tokens):
        flag = tokens[pos]
        pos += 1
        if flag == "-and":
            # Start a new graph inheriting the previous graph's settings,
            # matching the official CLI behaviour.
            drafts.append(replace(drafts[-1]))
        elif flag in _GRAPH_FLAGS:
            attr, conv = _GRAPH_FLAGS[flag]
            setattr(drafts[-1], attr, conv(flag, take_value(flag)))
        elif flag == "-type":
            drafts[-1].dtype = DependenceType.parse(take_value(flag))
        elif flag == "-kernel":
            drafts[-1].kernel_type = KernelType.parse(take_value(flag))
        elif flag == "-runtime":
            app.runtime = take_value(flag)
        elif flag == "-workers":
            app.workers = _to_int(flag, take_value(flag))
        elif flag == "-nodes":
            app.nodes = _to_int(flag, take_value(flag))
        elif flag == "-cores":
            app.cores_per_node = _to_int(flag, take_value(flag))
        elif flag == "-persistent-imbalance":
            drafts[-1].persistent_imbalance = True
        elif flag == "-no-validate":
            app.validate = False
        elif flag == "-verbose":
            app.verbose = True
        elif flag in ("-timeout", "--timeout"):
            app.timeout = _to_float(flag, take_value(flag))
        elif flag in ("-max-retries", "--max-retries"):
            app.max_retries = _to_int(flag, take_value(flag))
        elif flag in ("-inject-fault", "--inject-fault"):
            spec = take_value(flag)
            try:
                from ..faults import parse_fault

                parse_fault(spec)  # validate eagerly; stored as text
            except ValueError as e:
                raise ConfigError(str(e)) from None
            app.inject_fault = spec
        else:
            raise ConfigError(f"unknown flag {flag!r}")

    try:
        app.graphs = [d.freeze(idx) for idx, d in enumerate(drafts)]
    except ValueError as e:
        raise ConfigError(str(e)) from None
    if app.workers < 1:
        raise ConfigError(f"-workers must be >= 1, got {app.workers}")
    if app.nodes < 1:
        raise ConfigError(f"-nodes must be >= 1, got {app.nodes}")
    if app.timeout is not None and app.timeout <= 0:
        raise ConfigError(f"-timeout must be > 0, got {app.timeout}")
    if app.max_retries is not None and app.max_retries < 0:
        raise ConfigError(f"-max-retries must be >= 0, got {app.max_retries}")
    return app


def default_graph(**overrides) -> TaskGraph:
    """A small stencil/compute graph useful as a starting configuration."""
    base = dict(
        timesteps=10,
        max_width=4,
        dependence=DependenceType.STENCIL_1D,
        kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=16),
        output_bytes_per_task=16,
    )
    base.update(overrides)
    return TaskGraph(**base)
