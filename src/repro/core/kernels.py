"""Task kernels: the work executed by each task (paper §2).

The original core library provides hand-written AVX2 kernels; this
reproduction provides NumPy equivalents with the same *semantics*:

* ``compute_bound``: a tight dependent FMA loop ``A = A * A + A`` over a
  64-wide vector, repeated ``iterations`` times.  Duration is proportional to
  ``iterations`` and the achieved FLOP rate is constant, which is all the
  METG methodology requires (absolute peak is calibrated empirically, just as
  the paper calibrates Cori's 1.26 TFLOP/s).
* ``memory_bound``: sequential copies over a scratch buffer.  The *working
  set* (the scratch buffer) stays constant as ``iterations`` shrinks, so
  small problem sizes do not enjoy spurious cache speedups (paper §2).
* ``busy_wait``: spins on the clock; useful for calibration-independent task
  durations.
* ``load_imbalance``: the compute kernel with its duration multiplied by a
  deterministic pseudo-random value in ``[0, 1)`` keyed on
  ``(seed, timestep, column)``, so all runtime systems observe identical
  per-task durations (paper §5.7).
* ``io_bound``: sequential writes and read-back against a temporary file,
  ``span_bytes`` per iteration (the official core's IO kernel).
* ``empty``: no work; measures pure runtime overhead.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .dependence import _splitmix64
from .types import KernelType

#: Width of the compute kernel's vector, matching the original AVX2 kernel
#: (Listing 1 of the paper uses ``double A[64]``).
KERNEL_VECTOR_WIDTH = 64

#: FLOPs per compute-kernel iteration: one multiply + one add per element.
FLOPS_PER_ITERATION = 2 * KERNEL_VECTOR_WIDTH


@dataclass(frozen=True)
class Kernel:
    """Configuration of the work performed by each task (Table 1).

    Attributes
    ----------
    kernel_type:
        Which kernel to run.
    iterations:
        Task duration dial / problem size (compute and memory kernels).
    span_bytes:
        Bytes read + written per iteration of the memory kernel.
    imbalance:
        Degree of load imbalance in ``[0, 1]`` for the load-imbalance
        kernel: the per-task multiplier is ``1 - imbalance * u`` with
        ``u ~ U[0, 1)``, so ``imbalance=1`` reproduces the paper's
        "duration multiplied by a uniform random variable between [0, 1)".
    wait_us:
        Busy-wait duration in microseconds (busy-wait kernel only).
    persistent:
        Imbalance persistence.  ``False`` (the paper's §5.7 setup) draws a
        fresh multiplier per (timestep, column): "timestep t is
        uncorrelated with timestep t+1".  ``True`` draws one multiplier
        per *column*, so the same tasks are slow every timestep — the
        persistent-imbalance regime the paper leaves to future work, where
        asynchrony alone no longer mitigates and migration/stealing is
        required.
    samples:
        Number of distinct pseudo-random streams for imbalance draws;
        kept for CLI compatibility, unused otherwise.
    """

    kernel_type: KernelType = KernelType.EMPTY
    iterations: int = 0
    span_bytes: int = 0
    imbalance: float = 0.0
    wait_us: float = 0.0
    persistent: bool = False
    samples: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {self.iterations}")
        if self.span_bytes < 0:
            raise ValueError(f"span_bytes must be >= 0, got {self.span_bytes}")
        if not 0.0 <= self.imbalance <= 1.0:
            raise ValueError(f"imbalance must be in [0, 1], got {self.imbalance}")
        if self.wait_us < 0:
            raise ValueError(f"wait_us must be >= 0, got {self.wait_us}")

    # ------------------------------------------------------------------
    # Work accounting (used for FLOP/s and B/s efficiency metrics)
    # ------------------------------------------------------------------
    def flops_per_task(self, t: int = 0, i: int = 0, seed: int = 0) -> int:
        """Useful floating-point operations performed by task ``(t, i)``."""
        if self.kernel_type in (KernelType.COMPUTE_BOUND, KernelType.COMPUTE_BOUND2):
            return self.iterations * FLOPS_PER_ITERATION
        if self.kernel_type is KernelType.LOAD_IMBALANCE:
            return self.effective_iterations(t, i, seed) * FLOPS_PER_ITERATION
        return 0

    def bytes_per_task(self) -> int:
        """Bytes moved (read + write) by the memory or IO kernel per task."""
        if self.kernel_type in (KernelType.MEMORY_BOUND, KernelType.IO_BOUND):
            return 2 * self.iterations * self.span_bytes
        return 0

    def effective_iterations(self, t: int, i: int, seed: int = 0) -> int:
        """Iterations actually executed by task ``(t, i)``.

        Equal to ``iterations`` for all kernels except ``load_imbalance``,
        where the count is scaled by the deterministic multiplier.
        """
        if self.kernel_type is not KernelType.LOAD_IMBALANCE:
            return self.iterations
        return int(self.iterations * self.duration_multiplier(t, i, seed))

    def duration_multiplier(self, t: int, i: int, seed: int = 0) -> float:
        """Deterministic per-task duration multiplier in ``(0, 1]``.

        Identical for every runtime system given the same seed, mirroring the
        paper's consistent-seed PRNG (§5.7).
        """
        if self.kernel_type is not KernelType.LOAD_IMBALANCE or self.imbalance == 0.0:
            return 1.0
        h = _splitmix64(seed ^ 0xC0FFEE)
        if not self.persistent:
            h = _splitmix64(h ^ t)
        h = _splitmix64(h ^ i)
        u = h / 2.0**64
        return 1.0 - self.imbalance * u

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        t: int = 0,
        i: int = 0,
        scratch: np.ndarray | None = None,
        seed: int = 0,
    ) -> None:
        """Run the kernel for task ``(t, i)``.

        ``scratch`` must be a ``uint8`` array of the graph's
        ``scratch_bytes_per_task`` for the memory-bound kernel; other kernels
        ignore it.
        """
        kt = self.kernel_type
        if kt is KernelType.EMPTY:
            return
        if kt is KernelType.BUSY_WAIT:
            execute_kernel_busy_wait(self.wait_us)
            return
        if kt is KernelType.COMPUTE_BOUND:
            execute_kernel_compute(self.iterations)
            return
        if kt is KernelType.COMPUTE_BOUND2:
            execute_kernel_compute2(self.iterations)
            return
        if kt is KernelType.MEMORY_BOUND:
            if scratch is None:
                raise ValueError("memory_bound kernel requires a scratch buffer")
            execute_kernel_memory(scratch, self.iterations, self.span_bytes)
            return
        if kt is KernelType.LOAD_IMBALANCE:
            execute_kernel_compute(self.effective_iterations(t, i, seed))
            return
        if kt is KernelType.IO_BOUND:
            execute_kernel_io(self.iterations, self.span_bytes)
            return
        raise AssertionError(f"unhandled kernel type {kt}")  # pragma: no cover


#: Per-thread reusable accumulator/temporary vectors for the compute
#: kernels.  The kernels historically allocated three fresh 64-wide arrays
#: *per iteration* (``a * a`` and ``+ a`` each allocate, plus the initial
#: ``np.full``), which showed up as per-task allocator traffic on the
#: empty-ish hot path; the semantics only need the values, so each thread
#: keeps one set of buffers and the loop runs through ``out=`` ufuncs.
_kernel_tls = threading.local()


def _kernel_buffers() -> tuple:
    bufs = getattr(_kernel_tls, "bufs", None)
    if bufs is None:
        bufs = (
            np.empty(KERNEL_VECTOR_WIDTH),
            np.empty(KERNEL_VECTOR_WIDTH),
            np.empty(KERNEL_VECTOR_WIDTH),
            np.empty(KERNEL_VECTOR_WIDTH),
        )
        _kernel_tls.bufs = bufs
    return bufs


def execute_kernel_compute(iterations: int) -> np.ndarray:
    """Dependent FMA loop over a 64-wide vector (Listing 1 of the paper).

    Each iteration reads the previous iteration's result, so the loop cannot
    be collapsed; duration is strictly proportional to ``iterations``.

    Returns the live per-thread accumulator (valid until this thread's next
    kernel call) — callers wanting to keep the values must copy.
    """
    a, _, tmp, _ = _kernel_buffers()
    a[:] = 1.2345
    with np.errstate(over="ignore"):  # values saturate to inf by design
        for _ in range(iterations):
            np.multiply(a, a, out=tmp)
            np.add(tmp, a, out=a)
    return a


def execute_kernel_compute2(iterations: int) -> np.ndarray:
    """Variant with two independent accumulator chains (official
    COMPUTE_BOUND2), exposing a little instruction-level parallelism.

    Returns the live per-thread result buffer (valid until this thread's
    next kernel call) — callers wanting to keep the values must copy.
    """
    a, b, tmp, out = _kernel_buffers()
    a[:] = 1.2345
    b[:] = 1.0101
    with np.errstate(over="ignore"):
        for _ in range(iterations // 2):
            np.multiply(a, a, out=tmp)
            np.add(tmp, a, out=a)
            np.multiply(b, b, out=tmp)
            np.add(tmp, b, out=b)
        if iterations % 2:
            np.multiply(a, a, out=tmp)
            np.add(tmp, a, out=a)
    np.add(a, b, out=out)
    return out


def execute_kernel_memory(scratch: np.ndarray, iterations: int, span_bytes: int) -> None:
    """Sequential copy sweep over ``scratch`` with constant working set.

    The buffer is split into two halves; each iteration copies ``span_bytes``
    from a rotating offset of one half to the other.  Offsets advance so the
    sweep touches the whole buffer regardless of ``iterations``-per-call,
    matching the original kernel's cache-effect avoidance.
    """
    if scratch.dtype != np.uint8:
        raise ValueError("scratch buffer must be uint8")
    half = scratch.nbytes // 2
    if half == 0:
        return
    span = min(span_bytes, half)
    if span == 0:
        return
    src = scratch[:half]
    dst = scratch[half : 2 * half]
    offset = 0
    for _ in range(iterations):
        end = offset + span
        if end <= half:
            dst[offset:end] = src[offset:end]
        else:  # wrap around
            first = half - offset
            dst[offset:] = src[offset:]
            dst[: span - first] = src[: span - first]
        offset = end % half


def execute_kernel_io(iterations: int, span_bytes: int) -> None:
    """Sequential file writes and read-back, ``span_bytes`` per iteration.

    Uses an anonymous temporary file (unlinked immediately) so no state
    leaks between tasks or survives a crash.  Durability (fsync) is *not*
    requested — the official kernel measures the buffered-IO path.
    """
    if iterations <= 0 or span_bytes <= 0:
        return
    payload = b"\xa5" * span_bytes
    with tempfile.TemporaryFile(prefix="taskbench-io-") as f:
        for _ in range(iterations):
            f.write(payload)
        f.flush()
        f.seek(0)
        while f.read(1 << 20):
            pass


def execute_kernel_busy_wait(wait_us: float) -> None:
    """Spin until ``wait_us`` microseconds have elapsed."""
    deadline = time.perf_counter() + wait_us * 1e-6
    while time.perf_counter() < deadline:
        pass


@dataclass
class KernelTimeModel:
    """Analytic duration model for kernels, used by the simulator substrate.

    ``seconds_per_iteration`` is the calibrated cost of one compute-kernel
    iteration on the modeled core; ``bytes_per_second`` the modeled memory
    bandwidth available to one task.
    """

    seconds_per_iteration: float = 1.0 / (39.4e9 / FLOPS_PER_ITERATION)
    bytes_per_second: float = 5.0e9
    io_bytes_per_second: float = 1.0e9
    base_seconds: float = 0.0
    _cache: dict = field(default_factory=dict, repr=False)

    def task_seconds(self, kernel: Kernel, t: int = 0, i: int = 0, seed: int = 0) -> float:
        """Modeled duration of task ``(t, i)`` running ``kernel``."""
        kt = kernel.kernel_type
        if kt is KernelType.EMPTY:
            return self.base_seconds
        if kt is KernelType.BUSY_WAIT:
            return self.base_seconds + kernel.wait_us * 1e-6
        if kt in (KernelType.COMPUTE_BOUND, KernelType.COMPUTE_BOUND2):
            return self.base_seconds + kernel.iterations * self.seconds_per_iteration
        if kt is KernelType.MEMORY_BOUND:
            return self.base_seconds + kernel.bytes_per_task() / self.bytes_per_second
        if kt is KernelType.LOAD_IMBALANCE:
            eff = kernel.effective_iterations(t, i, seed)
            return self.base_seconds + eff * self.seconds_per_iteration
        if kt is KernelType.IO_BOUND:
            return self.base_seconds + kernel.bytes_per_task() / self.io_bytes_per_second
        raise AssertionError(f"unhandled kernel type {kt}")  # pragma: no cover
