"""Dependence relations between consecutive timesteps of a task graph.

This module implements Table 2 of the paper plus the additional patterns of
the official Task Bench core library.  A dependence relation answers, for a
task at point ``(t, i)`` of the 2-D iteration space, which points of timestep
``t - 1`` it depends on (``dependencies``) and, symmetrically, which points of
timestep ``t + 1`` depend on it (``reverse_dependencies``).

Following the official core library, results are returned as lists of closed
intervals ``(lo, hi)`` over column indices, which keeps dependence queries
O(1) in the number of dependencies for the regular patterns (stencil,
nearest, ...) and lets runtime shims iterate without materializing the graph.

The fundamental invariant, checked exhaustively by the test suite, is::

    j in deps(t, i)  <=>  i in rdeps(t - 1, j)

with both sides restricted to points that actually exist at their timestep
(``contains_point``), which matters for the tree pattern where the iteration
space grows as the tree fans out.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

from .types import DependenceType

Interval = Tuple[int, int]

#: Upper bound on shifts used for the FFT pattern so ``2 ** s`` never
#: overflows for degenerate graph widths.
_MAX_SHIFT = 62


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 mixing function (public-domain constant
    set).  Used to derive deterministic pseudo-random dependence edges that
    can be evaluated consistently from either endpoint of the edge.
    """
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def _edge_hash_u01(seed: int, t: int, i: int, j: int) -> float:
    """Deterministic uniform value in ``[0, 1)`` for the directed edge
    ``(t-1, j) -> (t, i)``.  Both ``dependencies`` and
    ``reverse_dependencies`` evaluate the same hash, so the random pattern is
    consistent when queried from either side.
    """
    h = _splitmix64(seed)
    h = _splitmix64(h ^ (t & 0xFFFFFFFFFFFFFFFF))
    h = _splitmix64(h ^ (i & 0xFFFFFFFFFFFFFFFF))
    h = _splitmix64(h ^ (j & 0xFFFFFFFFFFFFFFFF))
    return h / 2.0**64


def merge_intervals(points: Sequence[int]) -> List[Interval]:
    """Collapse a sequence of column indices into sorted, disjoint, closed
    intervals.  Duplicates are removed.

    >>> merge_intervals([3, 1, 2, 7])
    [(1, 3), (7, 7)]
    """
    if not points:
        return []
    ordered = sorted(set(points))
    out: List[Interval] = []
    lo = hi = ordered[0]
    for p in ordered[1:]:
        if p == hi + 1:
            hi = p
        else:
            out.append((lo, hi))
            lo = hi = p
    out.append((lo, hi))
    return out


def interval_points(intervals: Sequence[Interval]) -> Iterator[int]:
    """Iterate every column index covered by ``intervals`` in order."""
    for lo, hi in intervals:
        yield from range(lo, hi + 1)


def count_points(intervals: Sequence[Interval]) -> int:
    """Total number of column indices covered by ``intervals``."""
    return sum(hi - lo + 1 for lo, hi in intervals)


def clip_intervals(
    intervals: Sequence[Interval], lo_bound: int, hi_bound: int
) -> List[Interval]:
    """Intersect ``intervals`` with the closed range ``[lo_bound, hi_bound]``."""
    out: List[Interval] = []
    for lo, hi in intervals:
        lo2, hi2 = max(lo, lo_bound), min(hi, hi_bound)
        if lo2 <= hi2:
            out.append((lo2, hi2))
    return out


class DependenceSpec:
    """Dependence relation for a task graph of a fixed ``width``/``height``.

    Parameters
    ----------
    dtype:
        The dependence pattern.
    width, height:
        Dimensions of the iteration space (columns, timesteps).
    radix:
        Number of dependencies per task for the ``nearest``/``spread``/
        ``random_nearest`` patterns (paper Table 1).  Ignored otherwise.
    period:
        For ``random_nearest``: the random pattern repeats every ``period``
        timesteps.  ``-1`` (default) draws a fresh pattern every timestep.
    fraction:
        For ``random_nearest``: probability that each candidate edge in the
        nearest window is present.
    seed:
        Seed for the deterministic random pattern.
    """

    def __init__(
        self,
        dtype: DependenceType,
        width: int,
        height: int,
        *,
        radix: int = 3,
        period: int = -1,
        fraction: float = 0.25,
        seed: int = 12345,
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if height < 1:
            raise ValueError(f"height must be >= 1, got {height}")
        if radix < 0:
            raise ValueError(f"radix must be >= 0, got {radix}")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if period == 0 or period < -1:
            raise ValueError(f"period must be -1 or a positive integer, got {period}")
        self.dtype = dtype
        self.width = width
        self.height = height
        self.radix = radix
        self.period = period
        self.fraction = fraction
        self.seed = seed
        # Number of FFT butterfly stages before the stride pattern repeats.
        self._fft_stages = max(1, math.ceil(math.log2(width))) if width > 1 else 1

    # ------------------------------------------------------------------
    # Iteration-space shape
    # ------------------------------------------------------------------
    def offset_at_timestep(self, t: int) -> int:
        """First active column index at timestep ``t``."""
        self._check_timestep(t)
        return 0

    def width_at_timestep(self, t: int) -> int:
        """Number of active columns at timestep ``t``.

        All patterns occupy the full rectangle except ``tree``, which fans
        out from a single root, doubling each timestep until the full width
        is reached.
        """
        self._check_timestep(t)
        if self.dtype is DependenceType.TREE:
            return min(self.width, 1 << min(t, _MAX_SHIFT))
        return self.width

    def contains_point(self, t: int, i: int) -> bool:
        """Whether task ``(t, i)`` exists in the iteration space."""
        if not 0 <= t < self.height:
            return False
        off = self.offset_at_timestep(t)
        return off <= i < off + self.width_at_timestep(t)

    # ------------------------------------------------------------------
    # Forward dependencies: points at t-1 that (t, i) depends on
    # ------------------------------------------------------------------
    def dependencies(self, t: int, i: int) -> List[Interval]:
        """Intervals of columns at timestep ``t - 1`` that ``(t, i)`` reads."""
        self._check_point(t, i)
        if t == 0:
            return []
        raw = self._raw_dependencies(t, i)
        prev_lo = self.offset_at_timestep(t - 1)
        prev_hi = prev_lo + self.width_at_timestep(t - 1) - 1
        return clip_intervals(raw, prev_lo, prev_hi)

    def _raw_dependencies(self, t: int, i: int) -> List[Interval]:
        w = self.width
        d = self.dtype
        if d is DependenceType.TRIVIAL:
            return []
        if d is DependenceType.NO_COMM:
            return [(i, i)]
        if d is DependenceType.STENCIL_1D:
            return [(i - 1, i + 1)]
        if d is DependenceType.STENCIL_1D_PERIODIC:
            return merge_intervals([(i - 1) % w, i, (i + 1) % w])
        if d is DependenceType.DOM:
            return [(i - 1, i)]
        if d is DependenceType.TREE:
            if self.width_at_timestep(t) > self.width_at_timestep(t - 1):
                return [(i // 2, i // 2)]
            return [(i, i)]
        if d is DependenceType.FFT:
            s = self._fft_stride(t)
            return merge_intervals([i - s, i, i + s])
        if d is DependenceType.ALL_TO_ALL:
            return [(0, w - 1)]
        if d is DependenceType.NEAREST:
            if self.radix == 0:
                return []
            return [(i - (self.radix - 1) // 2, i + self.radix // 2)]
        if d is DependenceType.SPREAD:
            return merge_intervals(self._spread_points(t, i, forward=True))
        if d is DependenceType.RANDOM_NEAREST:
            return merge_intervals(
                [
                    j
                    for j in self._nearest_window(i)
                    if self._random_edge(t, i, j)
                ]
            )
        raise AssertionError(f"unhandled dependence type {d}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Reverse dependencies: points at t+1 that depend on (t, i)
    # ------------------------------------------------------------------
    def reverse_dependencies(self, t: int, i: int) -> List[Interval]:
        """Intervals of columns at timestep ``t + 1`` that read ``(t, i)``."""
        self._check_point(t, i)
        if t == self.height - 1:
            return []
        raw = self._raw_reverse_dependencies(t, i)
        nxt_lo = self.offset_at_timestep(t + 1)
        nxt_hi = nxt_lo + self.width_at_timestep(t + 1) - 1
        return clip_intervals(raw, nxt_lo, nxt_hi)

    def _raw_reverse_dependencies(self, t: int, i: int) -> List[Interval]:
        w = self.width
        d = self.dtype
        if d is DependenceType.TRIVIAL:
            return []
        if d is DependenceType.NO_COMM:
            return [(i, i)]
        if d is DependenceType.STENCIL_1D:
            return [(i - 1, i + 1)]
        if d is DependenceType.STENCIL_1D_PERIODIC:
            return merge_intervals([(i - 1) % w, i, (i + 1) % w])
        if d is DependenceType.DOM:
            return [(i, i + 1)]
        if d is DependenceType.TREE:
            if self.width_at_timestep(t + 1) > self.width_at_timestep(t):
                return [(2 * i, 2 * i + 1)]
            return [(i, i)]
        if d is DependenceType.FFT:
            s = self._fft_stride(t + 1)
            return merge_intervals([i - s, i, i + s])
        if d is DependenceType.ALL_TO_ALL:
            return [(0, w - 1)]
        if d is DependenceType.NEAREST:
            if self.radix == 0:
                return []
            return [(i - self.radix // 2, i + (self.radix - 1) // 2)]
        if d is DependenceType.SPREAD:
            return merge_intervals(self._spread_points(t, i, forward=False))
        if d is DependenceType.RANDOM_NEAREST:
            out = []
            for consumer in self._nearest_window_inverse(i):
                if self._random_edge(t + 1, consumer, i):
                    out.append(consumer)
            return merge_intervals(out)
        raise AssertionError(f"unhandled dependence type {d}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def dependency_points(self, t: int, i: int) -> Iterator[int]:
        """Iterate the column indices ``(t, i)`` depends on (at ``t - 1``)."""
        return interval_points(self.dependencies(t, i))

    def reverse_dependency_points(self, t: int, i: int) -> Iterator[int]:
        """Iterate the columns at ``t + 1`` that depend on ``(t, i)``."""
        return interval_points(self.reverse_dependencies(t, i))

    def num_dependencies(self, t: int, i: int) -> int:
        """Number of inputs of task ``(t, i)``."""
        return count_points(self.dependencies(t, i))

    def max_dependencies(self) -> int:
        """Upper bound on the number of dependencies of any task.

        Useful for sizing receive buffers in runtime shims.
        """
        d = self.dtype
        if d is DependenceType.TRIVIAL:
            return 0
        if d in (DependenceType.NO_COMM,):
            return 1
        if d in (DependenceType.STENCIL_1D, DependenceType.STENCIL_1D_PERIODIC):
            return min(3, self.width)
        if d is DependenceType.DOM:
            return min(2, self.width)
        if d is DependenceType.TREE:
            return 1
        if d is DependenceType.FFT:
            return min(3, self.width)
        if d is DependenceType.ALL_TO_ALL:
            return self.width
        return min(self.radix, self.width)

    # ------------------------------------------------------------------
    # Dependence sets (official core API): timesteps with identical
    # dependence structure share a set id, so runtimes and simulators can
    # compute each structure once and reuse it.
    # ------------------------------------------------------------------
    def max_dependence_sets(self) -> int:
        """Number of distinct dependence structures across all timesteps.

        Mirrors the official core library's ``max_dependence_sets()``: two
        timesteps ``s``, ``t`` with
        ``dependence_set_at_timestep(s) == dependence_set_at_timestep(t)``
        use the same dependence *relation* — ``dependencies(s, i) ==
        dependencies(t, i)`` for every column (whenever both timesteps have
        a predecessor; the first timestep of a graph has no inputs
        regardless of its set id), and the same active window.  Runtimes
        and simulators use this to compute each structure once.
        """
        d = self.dtype
        if d in (
            DependenceType.TRIVIAL,
            DependenceType.NO_COMM,
            DependenceType.STENCIL_1D,
            DependenceType.STENCIL_1D_PERIODIC,
            DependenceType.DOM,
            DependenceType.ALL_TO_ALL,
            DependenceType.NEAREST,
        ):
            return 1
        if d is DependenceType.FFT:
            return min(self.height, self._fft_stages)
        if d is DependenceType.TREE:
            # every expanding timestep has a distinct window; afterwards
            # the self-dependency structure repeats
            expanding = min(
                self.height,
                max(0, math.ceil(math.log2(self.width))) + 1 if self.width > 1 else 1,
            )
            steady = 1 if self.height > expanding else 0
            return expanding + steady
        if d is DependenceType.SPREAD:
            return min(self.height, self.width)
        if d is DependenceType.RANDOM_NEAREST:
            if self.period > 0:
                return min(self.height, self.period)
            return self.height
        raise AssertionError(f"unhandled dependence type {d}")  # pragma: no cover

    def dependence_set_at_timestep(self, t: int) -> int:
        """Equivalence-class id of timestep ``t``'s dependence structure."""
        self._check_timestep(t)
        d = self.dtype
        if d in (
            DependenceType.TRIVIAL,
            DependenceType.NO_COMM,
            DependenceType.STENCIL_1D,
            DependenceType.STENCIL_1D_PERIODIC,
            DependenceType.DOM,
            DependenceType.ALL_TO_ALL,
            DependenceType.NEAREST,
        ):
            return 0
        if d is DependenceType.FFT:
            return 0 if t == 0 else (t - 1) % self._fft_stages
        if d is DependenceType.TREE:
            expanding = (
                max(0, math.ceil(math.log2(self.width))) + 1 if self.width > 1 else 1
            )
            return min(t, expanding - 1) if t < expanding else expanding
        if d is DependenceType.SPREAD:
            return t % self.width
        if d is DependenceType.RANDOM_NEAREST:
            return t % self.period if self.period > 0 else t
        raise AssertionError(f"unhandled dependence type {d}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Pattern internals
    # ------------------------------------------------------------------
    def _fft_stride(self, t: int) -> int:
        """Butterfly stride used by tasks at timestep ``t`` (``t >= 1``).

        The classic FFT has ``log2(width)`` stages; for graphs taller than
        that the stage index cycles so every timestep keeps an FFT-shaped
        exchange, matching the intent of Table 2 without overflowing.
        """
        stage = (t - 1) % self._fft_stages
        return 1 << min(stage, _MAX_SHIFT)

    def _spread_points(self, t: int, i: int, *, forward: bool) -> List[int]:
        """Columns reached by the spread pattern.

        Forward: dependencies of consumer ``(t, i)`` are
        ``(i + k * step + t) mod width`` for ``k in [0, radix)``, i.e. the
        ``radix`` producers are spread maximally across the row and the
        pattern rotates with the timestep.  Backward: consumers at ``t + 1``
        of producer ``(t, i)`` (the inverse map).
        """
        if self.radix == 0:
            return []
        w = self.width
        step = max(1, w // min(self.radix, w))
        pts = []
        for k in range(min(self.radix, w)):
            if forward:
                pts.append((i + k * step + t) % w)
            else:
                pts.append((i - k * step - (t + 1)) % w)
        return pts

    def _nearest_window(self, i: int) -> range:
        """Candidate producer window for the random-nearest pattern."""
        if self.radix == 0:
            return range(0)
        lo = max(0, i - (self.radix - 1) // 2)
        hi = min(self.width - 1, i + self.radix // 2)
        return range(lo, hi + 1)

    def _nearest_window_inverse(self, j: int) -> range:
        """Candidate consumer window: all ``i`` whose nearest window holds ``j``."""
        if self.radix == 0:
            return range(0)
        lo = max(0, j - self.radix // 2)
        hi = min(self.width - 1, j + (self.radix - 1) // 2)
        return range(lo, hi + 1)

    def _random_edge(self, t: int, i: int, j: int) -> bool:
        """Whether the random-nearest edge ``(t-1, j) -> (t, i)`` exists."""
        teff = t % self.period if self.period > 0 else t
        return _edge_hash_u01(self.seed, teff, i, j) < self.fraction

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_timestep(self, t: int) -> None:
        if not 0 <= t < self.height:
            raise IndexError(f"timestep {t} outside [0, {self.height})")

    def _check_point(self, t: int, i: int) -> None:
        if not self.contains_point(t, i):
            raise IndexError(
                f"point (t={t}, i={i}) is not in the iteration space "
                f"(width={self.width}, height={self.height}, "
                f"dependence={self.dtype.value})"
            )
