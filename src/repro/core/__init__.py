"""Task Bench core library (paper §2).

Everything shared between runtime implementations lives here: task-graph
generation, dependence enumeration, kernels, validation, parameter parsing
and result reporting.  Runtime shims (``repro.runtimes``) and the simulator
substrate (``repro.sim``) are both built on this package.
"""

from .config import AppConfig, ConfigError, default_graph, parse_args
from .dependence import (
    DependenceSpec,
    Interval,
    clip_intervals,
    count_points,
    interval_points,
    merge_intervals,
)
from .executor_base import Executor
from .kernels import (
    FLOPS_PER_ITERATION,
    KERNEL_VECTOR_WIDTH,
    Kernel,
    KernelTimeModel,
    execute_kernel_busy_wait,
    execute_kernel_compute,
    execute_kernel_compute2,
    execute_kernel_io,
    execute_kernel_memory,
)
from .metrics import RunResult, summarize_graphs
from .scenarios import SCENARIOS, Scenario, get_scenario
from .task_graph import DEFAULT_SEED, TaskGraph
from .types import DependenceType, KernelType
from .validation import (
    ValidationError,
    expected_inputs,
    task_output,
    validate_inputs,
)

__all__ = [
    "AppConfig",
    "ConfigError",
    "DEFAULT_SEED",
    "DependenceSpec",
    "DependenceType",
    "Executor",
    "FLOPS_PER_ITERATION",
    "Interval",
    "KERNEL_VECTOR_WIDTH",
    "Kernel",
    "KernelTimeModel",
    "KernelType",
    "RunResult",
    "SCENARIOS",
    "Scenario",
    "TaskGraph",
    "ValidationError",
    "clip_intervals",
    "count_points",
    "default_graph",
    "execute_kernel_busy_wait",
    "execute_kernel_compute",
    "execute_kernel_compute2",
    "execute_kernel_io",
    "execute_kernel_memory",
    "expected_inputs",
    "get_scenario",
    "interval_points",
    "merge_intervals",
    "parse_args",
    "summarize_graphs",
    "task_output",
    "validate_inputs",
]
