"""Run metrics and reporting (paper §4).

Defines :class:`RunResult`, the uniform record every executor (real or
simulated) returns, and the derived quantities the paper's evaluation is
built on: FLOP/s, B/s, tasks/s and — centrally — *task granularity*::

    task granularity = wall time x num. cores / num. tasks      (paper §4)

The core library "manages ... displaying results, ensuring that all
implementations behave uniformly and can be scripted consistently";
:meth:`RunResult.report` is that uniform output format.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .task_graph import TaskGraph


@dataclass(frozen=True)
class WireStats:
    """How task payloads moved over a real transport (cluster executors).

    The distributed executors (:mod:`repro.cluster`) move dependency
    payloads between rank processes as binary frames over sockets.  These
    counters are the network-side complement of :class:`DataPlaneStats`:
    bytes/messages that actually crossed the wire, plus the time the ranks
    spent encoding and decoding frames (the serialization cost the paper's
    communication analysis isolates, §5.5).
    """

    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    serialize_seconds: float = 0.0
    deserialize_seconds: float = 0.0
    #: Payloads that travelled inside multi-payload DATA_BATCH frames (the
    #: fast path coalesces a timestep's per-peer sends into one frame; each
    #: batch frame still counts once in ``messages_sent``/``_received``).
    batched_payloads_sent: int = 0
    batched_payloads_received: int = 0

    def merged(self, other: "WireStats") -> "WireStats":
        """Sum of two wire records (e.g. several ranks of one run)."""
        return WireStats(
            bytes_sent=self.bytes_sent + other.bytes_sent,
            bytes_received=self.bytes_received + other.bytes_received,
            messages_sent=self.messages_sent + other.messages_sent,
            messages_received=self.messages_received + other.messages_received,
            serialize_seconds=self.serialize_seconds + other.serialize_seconds,
            deserialize_seconds=(
                self.deserialize_seconds + other.deserialize_seconds
            ),
            batched_payloads_sent=(
                self.batched_payloads_sent + other.batched_payloads_sent
            ),
            batched_payloads_received=(
                self.batched_payloads_received + other.batched_payloads_received
            ),
        )

    def report_lines(self) -> List[str]:
        """Wire section of the uniform report."""
        lines = [
            f"Bytes On Wire {self.bytes_sent} sent / "
            f"{self.bytes_received} received "
            f"({self.messages_sent} / {self.messages_received} messages)",
            f"Wire Codec Time {self.serialize_seconds:e} s serialize, "
            f"{self.deserialize_seconds:e} s deserialize",
        ]
        if self.batched_payloads_sent or self.batched_payloads_received:
            lines.append(
                f"Wire Batching {self.batched_payloads_sent} payloads sent / "
                f"{self.batched_payloads_received} received in batch frames"
            )
        return lines


@dataclass(frozen=True)
class DataPlaneStats:
    """How task payloads moved during a run (paper §3's communication layer).

    The zero-copy data plane (:mod:`repro.core.bufpool`) distinguishes
    payload bytes that crossed an executor boundary *by copy* (pickled
    through a pipe, duplicated into a message) from bytes that were
    *shared* (routed through pooled slabs and referenced by handle).
    Pool hit-rate tracks how well slab recycling amortizes allocation.
    Distributed executors additionally attach a :class:`WireStats` record
    for the bytes that crossed real sockets.
    """

    bytes_copied: int = 0
    payloads_copied: int = 0
    bytes_shared: int = 0
    payloads_shared: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    wire: Optional[WireStats] = None
    #: Dependence-table fast path activity (repro.core.fastpath): lookups
    #: served from a compiled structure, and structures compiled, during
    #: the run (parent-process view).
    fastpath_hits: int = 0
    fastpath_compiles: int = 0

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of pool acquisitions served from a free list."""
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    def merged(self, other: "DataPlaneStats") -> "DataPlaneStats":
        """Sum of two stats records (e.g. several pools in one run)."""
        if self.wire is None:
            wire = other.wire
        elif other.wire is None:
            wire = self.wire
        else:
            wire = self.wire.merged(other.wire)
        return DataPlaneStats(
            bytes_copied=self.bytes_copied + other.bytes_copied,
            payloads_copied=self.payloads_copied + other.payloads_copied,
            bytes_shared=self.bytes_shared + other.bytes_shared,
            payloads_shared=self.payloads_shared + other.payloads_shared,
            pool_hits=self.pool_hits + other.pool_hits,
            pool_misses=self.pool_misses + other.pool_misses,
            wire=wire,
            fastpath_hits=self.fastpath_hits + other.fastpath_hits,
            fastpath_compiles=self.fastpath_compiles + other.fastpath_compiles,
        )

    def report_lines(self) -> List[str]:
        """Data-plane section of the uniform report."""
        lines = [
            f"Bytes Copied {self.bytes_copied} ({self.payloads_copied} payloads)",
            f"Bytes Shared {self.bytes_shared} ({self.payloads_shared} payloads)",
            f"Pool Hit Rate {self.pool_hit_rate:.3f} "
            f"({self.pool_hits} hits, {self.pool_misses} misses)",
        ]
        if self.fastpath_hits or self.fastpath_compiles:
            lines.append(
                f"Fastpath Hits {self.fastpath_hits} "
                f"({self.fastpath_compiles} table compiles)"
            )
        if self.wire is not None:
            lines.extend(self.wire.report_lines())
        return lines


@dataclass(frozen=True)
class FaultStats:
    """Fault-tolerance accounting of a run (crash supervision layer).

    The process executors supervise their fork-worker pools: a killed
    worker surfaces as a crash, a wedged one as a deadline timeout, and
    both are respawned in place on the next run.  At the METG level a
    probe whose run failed transiently is retried with backoff.  These
    counters make that machinery's activity visible in ``--report`` —
    a sweep that silently burned retries is a measurement caveat.
    """

    worker_crashes: int = 0
    worker_timeouts: int = 0
    workers_respawned: int = 0
    probe_retries: int = 0

    @property
    def any(self) -> bool:
        """Whether any fault activity was recorded at all."""
        return bool(
            self.worker_crashes
            or self.worker_timeouts
            or self.workers_respawned
            or self.probe_retries
        )

    def merged(self, other: "FaultStats") -> "FaultStats":
        """Sum of two fault records (e.g. dropped pool + live pool)."""
        return FaultStats(
            worker_crashes=self.worker_crashes + other.worker_crashes,
            worker_timeouts=self.worker_timeouts + other.worker_timeouts,
            workers_respawned=self.workers_respawned + other.workers_respawned,
            probe_retries=self.probe_retries + other.probe_retries,
        )

    def report_lines(self) -> List[str]:
        """Fault section of the uniform report."""
        return [
            f"Worker Crashes {self.worker_crashes} "
            f"({self.worker_timeouts} deadline timeouts)",
            f"Workers Respawned {self.workers_respawned}",
            f"Probe Retries {self.probe_retries}",
        ]


@dataclass(frozen=True)
class TraceStats:
    """Summary of a wall-clock span trace collected during a run.

    Tracing (:mod:`repro.trace`) records spans on a separate channel from
    the timings above — trace timestamps never feed METG or the
    granularity formula, they only describe *where* the wall-clock went.
    This record carries the collection totals (and the export path when
    the CLI wrote a Chrome trace file) into the uniform report.
    """

    spans: int = 0
    instants: int = 0
    counter_samples: int = 0
    dropped: int = 0
    path: Optional[str] = None

    def report_lines(self) -> List[str]:
        """Trace section of the uniform report."""
        where = f" -> {self.path}" if self.path else ""
        return [
            f"Trace Spans {self.spans} ({self.instants} instants, "
            f"{self.counter_samples} counter samples, "
            f"{self.dropped} dropped){where}",
        ]


@dataclass(frozen=True)
class RunResult:
    """Outcome of executing a set of task graphs on some executor.

    Attributes
    ----------
    executor:
        Name of the runtime system / executor that produced the run.
    elapsed_seconds:
        Wall-clock (or simulated) time for the whole run.
    cores:
        Number of cores participating (workers + any reserved runtime
        cores); used for the task-granularity formula.
    total_tasks, total_dependencies:
        Graph totals, summed over all graphs in the run.
    total_flops, total_bytes:
        Useful work executed, summed over all graphs.
    validated:
        Whether input validation was enabled during the run.
    data_plane:
        Payload-movement counters for executors that report them (see
        :class:`DataPlaneStats`); ``None`` when the executor does not
        instrument its data plane.
    faults:
        Fault-tolerance counters (see :class:`FaultStats`); ``None`` when
        no fault activity was observed (or the executor is unsupervised).
    trace:
        Span-trace summary (see :class:`TraceStats`); ``None`` unless the
        run was traced (the CLI's ``--trace`` flag).
    """

    executor: str
    elapsed_seconds: float
    cores: int
    total_tasks: int
    total_dependencies: int
    total_flops: int = 0
    total_bytes: int = 0
    validated: bool = True
    data_plane: Optional[DataPlaneStats] = None
    faults: Optional[FaultStats] = None
    trace: Optional[TraceStats] = None

    def __post_init__(self) -> None:
        if self.elapsed_seconds < 0:
            raise ValueError("elapsed_seconds must be >= 0")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.total_tasks < 1:
            raise ValueError("total_tasks must be >= 1")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def flops_per_second(self) -> float:
        """Achieved floating-point throughput."""
        return self.total_flops / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def bytes_per_second(self) -> float:
        """Achieved memory throughput (memory-bound kernel)."""
        return self.total_bytes / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def tasks_per_second(self) -> float:
        """Task scheduling throughput (the metric METG improves upon)."""
        return self.total_tasks / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def task_granularity_seconds(self) -> float:
        """Mean task granularity: ``wall time x cores / tasks`` (paper §4)."""
        return self.elapsed_seconds * self.cores / self.total_tasks

    def efficiency(self, peak_flops_per_second: float) -> float:
        """Fraction of peak FLOP/s achieved (compute-bound efficiency)."""
        if peak_flops_per_second <= 0:
            raise ValueError("peak must be positive")
        return self.flops_per_second / peak_flops_per_second

    def memory_efficiency(self, peak_bytes_per_second: float) -> float:
        """Fraction of peak B/s achieved (memory-bound efficiency)."""
        if peak_bytes_per_second <= 0:
            raise ValueError("peak must be positive")
        return self.bytes_per_second / peak_bytes_per_second

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, *, data_plane: bool = False) -> str:
        """Uniform multi-line result report (official-output style).

        With ``data_plane=True`` (the CLI's ``--report`` flag), the
        payload-movement counters are appended when the executor collected
        them.
        """
        lines = [
            f"Executor: {self.executor}",
            f"Total Tasks {self.total_tasks}",
            f"Total Dependencies {self.total_dependencies}",
            f"Elapsed Time {self.elapsed_seconds:e} seconds",
            f"FLOP/s {self.flops_per_second:e}",
            f"B/s {self.bytes_per_second:e}",
            f"Task Granularity {self.task_granularity_seconds:e} seconds",
        ]
        if data_plane:
            if self.data_plane is not None:
                lines.extend(self.data_plane.report_lines())
            else:
                lines.append("Data Plane (not instrumented)")
            if self.faults is not None:
                lines.extend(self.faults.report_lines())
            if self.trace is not None:
                lines.extend(self.trace.report_lines())
        return "\n".join(lines)

    def with_elapsed(self, elapsed_seconds: float) -> "RunResult":
        """Copy of this result with a different elapsed time."""
        return dataclasses.replace(self, elapsed_seconds=elapsed_seconds)


def summarize_graphs(
    executor: str,
    graphs: Sequence[TaskGraph],
    elapsed_seconds: float,
    cores: int,
    *,
    validated: bool = True,
    data_plane: Optional[DataPlaneStats] = None,
    faults: Optional[FaultStats] = None,
) -> RunResult:
    """Build a :class:`RunResult` from graph-level accounting.

    Work totals (tasks, dependencies, FLOPs, bytes) are properties of the
    graphs alone, so they are computed here once rather than re-measured by
    every executor.
    """
    if not graphs:
        raise ValueError("at least one task graph is required")
    return RunResult(
        executor=executor,
        elapsed_seconds=elapsed_seconds,
        cores=cores,
        total_tasks=sum(g.total_tasks() for g in graphs),
        total_dependencies=sum(g.total_dependencies() for g in graphs),
        total_flops=sum(g.total_flops() for g in graphs),
        total_bytes=sum(g.total_bytes() for g in graphs),
        validated=validated,
        data_plane=data_plane,
        faults=faults,
    )
