"""Run metrics and reporting (paper §4).

Defines :class:`RunResult`, the uniform record every executor (real or
simulated) returns, and the derived quantities the paper's evaluation is
built on: FLOP/s, B/s, tasks/s and — centrally — *task granularity*::

    task granularity = wall time x num. cores / num. tasks      (paper §4)

The core library "manages ... displaying results, ensuring that all
implementations behave uniformly and can be scripted consistently";
:meth:`RunResult.report` is that uniform output format.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from .task_graph import TaskGraph


@dataclass(frozen=True)
class RunResult:
    """Outcome of executing a set of task graphs on some executor.

    Attributes
    ----------
    executor:
        Name of the runtime system / executor that produced the run.
    elapsed_seconds:
        Wall-clock (or simulated) time for the whole run.
    cores:
        Number of cores participating (workers + any reserved runtime
        cores); used for the task-granularity formula.
    total_tasks, total_dependencies:
        Graph totals, summed over all graphs in the run.
    total_flops, total_bytes:
        Useful work executed, summed over all graphs.
    validated:
        Whether input validation was enabled during the run.
    """

    executor: str
    elapsed_seconds: float
    cores: int
    total_tasks: int
    total_dependencies: int
    total_flops: int = 0
    total_bytes: int = 0
    validated: bool = True

    def __post_init__(self) -> None:
        if self.elapsed_seconds < 0:
            raise ValueError("elapsed_seconds must be >= 0")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.total_tasks < 1:
            raise ValueError("total_tasks must be >= 1")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def flops_per_second(self) -> float:
        """Achieved floating-point throughput."""
        return self.total_flops / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def bytes_per_second(self) -> float:
        """Achieved memory throughput (memory-bound kernel)."""
        return self.total_bytes / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def tasks_per_second(self) -> float:
        """Task scheduling throughput (the metric METG improves upon)."""
        return self.total_tasks / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def task_granularity_seconds(self) -> float:
        """Mean task granularity: ``wall time x cores / tasks`` (paper §4)."""
        return self.elapsed_seconds * self.cores / self.total_tasks

    def efficiency(self, peak_flops_per_second: float) -> float:
        """Fraction of peak FLOP/s achieved (compute-bound efficiency)."""
        if peak_flops_per_second <= 0:
            raise ValueError("peak must be positive")
        return self.flops_per_second / peak_flops_per_second

    def memory_efficiency(self, peak_bytes_per_second: float) -> float:
        """Fraction of peak B/s achieved (memory-bound efficiency)."""
        if peak_bytes_per_second <= 0:
            raise ValueError("peak must be positive")
        return self.bytes_per_second / peak_bytes_per_second

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> str:
        """Uniform multi-line result report (official-output style)."""
        lines = [
            f"Executor: {self.executor}",
            f"Total Tasks {self.total_tasks}",
            f"Total Dependencies {self.total_dependencies}",
            f"Elapsed Time {self.elapsed_seconds:e} seconds",
            f"FLOP/s {self.flops_per_second:e}",
            f"B/s {self.bytes_per_second:e}",
            f"Task Granularity {self.task_granularity_seconds:e} seconds",
        ]
        return "\n".join(lines)

    def with_elapsed(self, elapsed_seconds: float) -> "RunResult":
        """Copy of this result with a different elapsed time."""
        return dataclasses.replace(self, elapsed_seconds=elapsed_seconds)


def summarize_graphs(
    executor: str,
    graphs: Sequence[TaskGraph],
    elapsed_seconds: float,
    cores: int,
    *,
    validated: bool = True,
) -> RunResult:
    """Build a :class:`RunResult` from graph-level accounting.

    Work totals (tasks, dependencies, FLOPs, bytes) are properties of the
    graphs alone, so they are computed here once rather than re-measured by
    every executor.
    """
    if not graphs:
        raise ValueError("at least one task graph is required")
    return RunResult(
        executor=executor,
        elapsed_seconds=elapsed_seconds,
        cores=cores,
        total_tasks=sum(g.total_tasks() for g in graphs),
        total_dependencies=sum(g.total_dependencies() for g in graphs),
        total_flops=sum(g.total_flops() for g in graphs),
        total_bytes=sum(g.total_bytes() for g in graphs),
        validated=validated,
    )
