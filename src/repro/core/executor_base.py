"""The executor interface: what each "programming system" implements.

The key design property of Task Bench is that implementing ``m`` benchmarks
on ``n`` systems costs ``O(m + n)`` instead of ``O(m * n)`` (paper §1): every
system only implements this small interface, and every benchmark is just a
:class:`~repro.core.task_graph.TaskGraph` configuration.

An executor receives a list of task graphs (possibly heterogeneous, executed
concurrently — paper §2) and must:

1. execute every task, calling ``graph.execute_point`` exactly once per point,
2. deliver each task's output buffer to all of its reverse dependencies,
3. return a :class:`~repro.core.metrics.RunResult` with the elapsed time.

Because ``execute_point`` validates its inputs against the graph
specification, any scheduling or communication bug in an executor surfaces
as a :class:`~repro.core.validation.ValidationError`.
"""

from __future__ import annotations

import abc
import dataclasses
import time
from typing import Sequence

from . import fastpath as _fastpath
from .metrics import RunResult, summarize_graphs
from .task_graph import TaskGraph


class Executor(abc.ABC):
    """Abstract base class for Task Bench runtime implementations."""

    #: Registry name; subclasses must override.
    name: str = "abstract"

    #: Isolation level of the execution substrate: ``"serial"`` (inline, no
    #: concurrency), ``"threads"`` (one address space), ``"processes"``
    #: (fork pool on one host) or ``"cluster"`` (independent rank processes
    #: over sockets).  Shown by ``task-bench --list-runtimes`` so users can
    #: tell otherwise same-shaped backends apart.
    isolation: str = "threads"

    @property
    @abc.abstractmethod
    def cores(self) -> int:
        """Number of cores this executor occupies (workers + reserved)."""

    def heal(self) -> int:
        """Repair any dead substrate in place; returns how many workers
        were respawned or condemned.

        Persistent-substrate executors (fork pools, rank meshes) can hold
        dead workers while idle — e.g. a cached executor in the serve
        warm pool whose worker was OOM-killed between requests.  ``heal``
        makes the executor safe to run again without a cold rebuild:
        process pools respawn dead workers in place, cluster executors
        drop a broken mesh so the next run relaunches it.  Executors with
        no out-of-process state are always healthy (the default no-op).
        """
        return 0

    @abc.abstractmethod
    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        """Execute all graphs to completion.  Implementations must call
        ``graph.execute_point`` for every point of every graph and route
        outputs to dependents; they should not time themselves."""

    def run(self, graphs: Sequence[TaskGraph], *, validate: bool = True) -> RunResult:
        """Execute ``graphs`` and return a timed :class:`RunResult`.

        Wall-clock timing surrounds only :meth:`execute_graphs`; graph
        accounting (task/dependency/FLOP totals) is computed outside the
        timed region, mirroring the official harness which excludes setup.
        """
        graphs = list(graphs)
        if not graphs:
            raise ValueError("at least one task graph is required")
        for idx, g in enumerate(graphs):
            if g.graph_index != idx:
                raise ValueError(
                    f"graph at position {idx} has graph_index={g.graph_index}; "
                    "graph_index must equal the position in the list so task "
                    "outputs are globally unique"
                )
        hits0, compiles0 = _fastpath.counters()
        start = time.perf_counter()
        self.execute_graphs(graphs, validate=validate)
        elapsed = time.perf_counter() - start
        hits1, compiles1 = _fastpath.counters()
        # Executors that instrument their data plane (repro.core.bufpool)
        # or supervise worker faults leave stats records on the instance;
        # surface them in the result.
        stats = getattr(self, "_data_plane", None)
        faults = getattr(self, "_fault_stats", None)
        if stats is not None and (hits1 != hits0 or compiles1 != compiles0):
            # Fold this run's fast-path activity (parent-process view) into
            # the data-plane record; executors without an instrumented data
            # plane keep reporting "not instrumented".
            stats = dataclasses.replace(
                stats,
                fastpath_hits=stats.fastpath_hits + (hits1 - hits0),
                fastpath_compiles=stats.fastpath_compiles + (compiles1 - compiles0),
            )
        return summarize_graphs(
            self.name, graphs, elapsed, self.cores, validated=validate,
            data_plane=stats, faults=faults,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} cores={self.cores}>"
