"""Validated environment-variable parsing shared by the harness layers.

Several layers read tuning knobs from the environment — the fault layer
(``TASKBENCH_TIMEOUT``, ``TASKBENCH_MAX_RETRIES``), the METG calibration
pin (``TASKBENCH_PEAK_FLOPS``), and the benchmark service
(``TASKBENCH_SERVE_*``).  Before this module each site parsed its own
variable and a typo surfaced as a bare ``ValueError`` traceback from deep
inside the stack.  Every environment knob now goes through one validator
family that raises :class:`UsageError` with the variable's name, the
offending value and the accepted range — the CLI maps it to exit code 2
like any other usage mistake.

:class:`UsageError` subclasses :class:`ValueError`, so call sites that
already guard with ``except ValueError`` keep working unchanged.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["UsageError", "env_float", "env_int", "env_str"]


class UsageError(ValueError):
    """A configuration value the user must fix (clear message, exit 2)."""


def env_str(name: str, default: Optional[str] = None) -> Optional[str]:
    """The stripped value of ``name``; ``default`` when unset or blank."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    raw = raw.strip()
    return raw if raw else default


def env_int(
    name: str,
    default: Optional[int] = None,
    *,
    minimum: Optional[int] = None,
) -> Optional[int]:
    """The integer value of ``name``; ``default`` when unset or blank.

    Raises :class:`UsageError` when the value does not parse as an integer
    or falls below ``minimum``.
    """
    raw = env_str(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise UsageError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise UsageError(f"{name} must be >= {minimum}, got {raw!r}")
    return value


def env_float(
    name: str,
    default: Optional[float] = None,
    *,
    minimum: Optional[float] = None,
    exclusive_minimum: Optional[float] = None,
) -> Optional[float]:
    """The float value of ``name``; ``default`` when unset or blank.

    Raises :class:`UsageError` when the value does not parse as a number,
    falls below ``minimum``, or does not exceed ``exclusive_minimum``.
    """
    raw = env_str(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise UsageError(f"{name} must be a number, got {raw!r}") from None
    if value != value:  # NaN never compares, so range checks cannot catch it
        raise UsageError(f"{name} must be a number, got {raw!r}")
    if exclusive_minimum is not None and value <= exclusive_minimum:
        bound = f"> {exclusive_minimum:g}"
        raise UsageError(f"{name} must be {bound}, got {raw!r}")
    if minimum is not None and value < minimum:
        raise UsageError(f"{name} must be >= {minimum:g}, got {raw!r}")
    return value
