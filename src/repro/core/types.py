"""Enumerations shared across the Task Bench core.

These mirror the dependence and kernel types of the original Task Bench core
library (Slaughter et al., SC 2020, Table 1).  String values are the names
accepted on the command line (``task-bench -type stencil_1d`` etc.), matching
the official CLI vocabulary.
"""

from __future__ import annotations

import enum


class DependenceType(enum.Enum):
    """Dependence relation connecting consecutive timesteps of a task graph.

    Each value corresponds to one of the patterns of Figure 1 / Table 2 of the
    paper, plus the additional patterns supported by the official core
    library (``nearest``, ``spread``, ``random_nearest``, ...).
    """

    #: No dependencies at all (embarrassingly parallel).
    TRIVIAL = "trivial"
    #: Each task depends only on its own column (serial chains, no comm).
    NO_COMM = "no_comm"
    #: 3-point stencil: ``{i-1, i, i+1}`` clipped at the edges.
    STENCIL_1D = "stencil_1d"
    #: 3-point stencil with periodic (wrap-around) boundaries.
    STENCIL_1D_PERIODIC = "stencil_1d_periodic"
    #: Sweep / wavefront (discrete-ordinates style): ``{i-1, i}``.
    DOM = "dom"
    #: Binary fan-out tree; tasks materialize as the tree expands.
    TREE = "tree"
    #: FFT butterfly: ``{i, i - 2^s, i + 2^s}`` with stage-dependent stride.
    FFT = "fft"
    #: Every task depends on every task of the previous timestep.
    ALL_TO_ALL = "all_to_all"
    #: ``radix`` nearest neighbours centred on the consuming task.
    NEAREST = "nearest"
    #: ``radix`` dependencies spread maximally across the width.
    SPREAD = "spread"
    #: Random subset of a nearest-neighbour window (deterministic per seed).
    RANDOM_NEAREST = "random_nearest"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def parse(cls, name: str) -> "DependenceType":
        """Parse a command-line dependence name (case-insensitive).

        ``stencil`` is accepted as shorthand for ``stencil_1d`` (the
        official harness's pattern name).
        """
        cleaned = name.strip().lower()
        if cleaned == "stencil":
            cleaned = "stencil_1d"
        try:
            return cls(cleaned)
        except ValueError:
            valid = ", ".join(d.value for d in cls)
            raise ValueError(
                f"unknown dependence type {name!r}; expected one of: {valid}"
            ) from None


class KernelType(enum.Enum):
    """Kind of work executed by each task (paper §2, Table 1)."""

    #: No work at all: measures pure runtime overhead (METG(0%) regime).
    EMPTY = "empty"
    #: Spin on the clock for a configurable number of microseconds.
    BUSY_WAIT = "busy_wait"
    #: Tight FMA-style loop: ``A = A * A + A`` over a 64-wide vector.
    COMPUTE_BOUND = "compute_bound"
    #: Variant of the compute kernel with a second accumulator array.
    COMPUTE_BOUND2 = "compute_bound2"
    #: Sequential reads/writes over a scratch buffer of constant working set.
    MEMORY_BOUND = "memory_bound"
    #: Compute-bound kernel whose duration is scaled by a deterministic
    #: pseudo-random multiplier in ``[0, 1)`` (paper §5.7).
    LOAD_IMBALANCE = "load_imbalance"
    #: Sequential file writes + read-back (official core's IO-bound kernel).
    IO_BOUND = "io_bound"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def parse(cls, name: str) -> "KernelType":
        """Parse a command-line kernel name (case-insensitive)."""
        try:
            return cls(name.strip().lower())
        except ValueError:
            valid = ", ".join(k.value for k in cls)
            raise ValueError(
                f"unknown kernel type {name!r}; expected one of: {valid}"
            ) from None
