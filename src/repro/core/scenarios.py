"""Named application scenarios (paper §1-§2).

Task Bench's introduction motivates the parameter space with the key
communication/computation characteristics of real applications: "trivial
parallelism, halo exchanges (such as seen in structured and unstructured
mesh codes), sweeps (such as used in the discrete ordinates method of
radiation simulation), FFTs, trees (for divide and conquer algorithms), and
so on".  This module provides those scenarios as ready-made graph
factories so a user can benchmark a runtime against an application *shape*
by name.

Each scenario documents which application family it distills and exposes
the same dials as the paper (problem size via ``iterations``, communication
volume via ``output_bytes``, graph dimensions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .kernels import Kernel
from .task_graph import TaskGraph
from .types import DependenceType, KernelType


@dataclass(frozen=True)
class Scenario:
    """A named application shape."""

    name: str
    description: str
    build: Callable[..., List[TaskGraph]]

    def __call__(self, **kw) -> List[TaskGraph]:
        return self.build(**kw)


def _compute_kernel(iterations: int) -> Kernel:
    return Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=iterations)


def halo_exchange(
    width: int = 16,
    steps: int = 50,
    iterations: int = 1024,
    output_bytes: int = 4096,
    periodic: bool = False,
) -> List[TaskGraph]:
    """Structured-mesh halo exchange: the 1-D stencil.

    The archetypal HPC communication pattern — each subdomain trades
    boundary layers with its neighbours every timestep (paper Figure 1b).
    ``periodic`` selects wrap-around boundaries (a ring of subdomains).
    """
    return [
        TaskGraph(
            timesteps=steps,
            max_width=width,
            dependence=(
                DependenceType.STENCIL_1D_PERIODIC
                if periodic
                else DependenceType.STENCIL_1D
            ),
            kernel=_compute_kernel(iterations),
            output_bytes_per_task=output_bytes,
        )
    ]


def radiation_sweep(
    width: int = 16,
    steps: int = 50,
    iterations: int = 1024,
    output_bytes: int = 1024,
    directions: int = 1,
) -> List[TaskGraph]:
    """Discrete-ordinates radiation transport: wavefront sweeps.

    Each task needs its own cell from the previous step plus the upwind
    neighbour (paper Figure 1d).  ``directions`` runs several independent
    sweep graphs concurrently, as S_N codes sweep multiple angles — task
    parallelism that asynchronous runtimes exploit.
    """
    return [
        TaskGraph(
            timesteps=steps,
            max_width=width,
            dependence=DependenceType.DOM,
            kernel=_compute_kernel(iterations),
            output_bytes_per_task=output_bytes,
            graph_index=k,
        )
        for k in range(directions)
    ]


def fft(
    width: int = 16,
    steps: int = 0,
    iterations: int = 1024,
    output_bytes: int = 8192,
) -> List[TaskGraph]:
    """Distributed FFT butterfly (paper Figure 1c).

    ``steps=0`` sizes the graph to exactly the ``log2(width)`` butterfly
    stages (plus the initial row); larger values repeat the exchange
    pattern, as iterative spectral solvers do.
    """
    if width < 2:
        raise ValueError("fft scenario needs width >= 2")
    if steps <= 0:
        steps = max(2, width.bit_length())
    return [
        TaskGraph(
            timesteps=steps,
            max_width=width,
            dependence=DependenceType.FFT,
            kernel=_compute_kernel(iterations),
            output_bytes_per_task=output_bytes,
        )
    ]


def divide_and_conquer(
    width: int = 16,
    steps: int = 0,
    iterations: int = 1024,
    output_bytes: int = 1024,
) -> List[TaskGraph]:
    """Divide-and-conquer tree (paper Figure 1e): work fans out from a
    root, doubling each level until ``width`` leaves compute in parallel.

    ``steps=0`` sizes the graph to the fan-out depth plus as many steady
    leaf timesteps again.
    """
    if steps <= 0:
        depth = max(1, (width - 1).bit_length())
        steps = 2 * depth + 1
    return [
        TaskGraph(
            timesteps=steps,
            max_width=width,
            dependence=DependenceType.TREE,
            kernel=_compute_kernel(iterations),
            output_bytes_per_task=output_bytes,
        )
    ]


def embarrassingly_parallel(
    width: int = 64,
    steps: int = 20,
    iterations: int = 65536,
    output_bytes: int = 0,
) -> List[TaskGraph]:
    """Trivially parallel batch workload (paper Figure 1a): map-only data
    analytics, parameter sweeps, Monte Carlo.  No communication at all —
    the pattern where even very-high-overhead systems do fine (§5.5)."""
    return [
        TaskGraph(
            timesteps=steps,
            max_width=width,
            dependence=DependenceType.TRIVIAL,
            kernel=_compute_kernel(iterations),
            output_bytes_per_task=output_bytes,
        )
    ]


def unstructured_mesh(
    width: int = 32,
    steps: int = 50,
    iterations: int = 1024,
    output_bytes: int = 2048,
    neighbors: int = 5,
    seed: int = 12345,
) -> List[TaskGraph]:
    """Unstructured-mesh halo exchange: each partition talks to an
    irregular set of nearby partitions.  Modeled with the random-nearest
    pattern over a ``neighbors``-wide window (deterministic per seed), the
    irregular analogue of the stencil."""
    return [
        TaskGraph(
            timesteps=steps,
            max_width=width,
            dependence=DependenceType.RANDOM_NEAREST,
            radix=neighbors,
            fraction_connected=0.6,
            period=1,  # a fixed mesh: the neighbour sets do not change
            kernel=_compute_kernel(iterations),
            output_bytes_per_task=output_bytes,
            seed=seed,
        )
    ]


def multiphysics(
    width: int = 16,
    steps: int = 40,
    iterations: int = 2048,
    output_bytes: int = 4096,
) -> List[TaskGraph]:
    """Coupled multi-physics: heterogeneous solvers advancing concurrently
    (paper §2: "multiple (potentially heterogeneous) task graphs can be
    executed concurrently").  A stencil fluid solve, a sweep transport
    solve, and an FFT-based spectral solve share the machine."""
    k = _compute_kernel(iterations)
    return [
        TaskGraph(timesteps=steps, max_width=width,
                  dependence=DependenceType.STENCIL_1D, kernel=k,
                  output_bytes_per_task=output_bytes, graph_index=0),
        TaskGraph(timesteps=steps, max_width=width,
                  dependence=DependenceType.DOM, kernel=k,
                  output_bytes_per_task=output_bytes, graph_index=1),
        TaskGraph(timesteps=steps, max_width=width,
                  dependence=DependenceType.FFT, kernel=k,
                  output_bytes_per_task=output_bytes, graph_index=2),
    ]


def amr_load_imbalance(
    width: int = 16,
    steps: int = 40,
    iterations: int = 8192,
    output_bytes: int = 2048,
    imbalance: float = 1.0,
    persistent: bool = True,
    patches: int = 4,
) -> List[TaskGraph]:
    """Adaptive mesh refinement: refined regions make some partitions
    persistently more expensive.  The nearest pattern under persistent
    load imbalance — the regime needing migration/stealing (paper §5.7
    future work; see EXPERIMENTS.md).

    ``patches`` over-decomposes the domain into several concurrent graphs
    (AMR codes keep more patches than cores precisely so the balancer has
    work to move); each patch level gets a distinct seed so different
    columns are refined in different patches.
    """
    if patches < 1:
        raise ValueError("patches must be >= 1")
    return [
        TaskGraph(
            timesteps=steps,
            max_width=width,
            dependence=DependenceType.NEAREST,
            radix=5,
            kernel=Kernel(
                kernel_type=KernelType.LOAD_IMBALANCE,
                iterations=iterations,
                imbalance=imbalance,
                persistent=persistent,
            ),
            output_bytes_per_task=output_bytes,
            graph_index=k,
            seed=12345 + 1009 * k,
        )
        for k in range(patches)
    ]


SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario("halo_exchange",
                 "structured-mesh nearest-neighbour exchange (stencil)",
                 halo_exchange),
        Scenario("radiation_sweep",
                 "discrete-ordinates wavefront sweeps (dom)",
                 radiation_sweep),
        Scenario("fft", "distributed FFT butterfly", fft),
        Scenario("divide_and_conquer", "fan-out tree", divide_and_conquer),
        Scenario("embarrassingly_parallel",
                 "map-only batch / Monte Carlo (trivial)",
                 embarrassingly_parallel),
        Scenario("unstructured_mesh",
                 "irregular-neighbour halo exchange (random nearest)",
                 unstructured_mesh),
        Scenario("multiphysics",
                 "heterogeneous concurrent solvers (3 graphs)",
                 multiphysics),
        Scenario("amr_load_imbalance",
                 "persistently imbalanced partitions (AMR-like)",
                 amr_load_imbalance),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        ) from None
