"""Structured diagnostics for the static-analysis passes (``repro.check``).

Every check pass — graph lint, happens-before audit, executor-contract lint —
reports its findings as :class:`Diagnostic` records rather than raising or
printing, so callers (the ``task-bench check`` CLI, tests, CI) can filter by
severity, count findings, and render them uniformly.

Severity semantics:

* ``ERROR``: the configuration or executor violates a contract; running it
  would produce wrong results, deadlock, or crash.
* ``WARNING``: suspicious but potentially intentional (e.g. estimated payload
  memory exceeding the machine spec); findings at this level still fail
  ``task-bench check``.
* ``INFO``: advisory metrics (critical-path bound, event counts) that never
  affect the exit code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence


class Severity(enum.IntEnum):
    """Ordered severity of a diagnostic (higher is worse)."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a check pass.

    Attributes
    ----------
    severity:
        How bad the finding is (see module docstring).
    code:
        Stable machine-readable identifier, kebab-case, namespaced by pass
        (e.g. ``graph-cycle``, ``hb-early-publish``, ``api-missing-member``).
    message:
        Human-readable statement of what is wrong.
    location:
        Where: a task point (``graph 0 (t=3, i=2)``), a file/line
        (``runtimes/threads.py:42``), or a pass name.
    hint:
        Actionable fix suggestion, empty when none applies.
    """

    severity: Severity
    code: str
    message: str
    location: str = ""
    hint: str = ""

    def render(self) -> str:
        """One-line ``severity code location: message (hint)`` rendering."""
        loc = f" {self.location}" if self.location else ""
        hint = f"  [fix: {self.hint}]" if self.hint else ""
        return f"{self.severity}: [{self.code}]{loc}: {self.message}{hint}"


def error(code: str, message: str, location: str = "", hint: str = "") -> Diagnostic:
    """Shorthand for an ``ERROR`` diagnostic."""
    return Diagnostic(Severity.ERROR, code, message, location, hint)


def warning(code: str, message: str, location: str = "", hint: str = "") -> Diagnostic:
    """Shorthand for a ``WARNING`` diagnostic."""
    return Diagnostic(Severity.WARNING, code, message, location, hint)


def info(code: str, message: str, location: str = "", hint: str = "") -> Diagnostic:
    """Shorthand for an ``INFO`` diagnostic."""
    return Diagnostic(Severity.INFO, code, message, location, hint)


def findings(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """The subset of ``diagnostics`` that should fail a check run
    (``WARNING`` and above; ``INFO`` records are advisory)."""
    return [d for d in diagnostics if d.severity >= Severity.WARNING]


def max_severity(diagnostics: Sequence[Diagnostic]) -> Severity:
    """Worst severity present (``INFO`` when the list is empty)."""
    return max((d.severity for d in diagnostics), default=Severity.INFO)


def render_report(diagnostics: Sequence[Diagnostic]) -> str:
    """Multi-line report: one line per diagnostic, errors first."""
    ordered = sorted(diagnostics, key=lambda d: (-d.severity, d.code, d.location))
    return "\n".join(d.render() for d in ordered)
