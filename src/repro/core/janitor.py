"""Host-hygiene sweeper: one entry point for every orphan-recovery pass.

The substrates that claim host-global resources each grew their own
recovery sweeper — :func:`repro.core.bufpool.sweep_orphaned_segments` for
``/dev/shm`` slab segments stranded by a fault, and
:func:`repro.cluster.launcher.sweep_orphaned_socket_dirs` for
``taskbench-cluster-*`` socket directories left by a killed launcher.
This module unifies them (plus a host-level stale-segment scan the
per-process sweeper cannot perform) behind :func:`sweep_host`, which the
benchmark daemon runs on start and ``task-bench clean`` exposes from the
command line.

Safety rules, in order of aggressiveness:

* *own orphaned segments* — segments this process created whose owning
  pool is gone: always safe, swept unconditionally;
* *stale host segments* — ``psm_*`` files in ``/dev/shm`` older than
  ``max_age_seconds``: another live benchmark's segments are younger than
  that by construction (slab pools are per-run state), so age is the
  ownership proxy;
* *stale socket dirs* — the cluster sweeper's own one-hour age rule.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List

#: Prefix of the slab-pool shared-memory segments (see repro.core.bufpool).
SEGMENT_PREFIX = "psm_"

#: Where POSIX shared memory is mounted on Linux.
SHM_DIR = "/dev/shm"

#: Age (seconds) past which a host segment with no live owner in *this*
#: process is considered abandoned.  Mirrors the socket-dir sweeper's rule.
DEFAULT_MAX_AGE_SECONDS = 3600.0


@dataclass(frozen=True)
class JanitorReport:
    """What one :func:`sweep_host` pass removed."""

    segments: List[str] = field(default_factory=list)
    stale_segments: List[str] = field(default_factory=list)
    socket_dirs: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (
            len(self.segments)
            + len(self.stale_segments)
            + len(self.socket_dirs)
        )

    def report_lines(self) -> List[str]:
        lines = [
            f"Swept Segments {len(self.segments)} orphaned, "
            f"{len(self.stale_segments)} stale",
            f"Swept Socket Dirs {len(self.socket_dirs)}",
        ]
        for name in self.segments + self.stale_segments:
            lines.append(f"  segment {name}")
        for path in self.socket_dirs:
            lines.append(f"  socket dir {path}")
        return lines


def _sweep_stale_segments(max_age_seconds: float) -> List[str]:
    """Unlink ``psm_*`` segments in ``/dev/shm`` older than the age bound.

    The bufpool sweeper only touches segments created by the calling
    process (it cannot tell a foreign live pool from a foreign orphan);
    a long-lived janitor additionally needs to reclaim segments whose
    creator died without cleanup.  Age is the safety margin: live slab
    pools belong to runs measured in seconds-to-minutes.
    """
    removed: List[str] = []
    if max_age_seconds <= 0 or not os.path.isdir(SHM_DIR):
        return removed
    now = time.time()
    try:
        names = os.listdir(SHM_DIR)
    except OSError:  # pragma: no cover - /dev/shm unreadable
        return removed
    for name in sorted(names):
        if not name.startswith(SEGMENT_PREFIX):
            continue
        path = os.path.join(SHM_DIR, name)
        try:
            if now - os.path.getmtime(path) < max_age_seconds:
                continue
            os.unlink(path)
        except OSError:  # pragma: no cover - raced another sweeper
            continue
        removed.append(name)
    return removed


def sweep_host(
    *, max_age_seconds: float = DEFAULT_MAX_AGE_SECONDS
) -> JanitorReport:
    """Run every orphan sweeper once and report what was removed.

    ``max_age_seconds`` bounds the host-level stale-segment scan; pass
    ``0`` to disable it (the in-process and socket-dir sweepers always
    run — they have their own safety rules).
    """
    from .bufpool import sweep_orphaned_segments

    segments = sweep_orphaned_segments()
    stale = _sweep_stale_segments(max_age_seconds)
    # Lazy import: core must not depend on the cluster subsystem at import
    # time (cluster itself builds on core).
    from ..cluster.launcher import sweep_orphaned_socket_dirs

    socket_dirs = sweep_orphaned_socket_dirs()
    return JanitorReport(
        segments=segments, stale_segments=stale, socket_dirs=socket_dirs
    )
