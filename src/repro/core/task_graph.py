"""The task graph abstraction (paper §2).

A :class:`TaskGraph` is a 2-D iteration space (``timesteps`` × ``max_width``)
combined with a dependence relation, a kernel, and per-dependency
communication payload sizes.  The graph is *unmaterialized*: dependencies are
computed on demand from the dependence relation, which is what lets every
Task Bench implementation stay small (paper §2) and lets the core library
validate every execution exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import TYPE_CHECKING, Iterator, List, Sequence, Tuple

import numpy as np

from . import bufpool as _bufpool
from . import fastpath as _fastpath
from . import validation as _validation
from .dependence import DependenceSpec, Interval, count_points

if TYPE_CHECKING:  # pragma: no cover
    from . import bufpool
from .kernels import Kernel
from .types import DependenceType, KernelType

DEFAULT_SEED = 12345


@dataclass(frozen=True)
class TaskGraph:
    """A parameterized task graph (Table 1 of the paper).

    Attributes
    ----------
    timesteps:
        Height of the graph: number of timesteps (vertical axis).
    max_width:
        Width of the graph: degree of parallelism (horizontal axis).
    dependence:
        Dependence relation between consecutive timesteps.
    radix:
        Dependencies per task for the parameterized patterns.
    period:
        Repetition period of the random pattern (``-1``: never repeats).
    fraction_connected:
        Edge probability for the random pattern.
    kernel:
        Work performed by each task.
    output_bytes_per_task:
        Bytes produced by each task and communicated along every dependence
        edge (degree of communication).
    scratch_bytes_per_task:
        Total working-set size of the memory-bound kernel, per column.
    graph_index:
        Index of this graph when several graphs execute concurrently.
    seed:
        Seed for deterministic pseudo-randomness (random edges, imbalance).
    """

    timesteps: int
    max_width: int
    dependence: DependenceType = DependenceType.TRIVIAL
    radix: int = 3
    period: int = -1
    fraction_connected: float = 0.25
    kernel: Kernel = field(default_factory=Kernel)
    output_bytes_per_task: int = 16
    scratch_bytes_per_task: int = 0
    graph_index: int = 0
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.timesteps < 1:
            raise ValueError(f"timesteps must be >= 1, got {self.timesteps}")
        if self.max_width < 1:
            raise ValueError(f"max_width must be >= 1, got {self.max_width}")
        if self.output_bytes_per_task < 0:
            raise ValueError(
                f"output_bytes_per_task must be >= 0, got {self.output_bytes_per_task}"
            )
        if self.scratch_bytes_per_task < 0:
            raise ValueError(
                f"scratch_bytes_per_task must be >= 0, got {self.scratch_bytes_per_task}"
            )
        if (
            self.kernel.kernel_type is KernelType.MEMORY_BOUND
            and self.scratch_bytes_per_task < 2
        ):
            raise ValueError(
                "memory_bound kernel requires scratch_bytes_per_task >= 2"
            )

    # ------------------------------------------------------------------
    # Shape / dependence queries (delegated to the dependence relation)
    # ------------------------------------------------------------------
    @cached_property
    def spec(self) -> DependenceSpec:
        """The dependence relation object for this graph."""
        return DependenceSpec(
            self.dependence,
            self.max_width,
            self.timesteps,
            radix=self.radix,
            period=self.period,
            fraction=self.fraction_connected,
            seed=self.seed,
        )

    @cached_property
    def _table(self) -> "_fastpath.DependenceTable":
        """Compiled dependence table (shared process-wide per parameter set).

        Built unconditionally but consulted only while
        :func:`repro.core.fastpath.enabled` is true, so flipping the
        ``TASKBENCH_FASTPATH`` switch mid-process (tests, A/B benchmarks)
        takes effect immediately.
        """
        return _fastpath.table_for(self.spec)

    def offset_at_timestep(self, t: int) -> int:
        """First active column at timestep ``t``."""
        return self.spec.offset_at_timestep(t)

    def width_at_timestep(self, t: int) -> int:
        """Number of active columns at timestep ``t``."""
        return self.spec.width_at_timestep(t)

    def contains_point(self, t: int, i: int) -> bool:
        """Whether task ``(t, i)`` exists."""
        return self.spec.contains_point(t, i)

    def dependencies(self, t: int, i: int) -> List[Interval]:
        """Intervals of columns at ``t - 1`` that task ``(t, i)`` reads."""
        if _fastpath._ENABLED:
            return self._table.dependencies(t, i)
        return self.spec.dependencies(t, i)

    def reverse_dependencies(self, t: int, i: int) -> List[Interval]:
        """Intervals of columns at ``t + 1`` that read task ``(t, i)``."""
        if _fastpath._ENABLED:
            return self._table.reverse_dependencies(t, i)
        return self.spec.reverse_dependencies(t, i)

    def dependency_points(self, t: int, i: int) -> Iterator[int]:
        """Columns at ``t - 1`` read by ``(t, i)``, ascending.  This is the
        canonical input order expected by :meth:`execute_point`."""
        if _fastpath._ENABLED:
            return iter(self._table.dependency_columns(t, i))
        return self.spec.dependency_points(t, i)

    def reverse_dependency_points(self, t: int, i: int) -> Iterator[int]:
        """Columns at ``t + 1`` that read ``(t, i)``, ascending."""
        if _fastpath._ENABLED:
            return iter(self._table.reverse_dependency_columns(t, i))
        return self.spec.reverse_dependency_points(t, i)

    def dependency_columns(self, t: int, i: int) -> Tuple[int, ...]:
        """Columns at ``t - 1`` read by ``(t, i)`` as an ascending tuple.

        On the fast path the tuple is compiled once per (dependence-set id,
        column) and shared by every timestep in the equivalence class, so
        hot gather/validation loops avoid re-walking intervals per task.
        """
        if _fastpath._ENABLED:
            return self._table.dependency_columns(t, i)
        return tuple(self.spec.dependency_points(t, i))

    def reverse_dependency_columns(self, t: int, i: int) -> Tuple[int, ...]:
        """Columns at ``t + 1`` that read ``(t, i)`` as an ascending tuple."""
        if _fastpath._ENABLED:
            return self._table.reverse_dependency_columns(t, i)
        return tuple(self.spec.reverse_dependency_points(t, i))

    def num_dependencies(self, t: int, i: int) -> int:
        """Number of inputs of task ``(t, i)``."""
        if _fastpath._ENABLED:
            return self._table.num_dependencies(t, i)
        return self.spec.num_dependencies(t, i)

    def dependency_count_row(self, t: int) -> Tuple[int, Sequence[int]]:
        """``(offset, per-column input counts)`` for all tasks at ``t``.

        The bulk twin of :meth:`num_dependencies` used by scheduler
        initialization: on the fast path the whole row is served from one
        compiled structure; off it, each column is computed from the spec
        exactly as the per-task query would.  The returned sequence may be
        shared — callers must not mutate it.
        """
        if _fastpath._ENABLED:
            return self._table.row_task_counts(t)
        off = self.spec.offset_at_timestep(t)
        return off, [
            self.spec.num_dependencies(t, i)
            for i in range(off, off + self.spec.width_at_timestep(t))
        ]

    def consumer_count(self, t: int, i: int) -> int:
        """Number of tasks at ``t + 1`` that read the output of ``(t, i)``."""
        if _fastpath._ENABLED:
            return self._table.consumer_count(t, i)
        return count_points(self.spec.reverse_dependencies(t, i))

    def max_dependencies(self) -> int:
        """Upper bound on inputs of any task (receive-buffer sizing)."""
        return self.spec.max_dependencies()

    def points(self) -> Iterator[Tuple[int, int]]:
        """Iterate all ``(t, i)`` points in timestep-major order."""
        for t in range(self.timesteps):
            off = self.offset_at_timestep(t)
            for i in range(off, off + self.width_at_timestep(t)):
                yield (t, i)

    # ------------------------------------------------------------------
    # Whole-graph accounting
    # ------------------------------------------------------------------
    def total_tasks(self) -> int:
        """Number of tasks in the graph."""
        return sum(self.width_at_timestep(t) for t in range(self.timesteps))

    def total_dependencies(self) -> int:
        """Number of dependence edges in the graph."""
        return sum(self.num_dependencies(t, i) for t, i in self.points())

    def total_flops(self) -> int:
        """Useful FLOPs executed by the whole graph (imbalance-aware)."""
        k = self.kernel
        if k.kernel_type in (KernelType.COMPUTE_BOUND, KernelType.COMPUTE_BOUND2):
            return self.total_tasks() * k.flops_per_task()
        if k.kernel_type is KernelType.LOAD_IMBALANCE:
            return sum(k.flops_per_task(t, i, self.seed) for t, i in self.points())
        return 0

    def total_bytes(self) -> int:
        """Bytes moved by the memory kernel over the whole graph."""
        return self.total_tasks() * self.kernel.bytes_per_task()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def prepare_scratch(self) -> np.ndarray:
        """Allocate and initialize one column's scratch buffer."""
        return np.zeros(self.scratch_bytes_per_task, dtype=np.uint8)

    def execute_point(
        self,
        t: int,
        i: int,
        inputs: Sequence["bufpool.Payload"],
        scratch: np.ndarray | None = None,
        *,
        validate: bool = True,
        out: "bufpool.Payload | None" = None,
    ) -> "bufpool.Payload":
        """Execute task ``(t, i)``: validate inputs, run the kernel, and
        return the task's output buffer.

        ``inputs`` must contain the outputs of the task's dependencies in
        canonical (ascending-column) order, i.e. the order produced by
        :meth:`dependency_points`.  Each input may be a raw ``np.ndarray``
        or a :class:`~repro.core.bufpool.PayloadRef` handle into a buffer
        pool; handles are resolved (and their generation tags verified)
        before validation, so pooled executors ship only handles between
        address spaces.  Every Task Bench runtime shim calls this single
        entry point, which is what makes implementations comparable (paper
        §2: "the core library ... ensures the kernels are identical in all
        systems").

        When ``out`` is given (an array or pool handle of exactly
        ``output_bytes_per_task`` bytes), the output pattern is written into
        it in place and ``out`` itself is returned — the zero-copy output
        path.  Otherwise a fresh array is returned as before.
        """
        as_array = _bufpool.as_array
        resolved = [x if type(x) is np.ndarray else as_array(x)
                    for x in inputs]
        if validate:
            _validation.validate_inputs(self, t, i, resolved)
        kernel = self.kernel
        if kernel.kernel_type is not KernelType.EMPTY:
            kernel.execute(t, i, scratch=scratch, seed=self.seed)
        if out is None:
            return _validation.task_output(self, t, i)
        _validation.write_task_output(
            self, t, i, out if type(out) is np.ndarray else as_array(out)
        )
        return out

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def with_(self, **changes) -> "TaskGraph":
        """Return a copy of this graph with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary of the graph configuration."""
        k = self.kernel
        return (
            f"graph {self.graph_index}: {self.timesteps}x{self.max_width} "
            f"{self.dependence.value} (radix={self.radix}) "
            f"kernel={k.kernel_type.value} iter={k.iterations} "
            f"output={self.output_bytes_per_task}B scratch={self.scratch_bytes_per_task}B"
        )
