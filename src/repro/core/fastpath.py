"""Precompiled dependence tables: the fast path of the core library.

Python interval math is the hottest non-kernel code in the harness: every
``run_point`` call asks the :class:`~repro.core.dependence.DependenceSpec`
for its forward dependencies (gather + validation), every
``OutputStore.put`` asks for its reverse dependencies (consumer counting),
and schedulers ask again when wiring completion notifications.  The paper's
C++ core library pays none of this because dependence relations are
*periodic*: ``dependence_set_at_timestep(t)`` assigns every timestep an
equivalence-class id, and two timesteps with the same id have identical
dependence intervals for every column and the same active window (see
``DependenceSpec.max_dependence_sets``).  There are at most
``max_dependence_sets()`` distinct structures — one for most patterns, a
handful for FFT/tree/spread — regardless of graph height.

:class:`DependenceTable` compiles each distinct structure **once**, on first
touch, directly from the spec at the first timestep that exhibits it — so
agreement with ``dependencies()``/``reverse_dependencies()`` is bit-exact by
construction — and stores it in CSR form as NumPy arrays:

``starts[k] : starts[k+1]``
    slice of ``los``/``his`` holding the closed intervals of local column
    ``k`` (``k = i - offset``),
``counts[k]``
    total number of points covered (the dependency count on the forward
    table, the consumer count on the reverse table).

Subsequent queries for any ``(t, i)`` are O(1) dictionary + array lookups;
flattened column tuples are materialized lazily per (set id, column) and
shared by every timestep in the equivalence class.

The fast path is enabled by default and controlled by the
``TASKBENCH_FASTPATH`` environment variable (``0`` disables it).  When
disabled, :meth:`TaskGraph.dependencies` and friends fall back to the
original per-call interval math — the slow path stays fully functional (and
CI runs the conformance suite against it).  Forward/reverse queries on the
*forward* table are only consulted for ``1 <= t``; the reverse table for
``t < height - 1``; boundary timesteps keep their trivial answers inline.

Module-level ``counters()`` expose how many lookups were served from
compiled structures (*hits*) and how many structures were compiled
(*compiles*); executors fold the per-run delta into
:class:`~repro.core.metrics.DataPlaneStats` under ``--report``.  Counter
increments are plain int updates (no lock): they are statistics, and the
occasional lost increment under free-running threads is acceptable.
"""

from __future__ import annotations

import threading
from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from .dependence import DependenceSpec, Interval
from .envvars import env_int

__all__ = [
    "DependenceTable",
    "table_for",
    "enabled",
    "set_enabled",
    "reload_from_env",
    "counters",
    "reset_counters",
]

#: Cap on distinct dependence-set structures cached per table per direction.
#: ``random_nearest`` with ``period=-1`` never repeats, so its set count
#: equals the graph height; beyond the cap the oldest structure is evicted
#: (plain FIFO) so unbounded graphs cannot exhaust memory.
_MAX_SETS = 1024

#: Process-wide fast-path switch, read once at import.  ``set_enabled`` /
#: ``reload_from_env`` exist for tests and A/B benchmarks; forked workers
#: inherit the flag (and the environment variable) from their parent.
_ENABLED: bool = (env_int("TASKBENCH_FASTPATH", 1) or 0) != 0

_hits: int = 0
_compiles: int = 0


def enabled() -> bool:
    """Whether the fast path is active for this process."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Set the fast-path switch; returns the previous value."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(flag)
    return prev


def reload_from_env() -> bool:
    """Re-read ``TASKBENCH_FASTPATH`` (for tests that mutate ``os.environ``)."""
    return set_enabled((env_int("TASKBENCH_FASTPATH", 1) or 0) != 0)


def counters() -> Tuple[int, int]:
    """``(hits, compiles)`` accumulated by this process since the last reset."""
    return _hits, _compiles


def reset_counters() -> None:
    global _hits, _compiles
    _hits = 0
    _compiles = 0


class _Rel:
    """One compiled dependence structure: the CSR interval table of a single
    (dependence-set id, direction) pair, covering every column of the active
    window of its representative timestep."""

    __slots__ = ("off", "width", "starts", "los", "his", "counts",
                 "counts_list", "ivals", "_cols")

    def __init__(self, off: int, width: int, starts: np.ndarray,
                 los: np.ndarray, his: np.ndarray, counts: np.ndarray,
                 ivals: List[Tuple[Interval, ...]]) -> None:
        self.off = off
        self.width = width
        self.starts = starts
        self.los = los
        self.his = his
        self.counts = counts
        #: Python-int twin of ``counts`` so per-task lookups skip numpy
        #: scalar boxing.
        self.counts_list: List[int] = counts.tolist()
        self.ivals = ivals
        self._cols: List[Tuple[int, ...] | None] = [None] * width

    def columns(self, k: int) -> Tuple[int, ...]:
        """Flattened ascending column tuple for local column ``k``."""
        cols = self._cols[k]
        if cols is None:
            out: List[int] = []
            for lo, hi in self.ivals[k]:
                out.extend(range(lo, hi + 1))
            cols = tuple(out)
            self._cols[k] = cols
        return cols


def _compile_rel(spec: DependenceSpec, t: int, *, reverse: bool) -> _Rel:
    """Compile the dependence structure exhibited at timestep ``t`` by
    querying the spec itself — bit-exact with the slow path by construction."""
    off = spec.offset_at_timestep(t)
    width = spec.width_at_timestep(t)
    fn = spec.reverse_dependencies if reverse else spec.dependencies
    starts = np.zeros(width + 1, dtype=np.int64)
    los: List[int] = []
    his: List[int] = []
    ivals: List[Tuple[Interval, ...]] = []
    for k in range(width):
        intervals = fn(t, off + k)
        ivals.append(tuple((int(lo), int(hi)) for lo, hi in intervals))
        for lo, hi in intervals:
            los.append(lo)
            his.append(hi)
        starts[k + 1] = len(los)
    los_a = np.asarray(los, dtype=np.int64)
    his_a = np.asarray(his, dtype=np.int64)
    sizes = np.concatenate(([0], np.cumsum(his_a - los_a + 1)))
    counts = sizes[starts[1:]] - sizes[starts[:-1]]
    return _Rel(off, width, starts, los_a, his_a, counts, ivals)


class DependenceTable:
    """O(1) dependence queries for one :class:`DependenceSpec`, compiled
    lazily per dependence-set id.

    The forward map is keyed by ``dependence_set_at_timestep(t)`` (valid for
    ``t >= 1``: the first timestep of a graph has no inputs regardless of
    its set id).  The reverse map is keyed by
    ``dependence_set_at_timestep(t + 1)``: the edges *leaving* timestep
    ``t`` are the inverse of the edges *entering* ``t + 1``, so their
    structure — including the producer window at ``t`` — is determined by
    the consumer timestep's equivalence class (for the tree pattern, an
    expanding set id pins the exact timestep; every steady timestep has the
    full-width window).
    """

    def __init__(self, spec: DependenceSpec) -> None:
        self.spec = spec
        self._fwd: Dict[int, _Rel] = {}
        self._rev: Dict[int, _Rel] = {}
        # Timestep-keyed front caches: map t directly to its compiled
        # structure so steady-state queries skip the set-id computation
        # entirely (one dict probe instead of interval math + classing).
        # Entries reference the sid-keyed structures; bounded by height.
        self._fwd_t: Dict[int, _Rel] = {}
        self._rev_t: Dict[int, _Rel] = {}
        self._lock = threading.Lock()

    def __reduce__(self):
        # Tables hold a lock and potentially large compiled structures;
        # pickling (e.g. a TaskGraph whose cached ``_table`` was
        # materialized before shipping to a worker) reduces to a fresh
        # lookup in the receiving process's shared cache.
        s = self.spec
        return (_table_cached, (s.dtype, s.width, s.height, s.radix,
                                s.period, s.fraction, s.seed))

    # ------------------------------------------------------------------
    # Structure lookup / lazy compilation
    # ------------------------------------------------------------------
    def _rel(self, cache: Dict[int, _Rel], sid: int, t: int, reverse: bool) -> _Rel:
        rel = cache.get(sid)
        if rel is not None:
            global _hits
            _hits += 1
            return rel
        with self._lock:
            rel = cache.get(sid)
            if rel is None:
                rel = _compile_rel(self.spec, t, reverse=reverse)
                while len(cache) >= _MAX_SETS:
                    cache.pop(next(iter(cache)))
                cache[sid] = rel
                global _compiles
                _compiles += 1
        return rel

    def _fwd_rel(self, t: int) -> _Rel:
        """Compiled forward structure for timestep ``t`` (``t >= 1``)."""
        rel = self._fwd_t.get(t)
        if rel is not None:
            global _hits
            _hits += 1
            return rel
        rel = self._rel(self._fwd, self.spec.dependence_set_at_timestep(t), t,
                        False)
        if len(self._fwd_t) >= _MAX_SETS:
            self._fwd_t.pop(next(iter(self._fwd_t)))
        self._fwd_t[t] = rel
        return rel

    def _rev_rel(self, t: int) -> _Rel:
        """Compiled reverse structure for timestep ``t``
        (``t < height - 1``)."""
        rel = self._rev_t.get(t)
        if rel is not None:
            global _hits
            _hits += 1
            return rel
        rel = self._rel(self._rev,
                        self.spec.dependence_set_at_timestep(t + 1), t, True)
        if len(self._rev_t) >= _MAX_SETS:
            self._rev_t.pop(next(iter(self._rev_t)))
        self._rev_t[t] = rel
        return rel

    def _local(self, rel: _Rel, t: int, i: int) -> int:
        k = i - rel.off
        if not 0 <= k < rel.width:
            self.spec._check_point(t, i)  # raises IndexError with the
            raise AssertionError("unreachable")  # canonical message
        return k

    # ------------------------------------------------------------------
    # Queries (same semantics as DependenceSpec / TaskGraph)
    # ------------------------------------------------------------------
    def dependencies(self, t: int, i: int) -> List[Interval]:
        spec = self.spec
        if t == 0 or not 0 <= t < spec.height:
            return spec.dependencies(t, i)  # boundary / error path
        rel = self._fwd_rel(t)
        return list(rel.ivals[self._local(rel, t, i)])

    def reverse_dependencies(self, t: int, i: int) -> List[Interval]:
        spec = self.spec
        if t == spec.height - 1 or not 0 <= t < spec.height:
            return spec.reverse_dependencies(t, i)
        rel = self._rev_rel(t)
        return list(rel.ivals[self._local(rel, t, i)])

    def dependency_columns(self, t: int, i: int) -> Tuple[int, ...]:
        """Ascending columns at ``t - 1`` read by ``(t, i)`` as a shared,
        cached tuple (the canonical gather/validation order)."""
        # The happy path is fully inlined — one dict probe, one list index —
        # because this runs several times per task in every executor.
        rel = self._fwd_t.get(t)
        if rel is None:
            if t == 0 or not 0 <= t < self.spec.height:
                return tuple(self.spec.dependency_points(t, i))
            rel = self._fwd_rel(t)
        else:
            global _hits
            _hits += 1
        k = i - rel.off
        if 0 <= k < rel.width:
            cols = rel._cols[k]
            return cols if cols is not None else rel.columns(k)
        return rel.columns(self._local(rel, t, i))

    def reverse_dependency_columns(self, t: int, i: int) -> Tuple[int, ...]:
        """Ascending columns at ``t + 1`` that read ``(t, i)``, cached."""
        rel = self._rev_t.get(t)
        if rel is None:
            spec = self.spec
            if t == spec.height - 1 or not 0 <= t < spec.height:
                return tuple(spec.reverse_dependency_points(t, i))
            rel = self._rev_rel(t)
        else:
            global _hits
            _hits += 1
        k = i - rel.off
        if 0 <= k < rel.width:
            cols = rel._cols[k]
            return cols if cols is not None else rel.columns(k)
        return rel.columns(self._local(rel, t, i))

    def num_dependencies(self, t: int, i: int) -> int:
        rel = self._fwd_t.get(t)
        if rel is None:
            if t == 0 or not 0 <= t < self.spec.height:
                return self.spec.num_dependencies(t, i)
            rel = self._fwd_rel(t)
        else:
            global _hits
            _hits += 1
        k = i - rel.off
        if 0 <= k < rel.width:
            return rel.counts_list[k]
        return rel.counts_list[self._local(rel, t, i)]

    def row_task_counts(self, t: int) -> Tuple[int, List[int]]:
        """``(offset, per-column dependency counts)`` for every task at
        timestep ``t`` — the bulk form scheduler initialization uses (one
        lookup per timestep instead of one query per task).  The returned
        list is the compiled structure's own; callers must not mutate it.
        """
        spec = self.spec
        if not 0 <= t < spec.height:
            spec._check_timestep(t)
            raise AssertionError("unreachable")
        if t == 0:
            # The first timestep has no inputs regardless of its set id.
            return spec.offset_at_timestep(0), [0] * spec.width_at_timestep(0)
        rel = self._fwd_t.get(t)
        if rel is None:
            rel = self._fwd_rel(t)
        else:
            global _hits
            _hits += 1
        return rel.off, rel.counts_list

    def consumer_count(self, t: int, i: int) -> int:
        """How many tasks at ``t + 1`` read the output of ``(t, i)``."""
        rel = self._rev_t.get(t)
        if rel is None:
            spec = self.spec
            if t == spec.height - 1 or not 0 <= t < spec.height:
                from .dependence import count_points
                return count_points(spec.reverse_dependencies(t, i))
            rel = self._rev_rel(t)
        else:
            global _hits
            _hits += 1
        k = i - rel.off
        if 0 <= k < rel.width:
            return rel.counts_list[k]
        return rel.counts_list[self._local(rel, t, i)]


@lru_cache(maxsize=256)
def _table_cached(dtype, width, height, radix, period, fraction, seed) -> DependenceTable:
    return DependenceTable(
        DependenceSpec(dtype, width, height, radix=radix, period=period,
                       fraction=fraction, seed=seed)
    )


def table_for(spec: DependenceSpec) -> DependenceTable:
    """The (process-wide, shared) compiled table for ``spec``'s parameters.

    Keyed by value, not identity, so graph copies — e.g. the pickled graphs
    reconstructed in forked workers, or ``TaskGraph.with_()`` clones that
    keep the same dependence parameters — share one table.
    """
    return _table_cached(spec.dtype, spec.width, spec.height, spec.radix,
                         spec.period, spec.fraction, spec.seed)
