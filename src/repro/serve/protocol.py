"""Request/response protocol of the benchmark service.

Every message is one *frame* — the framing discipline of
:mod:`repro.cluster.wire`, reused verbatim::

    +----------+---------------------------+
    | length   | body                      |
    | u32 LE   | JSON object, UTF-8        |
    +----------+---------------------------+

Unlike the rank mesh's hot data plane, every service message is cold
control traffic (a handful per benchmark run), so the body is JSON rather
than packed structs: requests are inspectable with ``socat`` and the
schema can grow fields without a version dance.  The length prefix and
the 16 MiB cap keep the failure modes of the binary protocol — a corrupt
prefix cannot make the server allocate an absurd buffer, and a short read
is a clean :class:`ProtocolError`, never a hang on a half frame.

Requests are ``{"verb": ..., ...}`` objects; the verb set:

``SUBMIT``
    ``{"verb": "SUBMIT", "cell": {...}}`` — enqueue one measurement job.
    The cell mapping holds :class:`~repro.suite.spec.Cell` fields
    (``runtime``/``pattern``/``width``/``steps``/``payload_bytes``/
    ``metric`` plus optional shared configuration).  Replies carry a
    ``job`` id and a ``state``; duplicate in-flight submissions coalesce
    onto the same id, and a cached terminal record answers instantly.
``STATUS``
    ``{"verb": "STATUS", "job": id}`` — non-blocking job state probe.
``RESULT``
    ``{"verb": "RESULT", "job": id, "timeout": seconds?}`` — block until
    the job reaches a terminal state (or the timeout), then return its
    durable record (the same shape :func:`repro.suite.scheduler.run_cell`
    produces).
``STATS``
    ``{"verb": "STATS"}`` — service counters and latency percentiles.
``DRAIN``
    ``{"verb": "DRAIN"}`` — stop admitting, finish running jobs, exit.

Error replies are ``{"ok": false, "error": msg, "code": CODE}`` with
machine-readable codes: ``INVALID`` (malformed request or cell), ``BUSY``
(queue full — explicit backpressure, retry later), ``DRAINING`` (server
shutting down), ``UNKNOWN_JOB``, ``TIMEOUT``.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

from ..cluster.wire import LEN_STRUCT

PROTOCOL_VERSION = 1

#: Hard cap on one frame body (16 MiB) — control traffic is small; a
#: corrupted length prefix must not trigger a giant allocation.
MAX_FRAME_BYTES = 16 << 20

#: The request verbs the server understands.
VERBS = ("SUBMIT", "STATUS", "RESULT", "STATS", "DRAIN")

#: Machine-readable error codes carried in ``{"ok": false}`` replies.
ERR_INVALID = "INVALID"
ERR_BUSY = "BUSY"
ERR_DRAINING = "DRAINING"
ERR_UNKNOWN_JOB = "UNKNOWN_JOB"
ERR_TIMEOUT = "TIMEOUT"

#: Required / optional request fields per verb (beyond ``verb`` itself),
#: with the accepted types.  The single source of request-shape truth —
#: the server validates against this table before touching the body.
_SCHEMA: Dict[str, Dict[str, Any]] = {
    "SUBMIT": {"required": {"cell": dict}, "optional": {}},
    "STATUS": {"required": {"job": str}, "optional": {}},
    "RESULT": {"required": {"job": str},
               "optional": {"timeout": (int, float)}},
    "STATS": {"required": {}, "optional": {}},
    "DRAIN": {"required": {}, "optional": {}},
}


class ProtocolError(ValueError):
    """A malformed frame or request arrived (bad length, bad JSON, bad
    schema)."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, body: Dict[str, Any]) -> None:
    """Encode ``body`` as one length-prefixed JSON frame and send it."""
    data = json.dumps(body, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(data)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    sock.sendall(LEN_STRUCT.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one frame; ``None`` on a clean EOF at a frame boundary.

    EOF *inside* a frame (length prefix or body truncated) is a
    :class:`ProtocolError` — the peer died mid-message.
    """
    prefix = _recv_exact(sock, LEN_STRUCT.size, eof_ok=True)
    if prefix is None:
        return None
    (length,) = LEN_STRUCT.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    data = _recv_exact(sock, length, eof_ok=False)
    assert data is not None
    try:
        body = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"corrupt frame body: {exc}") from None
    if not isinstance(body, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(body).__name__}"
        )
    return body


def _recv_exact(sock: socket.socket, n: int, *,
                eof_ok: bool) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on immediate EOF if allowed."""
    chunks = []
    have = 0
    while have < n:
        chunk = sock.recv(n - have)
        if not chunk:
            if eof_ok and have == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({have}/{n} bytes)"
            )
        chunks.append(chunk)
        have += len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Request validation
# ----------------------------------------------------------------------
def validate_request(body: Dict[str, Any]) -> str:
    """Check one decoded request against the verb schema.

    Returns the verb; raises :class:`ProtocolError` naming the first
    violation (unknown verb, missing field, wrong type, stray field).
    """
    verb = body.get("verb")
    if not isinstance(verb, str) or verb not in _SCHEMA:
        raise ProtocolError(
            f"unknown verb {verb!r}; expected one of {', '.join(VERBS)}"
        )
    schema = _SCHEMA[verb]
    for name, types in schema["required"].items():
        if name not in body:
            raise ProtocolError(f"{verb} requires field {name!r}")
        if not isinstance(body[name], types) or isinstance(body[name], bool):
            raise ProtocolError(
                f"{verb} field {name!r} must be "
                f"{_type_name(types)}, got {type(body[name]).__name__}"
            )
    for name, value in body.items():
        if name == "verb":
            continue
        if name in schema["required"]:
            continue
        if name not in schema["optional"]:
            raise ProtocolError(f"{verb} does not accept field {name!r}")
        types = schema["optional"][name]
        if not isinstance(value, types) or isinstance(value, bool):
            raise ProtocolError(
                f"{verb} field {name!r} must be "
                f"{_type_name(types)}, got {type(value).__name__}"
            )
    return verb


def _type_name(types: Any) -> str:
    if isinstance(types, tuple):
        return " or ".join(t.__name__ for t in types)
    return types.__name__


def error_reply(code: str, message: str) -> Dict[str, Any]:
    """The canonical ``{"ok": false}`` reply body."""
    return {"ok": False, "code": code, "error": message}


__all__ = [
    "ERR_BUSY",
    "ERR_DRAINING",
    "ERR_INVALID",
    "ERR_TIMEOUT",
    "ERR_UNKNOWN_JOB",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "VERBS",
    "error_reply",
    "recv_frame",
    "send_frame",
    "validate_request",
]
