"""The benchmark service daemon.

Threading model — one state lock, four thread roles:

* **Accept loop** — blocks in ``accept()``, hands each connection to a
  handler thread.  Handler threads speak :mod:`repro.serve.protocol`
  request-per-reply until the client closes.
* **Dispatcher** — the only thread that starts jobs.  Waits on the state
  condition until an admissible job sits in the queue, claims it, and
  spawns a job thread.  Admission reuses the suite scheduler's rules
  verbatim (:func:`repro.suite.scheduler.admit` over
  :class:`~repro.suite.scheduler.Claim` lists): job cap, host core
  budget, cluster-mesh exclusivity, ``shm_processes`` self-serialization.
* **Job threads** — check a live executor out of the
  :class:`~repro.serve.warmpool.WarmPool` (healed if its substrate died
  idle), run the cell via :func:`repro.suite.scheduler.run_cell` with
  the injected warm runner, and conclude the job.
* **Watchdog** — enforces per-job deadlines.  An expired job is
  concluded as ``failed`` immediately (waiters wake with the deadline
  record); process-backed substrates are then hard-killed by closing the
  executor (terminate → SIGKILL escalation inside the pool/launcher),
  while same-address-space substrates cannot be killed and are abandoned
  — the stale thread's eventual result is discarded.

Backpressure is explicit: a full queue answers ``BUSY`` instead of
accepting unbounded work, so a client herd degrades into retries rather
than into an OOM-killed daemon.  ``DRAIN`` (and SIGTERM, via the CLI)
stops admissions — new submits get ``DRAINING`` — finishes queued and
running jobs, then wakes :meth:`Server.wait`.

Lock discipline (enforced by ``task-bench check --self``): socket I/O,
executor construction/heal/close and every job-event wait happen outside
the state lock; the lock guards only queue/table mutation and counter
bumps.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from ..core.envvars import env_float, env_int
from ..metg.runners import RealRunner
from ..suite.scheduler import (
    Claim,
    _make_runner,
    admit,
    claim_for_cell,
    run_cell,
)
from ..suite.spec import Cell, SpecError, validate_cell
from ..trace import recorder as trace
from . import protocol
from .protocol import (
    ERR_BUSY,
    ERR_DRAINING,
    ERR_INVALID,
    ERR_TIMEOUT,
    ERR_UNKNOWN_JOB,
    ProtocolError,
    error_reply,
)
from .results import ResultCache, cell_fingerprint
from .warmpool import WarmPool

#: Isolation classes whose executors can be hard-killed mid-run by
#: closing them (worker/rank processes get terminate -> SIGKILL).  The
#: same-address-space substrates have no kill path: a deadline kill
#: abandons the run and discards its result.
_KILLABLE_ISOLATION = frozenset({"processes", "cluster"})

#: Latency samples kept per verb (ring buffer) for the p50/p99 report.
_LATENCY_WINDOW = 512


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one daemon, with ``TASKBENCH_SERVE_*`` defaults."""

    address: str = "taskbench-serve.sock"
    max_jobs: int = 2
    core_budget: int = 0  # 0 = os.cpu_count()
    queue_size: int = 16
    deadline: Optional[float] = None
    warm_capacity: int = 4
    warm_ttl: float = 300.0
    cache_capacity: int = 128

    def __post_init__(self) -> None:
        if self.max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {self.max_jobs}")
        if self.queue_size < 1:
            raise ValueError(
                f"queue_size must be >= 1, got {self.queue_size}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    @property
    def effective_core_budget(self) -> int:
        if self.core_budget > 0:
            return self.core_budget
        return os.cpu_count() or 1

    @classmethod
    def from_env(cls, **overrides: Any) -> "ServeConfig":
        """Defaults from ``TASKBENCH_SERVE_*`` (validated: a bad value is
        a :class:`~repro.core.envvars.UsageError`, not a traceback);
        explicit keyword overrides win."""
        env: Dict[str, Any] = {}
        queue = env_int("TASKBENCH_SERVE_QUEUE", None, minimum=1)
        if queue is not None:
            env["queue_size"] = queue
        jobs = env_int("TASKBENCH_SERVE_JOBS", None, minimum=1)
        if jobs is not None:
            env["max_jobs"] = jobs
        cores = env_int("TASKBENCH_SERVE_CORES", None, minimum=1)
        if cores is not None:
            env["core_budget"] = cores
        deadline = env_float(
            "TASKBENCH_SERVE_DEADLINE", None, exclusive_minimum=0.0
        )
        if deadline is not None:
            env["deadline"] = deadline
        warm = env_int("TASKBENCH_SERVE_WARM", None, minimum=0)
        if warm is not None:
            env["warm_capacity"] = warm
        ttl = env_float("TASKBENCH_SERVE_TTL", None, exclusive_minimum=0.0)
        if ttl is not None:
            env["warm_ttl"] = ttl
        cache = env_int("TASKBENCH_SERVE_CACHE", None, minimum=0)
        if cache is not None:
            env["cache_capacity"] = cache
        env.update(
            {k: v for k, v in overrides.items() if v is not None}
        )
        known = {f.name for f in fields(cls)}
        unknown = set(env) - known
        if unknown:
            raise TypeError(f"unknown ServeConfig fields: {sorted(unknown)}")
        return cls(**env)


@dataclass
class ServeStats:
    """Mutable service counters (guarded by the server's state lock)."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    deadline_kills: int = 0
    rejected_busy: int = 0
    rejected_invalid: int = 0
    rejected_draining: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    latencies: Dict[str, List[float]] = field(default_factory=dict)

    def observe(self, verb: str, seconds: float) -> None:
        window = self.latencies.setdefault(verb, [])
        window.append(seconds)
        if len(window) > _LATENCY_WINDOW:
            del window[: len(window) - _LATENCY_WINDOW]

    def latency_summary(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for verb, window in sorted(self.latencies.items()):
            if not window:
                continue
            ordered = sorted(window)
            out[verb] = {
                "count": float(len(ordered)),
                "p50_seconds": _percentile(ordered, 0.50),
                "p99_seconds": _percentile(ordered, 0.99),
            }
        return out


def _percentile(ordered: List[float], q: float) -> float:
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


class _Job:
    """One submitted measurement, from SUBMIT to terminal record."""

    __slots__ = (
        "id", "cell", "fingerprint", "claim", "state", "record", "cached",
        "created", "started", "deadline_at", "executor", "killed", "event",
    )

    def __init__(self, job_id: str, cell: Cell, fingerprint: str,
                 claim: Claim) -> None:
        self.id = job_id
        self.cell = cell
        self.fingerprint = fingerprint
        self.claim = claim
        self.state = "queued"  # queued | running | done
        self.record: Optional[Dict[str, Any]] = None
        self.cached = False
        self.created = time.monotonic()
        self.started: Optional[float] = None
        self.deadline_at: Optional[float] = None
        self.executor: Any = None
        self.killed = False
        self.event = threading.Event()

    def describe(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "ok": True,
            "job": self.id,
            "state": self.state,
            "key": self.cell.key,
            "cached": self.cached,
        }
        if self.record is not None:
            body["status"] = self.record.get("status")
        return body


class Server:
    """The daemon: accept loop + dispatcher + watchdog over shared state."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queue: List[_Job] = []
        self._running: List[_Job] = []
        self._jobs: Dict[str, _Job] = {}
        self._cache = ResultCache(self.config.cache_capacity)
        self._pool = WarmPool(
            self.config.warm_capacity, self.config.warm_ttl
        )
        self.stats = ServeStats()
        self._job_counter = 0
        self._draining = False
        self._stopping = False
        self._drained = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._uds_path: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> str:
        """Bind the endpoint and start the service threads.  Returns the
        bound address (useful for ``tcp:HOST:0`` ephemeral ports)."""
        self._listener, bound = _bind(self.config.address)
        if not bound.startswith("tcp:"):
            self._uds_path = bound
        self._listener.listen(64)
        for name, target in (
            ("serve-accept", self._accept_loop),
            ("serve-dispatch", self._dispatch_loop),
            ("serve-watchdog", self._watchdog_loop),
        ):
            worker = threading.Thread(target=target, name=name, daemon=True)
            worker.start()
            self._threads.append(worker)
        return bound

    def drain(self) -> None:
        """Stop admitting; finish queued + running jobs, then quiesce."""
        with self._wake:
            self._draining = True
            self._wake.notify_all()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon has drained (True) or ``timeout``."""
        return self._drained.wait(timeout)

    def close(self) -> None:
        """Tear the daemon down: drain, stop threads, retire executors."""
        self.drain()
        with self._wake:
            self._stopping = True
            self._wake.notify_all()
        listener = self._listener
        self._listener = None
        if listener is not None:
            try:
                # shutdown() (not just close()) wakes a blocked accept();
                # closing the fd alone leaves the accept thread stuck
                # until the next connection arrives.
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass
        for worker in self._threads:
            worker.join(timeout=10.0)
        self._threads = []
        self._pool.close()
        if self._uds_path is not None:
            try:
                os.unlink(self._uds_path)
            except OSError:
                pass
            self._uds_path = None
        # Fail any job that never got to run, so waiters are released.
        orphans: List[_Job] = []
        with self._lock:
            for job in self._queue + self._running:
                if job.record is None:
                    job.record = _abort_record(job, "server shut down")
                    job.state = "done"
                    orphans.append(job)
            self._queue = []
            self._running = []
        for job in orphans:
            job.event.set()
        self._drained.set()

    # ------------------------------------------------------------------
    # Accept loop + connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            listener = self._listener
            if listener is None:
                return
            try:
                conn, _ = listener.accept()
            except OSError:
                return  # listener closed: shutdown
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="serve-conn", daemon=True,
            )
            handler.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request = protocol.recv_frame(conn)
                except ProtocolError as exc:
                    _send_quietly(conn, error_reply(ERR_INVALID, str(exc)))
                    return
                if request is None:
                    return  # clean EOF
                reply = self._handle(request)
                protocol.send_frame(conn, reply)
        except OSError:
            pass  # peer vanished mid-reply
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        started = time.perf_counter()
        traced = trace.enabled
        t0 = trace.begin() if traced else 0
        try:
            verb = protocol.validate_request(request)
        except ProtocolError as exc:
            with self._lock:
                self.stats.rejected_invalid += 1
            return error_reply(ERR_INVALID, str(exc))
        try:
            if verb == "SUBMIT":
                reply = self._handle_submit(request)
            elif verb == "STATUS":
                reply = self._handle_status(request)
            elif verb == "RESULT":
                reply = self._handle_result(request)
            elif verb == "STATS":
                reply = self._handle_stats()
            else:  # DRAIN
                self.drain()
                reply = {"ok": True, "draining": True}
            return reply
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self.stats.observe(verb, elapsed)
            if t0:
                trace.complete(
                    f"serve.{verb.lower()}", trace.CAT_DISPATCH, t0,
                    {"seconds": elapsed},
                )

    # ------------------------------------------------------------------
    # Verb handlers
    # ------------------------------------------------------------------
    def _handle_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            cell = _parse_cell(request["cell"])
        except (SpecError, TypeError, ValueError) as exc:
            with self._lock:
                self.stats.rejected_invalid += 1
            return error_reply(ERR_INVALID, str(exc))
        fingerprint = cell_fingerprint(cell)
        claim = claim_for_cell(cell)
        with self._wake:
            self.stats.submitted += 1
            if self._draining:
                self.stats.rejected_draining += 1
                return error_reply(
                    ERR_DRAINING, "server is draining; not accepting jobs"
                )
            cached = self._cache.get(fingerprint)
            if cached is not None:
                job = self._new_job_locked(cell, fingerprint, claim)
                job.state = "done"
                job.record = cached
                job.cached = True
                self.stats.cache_hits += 1
                reply = job.describe()
            else:
                leader_id = self._cache.lookup_inflight(fingerprint)
                if leader_id is not None:
                    self.stats.coalesced += 1
                    leader = self._jobs[leader_id]
                    reply = leader.describe()
                    reply["coalesced"] = True
                elif len(self._queue) >= self.config.queue_size:
                    self.stats.rejected_busy += 1
                    return error_reply(
                        ERR_BUSY,
                        f"job queue is full "
                        f"({self.config.queue_size} queued); retry later",
                    )
                else:
                    job = self._new_job_locked(cell, fingerprint, claim)
                    self._cache.enter_inflight(fingerprint, job.id)
                    self._queue.append(job)
                    self._wake.notify_all()
                    reply = job.describe()
        # A cache-hit job is terminal the moment it exists; release any
        # RESULT waiter that raced in (event ops stay off the lock).
        job_id = reply.get("job")
        if job_id is not None:
            terminal = self._jobs[job_id]
            if terminal.state == "done":
                terminal.event.set()
        return reply

    def _new_job_locked(self, cell: Cell, fingerprint: str,
                        claim: Claim) -> _Job:
        self._job_counter += 1
        job = _Job(f"j{self._job_counter:06d}", cell, fingerprint, claim)
        self._jobs[job.id] = job
        return job

    def _handle_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            job = self._jobs.get(request["job"])
            if job is None:
                return error_reply(
                    ERR_UNKNOWN_JOB, f"no such job {request['job']!r}"
                )
            return job.describe()

    def _handle_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            job = self._jobs.get(request["job"])
        if job is None:
            return error_reply(
                ERR_UNKNOWN_JOB, f"no such job {request['job']!r}"
            )
        timeout = request.get("timeout")
        if not job.event.wait(timeout):
            return error_reply(
                ERR_TIMEOUT,
                f"job {job.id} still {job.state} after {timeout:g}s",
            )
        with self._lock:
            reply = job.describe()
            reply["record"] = job.record
        return reply

    def _handle_stats(self) -> Dict[str, Any]:
        pool_stats = self._pool.stats
        with self._lock:
            body: Dict[str, Any] = {
                "ok": True,
                "protocol": protocol.PROTOCOL_VERSION,
                "queue_depth": len(self._queue),
                "running": len(self._running),
                "inflight": self._cache.inflight_count,
                "draining": self._draining,
                "jobs": {
                    "submitted": self.stats.submitted,
                    "admitted": self.stats.admitted,
                    "completed": self.stats.completed,
                    "failed": self.stats.failed,
                    "deadline_kills": self.stats.deadline_kills,
                },
                "rejections": {
                    "busy": self.stats.rejected_busy,
                    "invalid": self.stats.rejected_invalid,
                    "draining": self.stats.rejected_draining,
                },
                "cache": {
                    "hits": self.stats.cache_hits,
                    "coalesced": self.stats.coalesced,
                    "records": len(self._cache),
                },
                "warm_pool": pool_stats,
                "latency": self.stats.latency_summary(),
            }
        return body

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        budget = self.config.effective_core_budget
        while True:
            job = None
            with self._wake:
                while True:
                    if self._stopping:
                        return
                    running = [item.claim for item in self._running]
                    job = next(
                        (
                            item for item in self._queue
                            if admit(item.claim, running,
                                     self.config.max_jobs, budget)
                        ),
                        None,
                    )
                    if job is not None:
                        break
                    if (self._draining and not self._queue
                            and not self._running):
                        self._drained.set()
                        return
                    self._wake.wait(timeout=1.0)
                self._queue.remove(job)
                self._running.append(job)
                job.state = "running"
                job.started = time.monotonic()
                deadline = (
                    job.cell.timeout
                    if job.cell.timeout is not None
                    else self.config.deadline
                )
                if deadline is not None:
                    job.deadline_at = job.started + deadline
                self.stats.admitted += 1
                self._wake.notify_all()  # watchdog re-arms its timeout
            runner_thread = threading.Thread(
                target=self._run_job, args=(job,),
                name=f"serve-job-{job.id}", daemon=True,
            )
            runner_thread.start()

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def _run_job(self, job: _Job) -> None:
        cell = job.cell
        executor = None
        warm = False
        try:
            if cell.is_simulated:
                runner = _make_runner(cell)
            else:
                executor, warm = self._pool.checkout(
                    cell.runtime, cell.workers, cell.timeout
                )
                with self._lock:
                    job.executor = executor
                runner = RealRunner(executor)
            record = run_cell(cell, runner=runner)
        except Exception as exc:  # checkout/build blew up before the run
            record = _abort_record(job, f"{type(exc).__name__}: {exc}")
        record.setdefault("served", {})
        record["served"]["warm"] = warm
        self._conclude(job, record, executor)

    def _conclude(self, job: _Job, record: Dict[str, Any],
                  executor: Any) -> None:
        with self._wake:
            if job.killed:
                # The watchdog already concluded this job with a deadline
                # record and killed the executor; the late result is
                # discarded and the executor is never pooled again.
                if job in self._running:
                    self._running.remove(job)
                self._wake.notify_all()
                executor = None  # watchdog owns (and closed) it
                pooled = False
            else:
                job.record = record
                job.state = "done"
                job.executor = None
                if job in self._running:
                    self._running.remove(job)
                status = record.get("status")
                if status == "failed":
                    self.stats.failed += 1
                else:
                    self.stats.completed += 1
                self._cache.put(job.fingerprint, record)
                self._cache.leave_inflight(job.fingerprint, job.id)
                pooled = executor is not None and status != "failed"
                self._wake.notify_all()
        if executor is not None:
            if pooled:
                self._pool.checkin(
                    job.cell.runtime, job.cell.workers, job.cell.timeout,
                    executor,
                )
            else:
                # A failed run may have broken the substrate; retire it.
                _close_executor(executor)
        job.event.set()

    # ------------------------------------------------------------------
    # Watchdog (deadline kills)
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        while True:
            victims: List[Tuple[_Job, Any]] = []
            with self._wake:
                while True:
                    if self._stopping:
                        return
                    now = time.monotonic()
                    expired = [
                        job for job in self._running
                        if job.deadline_at is not None
                        and now >= job.deadline_at
                    ]
                    if expired:
                        break
                    self._wake.wait(timeout=self._next_deadline_locked(now))
                for job in expired:
                    job.killed = True
                    job.state = "done"
                    job.record = _abort_record(
                        job,
                        f"job deadline exceeded "
                        f"({job.deadline_at - job.started:g}s); killed",
                    )
                    self._running.remove(job)
                    self.stats.deadline_kills += 1
                    self.stats.failed += 1
                    self._cache.leave_inflight(job.fingerprint, job.id)
                    victims.append((job, job.executor))
                    job.executor = None
                self._wake.notify_all()
            for job, executor in victims:
                if (executor is not None
                        and job.claim.isolation in _KILLABLE_ISOLATION):
                    # close() escalates terminate -> SIGKILL inside the
                    # pool/launcher, so this is bounded even mid-run.
                    _close_executor(executor)
                job.event.set()

    def _next_deadline_locked(self, now: float) -> Optional[float]:
        deadlines = [
            job.deadline_at - now for job in self._running
            if job.deadline_at is not None
        ]
        if not deadlines:
            return None
        return max(0.01, min(deadlines))


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _parse_cell(body: Dict[str, Any]) -> Cell:
    """A validated :class:`Cell` from an untrusted SUBMIT body."""
    from dataclasses import fields as dc_fields

    known = {f.name for f in dc_fields(Cell)}
    unknown = sorted(set(body) - known)
    if unknown:
        raise SpecError(
            f"unknown cell fields {unknown}; known: {', '.join(sorted(known))}"
        )
    try:
        cell = Cell(**body)
    except TypeError as exc:
        raise SpecError(str(exc)) from None
    validate_cell(cell)
    return cell


def _abort_record(job: _Job, message: str) -> Dict[str, Any]:
    started = job.started if job.started is not None else job.created
    return {
        "key": job.cell.key,
        "cell": job.cell.params(),
        "status": "failed",
        "wall_seconds": max(0.0, time.monotonic() - started),
        "measurements": {},
        "error": message,
    }


def _close_executor(executor: Any) -> None:
    close = getattr(executor, "close", None)
    if close is None:
        return
    try:
        close()
    except Exception:
        pass


def _send_quietly(conn: socket.socket, body: Dict[str, Any]) -> None:
    try:
        protocol.send_frame(conn, body)
    except OSError:
        pass


def _bind(address: str) -> Tuple[socket.socket, str]:
    """Bind the service endpoint.

    ``tcp:HOST:PORT`` binds a TCP socket (port 0 picks an ephemeral
    port; the returned address names the real one); anything else is a
    Unix-domain socket path, with a stale socket file from a dead daemon
    unlinked first.
    """
    if address.startswith("tcp:"):
        _, host, port_text = address.split(":", 2)
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(
                f"bad TCP address {address!r}; expected tcp:HOST:PORT"
            ) from None
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        bound_host, bound_port = sock.getsockname()[:2]
        return sock, f"tcp:{bound_host}:{bound_port}"
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.bind(address)
    except OSError:
        # A stale socket file from a dead daemon blocks the bind; a live
        # daemon answers connections, a dead one's file is safe to sweep.
        if not _socket_alive(address):
            try:
                os.unlink(address)
            except OSError:
                pass
            sock.bind(address)
        else:
            sock.close()
            raise RuntimeError(
                f"a live daemon already serves {address!r}"
            ) from None
    return sock, address


def _socket_alive(path: str) -> bool:
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(0.25)
        probe.connect(path)
        return True
    except OSError:
        return False
    finally:
        probe.close()


__all__ = ["ServeConfig", "ServeStats", "Server"]
