"""Blocking client for the benchmark service.

One :class:`ServeClient` holds one connection and speaks the
request-per-reply protocol of :mod:`repro.serve.protocol`.  Service-side
rejections surface as :class:`ServeError` carrying the machine-readable
code (``BUSY``, ``DRAINING``, ``INVALID``, ...), so callers can tell
"retry later" from "fix your request"::

    with ServeClient("bench.sock") as client:
        record = client.run({"runtime": "serial", "pattern": "trivial",
                             "width": 2, "steps": 4, "payload_bytes": 16,
                             "metric": "run"})
        print(record["measurements"]["elapsed_seconds"])
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from . import protocol
from .protocol import ProtocolError


class ServeError(RuntimeError):
    """The service rejected a request (carries the protocol error code)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServeClient:
    """A blocking connection to one daemon.

    ``address`` is a Unix-domain socket path or ``tcp:HOST:PORT`` — the
    same forms ``task-bench serve`` binds.
    """

    def __init__(self, address: str,
                 connect_timeout: Optional[float] = 10.0) -> None:
        self.address = address
        if address.startswith("tcp:"):
            _, host, port_text = address.split(":", 2)
            self._sock = socket.create_connection(
                (host, int(port_text)), timeout=connect_timeout
            )
        else:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(connect_timeout)
            self._sock.connect(address)
        self._sock.settimeout(None)  # request latency is the server's call

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """One raw round-trip; raises :class:`ServeError` on ``ok=False``."""
        protocol.send_frame(self._sock, body)
        reply = protocol.recv_frame(self._sock)
        if reply is None:
            raise ProtocolError("server closed the connection mid-request")
        if not reply.get("ok", False):
            raise ServeError(
                str(reply.get("code", "ERROR")),
                str(reply.get("error", "request failed")),
            )
        return reply

    def submit(self, cell: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one cell; returns the job summary (id, state, cached)."""
        return self.request({"verb": "SUBMIT", "cell": dict(cell)})

    def status(self, job: str) -> Dict[str, Any]:
        return self.request({"verb": "STATUS", "job": job})

    def result(self, job: str,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until ``job`` is terminal; returns its durable record."""
        body: Dict[str, Any] = {"verb": "RESULT", "job": job}
        if timeout is not None:
            body["timeout"] = timeout
        reply = self.request(body)
        record = reply.get("record")
        if not isinstance(record, dict):
            raise ProtocolError(f"job {job} reply carries no record")
        return record

    def run(self, cell: Dict[str, Any],
            timeout: Optional[float] = None) -> Dict[str, Any]:
        """Submit one cell and wait for its record (the common path)."""
        summary = self.submit(cell)
        return self.result(str(summary["job"]), timeout=timeout)

    def stats(self) -> Dict[str, Any]:
        return self.request({"verb": "STATS"})

    def drain(self) -> Dict[str, Any]:
        return self.request({"verb": "DRAIN"})


__all__ = ["ServeClient", "ServeError"]
