"""Warm executor pool: the cache that makes the service worth running.

A cold benchmark run pays fork-pool construction, mesh launch, worker
import and first-touch warmup before a single task executes — on the
process substrates that is tens to hundreds of milliseconds, far above
the task granularities Task Bench measures.  The pool keeps live
executors between requests, keyed ``(runtime, workers, timeout)``:

* **LRU + TTL** — bounded capacity with least-recently-used eviction,
  plus a time-to-live so an executor idle for minutes (its workers'
  caches cold, its memory hostage) is retired rather than handed out.
* **Heal on checkout** — a cached executor's substrate can die while it
  sits idle (a worker OOM-killed, a rank mesh torn by a signal).  Every
  checkout first calls :meth:`~repro.core.executor_base.Executor.heal`,
  which respawns dead pool workers in place or condemns a broken mesh,
  so a crashed cached worker never poisons a later request.  An executor
  that cannot be healed is closed and replaced by a cold build.

Lock discipline (enforced by ``task-bench check --self``): the pool's
lock guards only the entry table; executor construction, healing and
closing — anything that forks, joins or kills processes — happens
outside it, so a slow mesh teardown never stalls an unrelated checkout.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..core.executor_base import Executor
from ..runtimes.registry import make_executor

#: Pool key: (runtime name, worker count, per-run timeout).
PoolKey = Tuple[str, int, Optional[float]]


class WarmPool:
    """Bounded LRU+TTL cache of live executors."""

    def __init__(self, capacity: int = 4, ttl_seconds: float = 300.0) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._lock = threading.Lock()
        self._entries: "OrderedDict[PoolKey, Tuple[Executor, float]]" = (
            OrderedDict()
        )
        self._closed = False
        # Counters (guarded by the lock; read via ``stats``).
        self._warm_hits = 0
        self._cold_builds = 0
        self._heals = 0
        self._ttl_evictions = 0
        self._lru_evictions = 0

    # ------------------------------------------------------------------
    def checkout(
        self,
        runtime: str,
        workers: int,
        timeout: Optional[float] = None,
    ) -> Tuple[Executor, bool]:
        """A live, healthy executor for ``(runtime, workers, timeout)``.

        Returns ``(executor, warm)`` — ``warm`` says whether a cached
        instance was reused.  The caller owns the executor until it is
        :meth:`checkin`-ed back (or closed, if the run broke it).
        """
        key: PoolKey = (runtime, workers, timeout)
        now = time.monotonic()
        expired: List[Executor] = []
        with self._lock:
            cached = self._pop_entry(key, now, expired)
        for stale in expired:
            _close_quietly(stale)
        if cached is not None:
            healed = self._try_heal(cached)
            if healed is not None:
                with self._lock:
                    self._warm_hits += 1
                    if healed:
                        self._heals += healed
                return cached, True
            _close_quietly(cached)  # unhealable: fall through to cold build
        executor = make_executor(runtime, workers=workers, **(
            {"timeout": timeout} if timeout is not None else {}
        ))
        with self._lock:
            self._cold_builds += 1
        return executor, False

    def checkin(self, runtime: str, workers: int,
                timeout: Optional[float], executor: Executor) -> None:
        """Return an executor to the pool (closes it if the pool is full
        beyond LRU relief, closed, or zero-capacity)."""
        key: PoolKey = (runtime, workers, timeout)
        now = time.monotonic()
        to_close: List[Executor] = []
        with self._lock:
            if self._closed or self.capacity == 0:
                to_close.append(executor)
            else:
                previous = self._entries.pop(key, None)
                if previous is not None:
                    to_close.append(previous[0])
                self._entries[key] = (executor, now)
                self._purge_locked(now, to_close)
                while len(self._entries) > self.capacity:
                    _, (victim, _) = self._entries.popitem(last=False)
                    self._lru_evictions += 1
                    to_close.append(victim)
        for stale in to_close:
            _close_quietly(stale)

    def close(self) -> None:
        """Retire every cached executor; later checkins close instantly."""
        with self._lock:
            self._closed = True
            victims = [executor for executor, _ in self._entries.values()]
            self._entries.clear()
        for executor in victims:
            _close_quietly(executor)

    @property
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "cached": len(self._entries),
                "warm_hits": self._warm_hits,
                "cold_builds": self._cold_builds,
                "heals": self._heals,
                "ttl_evictions": self._ttl_evictions,
                "lru_evictions": self._lru_evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def _pop_entry(self, key: PoolKey, now: float,
                   expired: List[Executor]) -> Optional[Executor]:
        """Pop the entry for ``key`` (lock held); TTL-purges as it goes."""
        self._purge_locked(now, expired)
        entry = self._entries.pop(key, None)
        if entry is None:
            return None
        return entry[0]

    def _purge_locked(self, now: float, expired: List[Executor]) -> None:
        cutoff = now - self.ttl_seconds
        while self._entries:
            key, (executor, stamp) = next(iter(self._entries.items()))
            if stamp >= cutoff:
                break  # ordered oldest-first: the rest are fresher
            del self._entries[key]
            self._ttl_evictions += 1
            expired.append(executor)

    @staticmethod
    def _try_heal(executor: Executor) -> Optional[int]:
        """Heal a cached executor; ``None`` marks it unsalvageable."""
        try:
            return executor.heal()
        except Exception:
            return None


def _close_quietly(executor: Executor) -> None:
    close = getattr(executor, "close", None)
    if close is None:
        return
    try:
        close()
    except Exception:
        pass


__all__ = ["PoolKey", "WarmPool"]
