"""Result cache + single-flight coalescing for the benchmark service.

Two distinct mechanisms share a key — the cell *fingerprint*, a stable
digest of every :class:`~repro.suite.spec.Cell` parameter:

* The **result cache** holds terminal records of finished cells (LRU,
  bounded).  Only honest terminals are cached — ``ok`` and
  ``unachievable`` are properties of the cell, but ``failed`` records
  describe one attempt (a crashed worker, a deadline kill) and must not
  be replayed to later submitters.
* The **single-flight table** maps fingerprints of cells currently
  running or queued to their job id, so concurrent identical submissions
  coalesce onto one execution: the second submitter gets the first's job
  id and waits on the same record.  cf. Go's ``singleflight`` package —
  under a thundering herd of identical requests exactly one does the
  work.

Neither structure owns a lock: the server mutates both under its single
state lock (every operation here is pure dict work, nothing blocks), so
cache lookup, coalescing and queue admission are one atomic decision —
the classic check-then-act race between "is it cached?" and "is it
already running?" cannot happen.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Any, Dict, Optional

from ..suite.spec import Cell

#: Terminal statuses that are properties of the cell (cacheable), as
#: opposed to properties of one failed attempt.
CACHEABLE_STATUSES = frozenset({"ok", "unachievable"})


def cell_fingerprint(cell: Cell) -> str:
    """Stable digest of *every* cell parameter.

    Unlike :attr:`Cell.key` (axis values only — within one suite the
    shared configuration is constant), the fingerprint folds in workers,
    kernel, iterations, target and the rest: the service accepts cells
    from many clients with no shared spec, so two submissions are "the
    same measurement" only if every parameter matches.
    """
    canonical = json.dumps(cell.params(), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


class ResultCache:
    """Bounded LRU of terminal records + the in-flight job table.

    Not thread-safe by design — see the module docstring: the server
    serializes access under its state lock so cache/coalesce/admit is
    atomic.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._records: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._inflight: Dict[str, str] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0

    # -- result cache --------------------------------------------------
    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached terminal record, freshened to most-recently-used."""
        record = self._records.get(fingerprint)
        if record is None:
            self.misses += 1
            return None
        self._records.move_to_end(fingerprint)
        self.hits += 1
        return record

    def put(self, fingerprint: str, record: Dict[str, Any]) -> bool:
        """Cache a terminal record; drops the LRU entry over capacity.

        Returns whether the record was cached (``failed`` attempts and a
        zero-capacity cache decline).
        """
        if self.capacity == 0:
            return False
        if record.get("status") not in CACHEABLE_STATUSES:
            return False
        self._records[fingerprint] = record
        self._records.move_to_end(fingerprint)
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)
        return True

    # -- single flight -------------------------------------------------
    def lookup_inflight(self, fingerprint: str) -> Optional[str]:
        """The job id already running/queued for this fingerprint, if
        any — a hit means the submitter coalesces onto that flight."""
        leader = self._inflight.get(fingerprint)
        if leader is not None:
            self.coalesced += 1
        return leader

    def enter_inflight(self, fingerprint: str, job_id: str) -> None:
        """Register ``job_id`` as this fingerprint's flight leader."""
        assert fingerprint not in self._inflight
        self._inflight[fingerprint] = job_id

    def leave_inflight(self, fingerprint: str, job_id: str) -> None:
        """Unregister a finished flight (no-op if another leads it)."""
        if self._inflight.get(fingerprint) == job_id:
            del self._inflight[fingerprint]

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    def __len__(self) -> int:
        return len(self._records)


__all__ = ["CACHEABLE_STATUSES", "ResultCache", "cell_fingerprint"]
