"""Benchmark-as-a-service: a persistent Task Bench daemon.

The paper's harness — and this repo's CLI — pays the full substrate cost
on every invocation: fork pools are built, calibration runs, the kernel
warms up, and everything is torn down again.  For a sweep that is fine
(the suite scheduler amortizes within a cell); for *interactive* use —
"measure this one cell now" — the setup dominates the measurement.  This
package keeps the substrate alive between requests:

* :mod:`repro.serve.protocol` — length-prefixed JSON request frames over
  a Unix-domain or TCP socket (same framing discipline as
  :mod:`repro.cluster.wire`): ``SUBMIT`` / ``STATUS`` / ``RESULT`` /
  ``STATS`` / ``DRAIN``.
* :mod:`repro.serve.server` — the threaded daemon: bounded job queue with
  explicit ``BUSY`` backpressure, admission control reusing the suite
  scheduler's :func:`~repro.suite.scheduler.admit` rules, per-job
  deadline kills, graceful SIGTERM drain.
* :mod:`repro.serve.warmpool` — an LRU+TTL cache of live executors keyed
  ``(runtime, workers)``, healed on checkout so a crashed cached worker
  never poisons a later request.
* :mod:`repro.serve.results` — a result cache keyed by cell fingerprint
  plus single-flight coalescing: concurrent identical submissions run
  once and share the record.
* :mod:`repro.serve.client` — the blocking client library behind
  ``task-bench submit`` and ``task-bench svc-stats``.

Surfaced on the command line as ``task-bench serve`` (daemon),
``task-bench submit`` (one cell), and ``task-bench svc-stats``.
"""

from .client import ServeClient, ServeError
from .protocol import PROTOCOL_VERSION, ProtocolError, VERBS
from .results import ResultCache, cell_fingerprint
from .server import Server, ServeConfig, ServeStats
from .warmpool import WarmPool

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ResultCache",
    "Server",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeStats",
    "VERBS",
    "WarmPool",
    "cell_fingerprint",
]
