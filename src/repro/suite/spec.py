"""Declarative benchmark-suite specifications.

The paper's results are cross-products — systems × dependence patterns ×
node counts × task granularities (Figures 3-9) — and the sweep harness that
enumerates them is a product in its own right (cf. TaPS).  A
:class:`SuiteSpec` names the axes of one such cross-product::

    runtimes × patterns × widths × steps × payload sizes × metrics

plus the shared per-cell configuration (worker count, kernel, METG target,
…) and *exclusion rules* that cut cells the paper itself omits (§5.3:
"Spark, Swift/T and TensorFlow are omitted ... as the overheads of these
systems require excessive problem sizes").

Specs load from JSON or TOML files (:func:`load_spec`) and expand to a
deterministic, key-sorted list of :class:`Cell`\\ s.  A cell's ``key`` is
its durable identity: the checkpoint store names records by it, and a
resumed suite re-runs exactly the keys that have no completed record.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field, fields
from functools import lru_cache
from pathlib import Path
from typing import Any, List, Mapping, Tuple

from ..core.kernels import Kernel
from ..core.task_graph import TaskGraph
from ..core.types import DependenceType, KernelType
from ..runtimes.registry import available_runtimes
from ..sim.systems import all_systems

SPEC_SCHEMA_VERSION = 1

#: What a cell measures: a single timed run at the spec's iteration count
#: (``run``) or a full METG(target) problem-size sweep (``metg``).
METRICS = ("run", "metg")

#: Axes a cell exclusion rule may constrain (cell attribute names).
EXCLUDABLE_AXES = ("runtime", "pattern", "width", "steps", "payload_bytes",
                   "metric")


class SpecError(ValueError):
    """Raised for malformed or inconsistent suite specifications."""


@dataclass(frozen=True)
class Cell:
    """One point of the suite's cross-product: a single measurement job.

    Carries both the axis values that distinguish it and the spec-level
    configuration shared by every cell, so a cell is self-contained — the
    scheduler ships it to a child process as a plain dict.
    """

    runtime: str
    pattern: str
    width: int
    steps: int
    payload_bytes: int
    metric: str
    workers: int = 2
    kernel: str = "compute_bound"
    iterations: int = 1024
    target: float = 0.5
    max_iterations: int = 1 << 22
    nodes: int = 1
    cores_per_node: int = 0
    timeout: float | None = None

    @property
    def key(self) -> str:
        """Durable identity of this cell: the checkpoint record's name.

        Built only from axis values (the shared configuration is recorded
        in the store's spec copy), filesystem-safe, and stable across runs.
        """
        runtime = self.runtime.replace(":", ".")
        return (
            f"{self.metric}-{runtime}-{self.pattern}"
            f"-w{self.width}-s{self.steps}-p{self.payload_bytes}"
        )

    @property
    def is_simulated(self) -> bool:
        return self.runtime.startswith("sim:")

    def params(self) -> dict:
        """Plain-dict form (what the scheduler sends to a cell worker)."""
        return asdict(self)

    def graphs(self) -> List[TaskGraph]:
        """The cell's task graphs at the spec's iteration count."""
        return self.graphs_at(self.iterations)

    def graphs_at(self, iterations: int) -> List[TaskGraph]:
        """The cell's task graphs with the kernel at ``iterations``.

        Construction is memoized process-wide on the cell's graph-shaping
        parameters: the dependence relation (the expensive derived state)
        is computed once per shape and shared by every probe of a sweep.
        Each call still returns *fresh* graph objects — executors and
        retries key worker-side caches on graph identity, and a re-used
        object must never leak one attempt's state into the next.
        """
        template = _graph_template(
            self.pattern, self.width, self.steps, self.payload_bytes,
            self.kernel, iterations,
        )
        return [copy.copy(template)]


def validate_cell(cell: Cell) -> None:
    """Validate one standalone cell, raising :class:`SpecError`.

    Cells built through :meth:`SuiteSpec.cells` inherit the spec's
    validation; cells built directly from untrusted input (a serve-daemon
    SUBMIT body) get none, so callers that accept them over the wire run
    this first.  Mirrors the constraints of ``SuiteSpec.__post_init__``
    restricted to a single cell.
    """
    if cell.is_simulated:
        system = cell.runtime[len("sim:"):]
        if system not in set(all_systems()):
            raise SpecError(
                f"unknown simulated system {cell.runtime!r}; available: "
                f"{', '.join('sim:' + s for s in sorted(all_systems()))}"
            )
    elif cell.runtime not in set(available_runtimes()):
        raise SpecError(
            f"unknown runtime {cell.runtime!r}; available: "
            f"{', '.join(available_runtimes())}"
        )
    try:
        DependenceType.parse(cell.pattern)
        KernelType.parse(cell.kernel)
    except ValueError as e:
        raise SpecError(str(e)) from None
    if cell.metric not in METRICS:
        raise SpecError(
            f"unknown metric {cell.metric!r}; expected one of {METRICS}"
        )
    for attr in ("width", "steps"):
        value = getattr(cell, attr)
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise SpecError(f"{attr} must be an integer >= 1, got {value!r}")
    if (not isinstance(cell.payload_bytes, int)
            or isinstance(cell.payload_bytes, bool)
            or cell.payload_bytes < 0):
        raise SpecError(
            f"payload_bytes must be an integer >= 0, got {cell.payload_bytes!r}"
        )
    if cell.workers < 1:
        raise SpecError(f"workers must be >= 1, got {cell.workers}")
    if cell.iterations < 0:
        raise SpecError(f"iterations must be >= 0, got {cell.iterations}")
    if not 0.0 < cell.target < 1.0:
        raise SpecError(f"target must be in (0, 1), got {cell.target}")
    if cell.max_iterations < 1:
        raise SpecError(
            f"max_iterations must be >= 1, got {cell.max_iterations}"
        )
    if cell.timeout is not None and cell.timeout <= 0:
        raise SpecError(f"timeout must be > 0, got {cell.timeout}")


@lru_cache(maxsize=4096)
def _graph_template(pattern: str, width: int, steps: int,
                    payload_bytes: int, kernel: str,
                    iterations: int) -> TaskGraph:
    graph = TaskGraph(
        timesteps=steps,
        max_width=width,
        dependence=DependenceType.parse(pattern),
        kernel=Kernel(
            kernel_type=KernelType.parse(kernel), iterations=iterations
        ),
        output_bytes_per_task=payload_bytes,
    )
    graph.spec  # materialize the dependence relation into the template
    return graph


@dataclass(frozen=True)
class SuiteSpec:
    """A full suite: axes, shared cell configuration, exclusion rules."""

    name: str
    runtimes: Tuple[str, ...]
    patterns: Tuple[str, ...]
    widths: Tuple[int, ...] = (4,)
    steps: Tuple[int, ...] = (10,)
    payload_bytes: Tuple[int, ...] = (16,)
    metrics: Tuple[str, ...] = ("run",)
    workers: int = 2
    kernel: str = "compute_bound"
    iterations: int = 1024
    target: float = 0.5
    max_iterations: int = 1 << 22
    nodes: int = 1
    cores_per_node: int = 0
    timeout: float | None = None
    #: Hard wall-clock deadline per cell; the scheduler kills and fails a
    #: cell that exceeds it (None = no deadline).
    cell_timeout: float | None = None
    #: Exclusion rules: a cell matching *every* axis constraint of *any*
    #: rule is dropped from the suite.  Each rule maps an axis name to one
    #: value or a list of values.
    exclude: Tuple[Mapping[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise SpecError(f"suite name must be a non-empty slug, got {self.name!r}")
        if not self.runtimes:
            raise SpecError("a suite needs at least one runtime")
        if not self.patterns:
            raise SpecError("a suite needs at least one dependence pattern")
        known = set(available_runtimes())
        systems = set(all_systems())
        for rt in self.runtimes:
            if rt.startswith("sim:"):
                if rt[len("sim:"):] not in systems:
                    raise SpecError(
                        f"unknown simulated system {rt!r}; available: "
                        f"{', '.join('sim:' + s for s in sorted(systems))}"
                    )
            elif rt not in known:
                raise SpecError(
                    f"unknown runtime {rt!r}; available: {', '.join(sorted(known))}"
                )
        for pattern in self.patterns:
            try:
                DependenceType.parse(pattern)
            except ValueError as e:
                raise SpecError(str(e)) from None
        try:
            KernelType.parse(self.kernel)
        except ValueError as e:
            raise SpecError(str(e)) from None
        for metric in self.metrics:
            if metric not in METRICS:
                raise SpecError(
                    f"unknown metric {metric!r}; expected one of {METRICS}"
                )
        for attr in ("widths", "steps", "payload_bytes"):
            values = getattr(self, attr)
            if not values:
                raise SpecError(f"axis {attr!r} must not be empty")
            if any((not isinstance(v, int)) or isinstance(v, bool) or v < 0
                   for v in values):
                raise SpecError(f"axis {attr!r} must hold non-negative integers")
        if any(v < 1 for v in self.widths) or any(v < 1 for v in self.steps):
            raise SpecError("widths and steps must be >= 1")
        if self.workers < 1:
            raise SpecError(f"workers must be >= 1, got {self.workers}")
        if self.iterations < 0:
            raise SpecError(f"iterations must be >= 0, got {self.iterations}")
        if not 0.0 < self.target < 1.0:
            raise SpecError(f"target must be in (0, 1), got {self.target}")
        if self.timeout is not None and self.timeout <= 0:
            raise SpecError(f"timeout must be > 0, got {self.timeout}")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise SpecError(f"cell_timeout must be > 0, got {self.cell_timeout}")
        for rule in self.exclude:
            if not rule:
                raise SpecError("an exclusion rule must constrain an axis")
            for axis in rule:
                if axis not in EXCLUDABLE_AXES:
                    raise SpecError(
                        f"exclusion rule axis {axis!r} unknown; expected one "
                        f"of {EXCLUDABLE_AXES}"
                    )

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def cells(self) -> List[Cell]:
        """The suite's cells: full cross-product minus exclusions, sorted
        by key (the deterministic scheduling and reporting order)."""
        out = []
        for metric, rt, pattern, width, steps, payload in itertools.product(
            self.metrics, self.runtimes, self.patterns, self.widths,
            self.steps, self.payload_bytes,
        ):
            cell = Cell(
                runtime=rt,
                pattern=pattern,
                width=width,
                steps=steps,
                payload_bytes=payload,
                metric=metric,
                workers=self.workers,
                kernel=self.kernel,
                iterations=self.iterations,
                target=self.target,
                max_iterations=self.max_iterations,
                nodes=self.nodes,
                cores_per_node=self.cores_per_node,
                timeout=self.timeout,
            )
            if not self._excluded(cell):
                out.append(cell)
        out.sort(key=lambda c: c.key)
        if not out:
            raise SpecError("the exclusion rules removed every cell")
        keys = [c.key for c in out]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise SpecError(f"duplicate cells in the cross-product: {dupes}")
        return out

    def _excluded(self, cell: Cell) -> bool:
        for rule in self.exclude:
            if all(_matches(getattr(cell, axis), wanted)
                   for axis, wanted in rule.items()):
                return True
        return False

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_mapping(self) -> dict:
        """Canonical JSON-ready form (tuples as lists, sorted rules)."""
        data = asdict(self)
        data["schema_version"] = SPEC_SCHEMA_VERSION
        for key, value in data.items():
            if isinstance(value, tuple):
                data[key] = list(value)
        data["exclude"] = [dict(sorted(r.items())) for r in self.exclude]
        return data

    def fingerprint(self) -> str:
        """Stable digest of the canonical form; the checkpoint store uses
        it to refuse resuming a store built from a different spec."""
        canonical = json.dumps(self.to_mapping(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _matches(value: Any, wanted: Any) -> bool:
    if isinstance(wanted, (list, tuple)):
        return value in wanted
    return value == wanted


#: Spec fields that arrive as lists (normalized from scalars on load).
_AXIS_FIELDS = ("runtimes", "patterns", "widths", "steps", "payload_bytes",
                "metrics")


def spec_from_mapping(data: Mapping[str, Any], *,
                      default_name: str = "suite") -> SuiteSpec:
    """Build a :class:`SuiteSpec` from a parsed JSON/TOML mapping.

    Unknown keys are rejected (a typoed axis silently shrinking a sweep is
    exactly the failure mode a declarative spec exists to prevent); scalar
    axis values are promoted to single-element axes.
    """
    if not isinstance(data, Mapping):
        raise SpecError(f"a suite spec must be a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(SuiteSpec)}
    payload: dict = {}
    for key, value in data.items():
        if key == "schema_version":
            if value != SPEC_SCHEMA_VERSION:
                raise SpecError(
                    f"unsupported spec schema_version {value!r} "
                    f"(this build reads {SPEC_SCHEMA_VERSION})"
                )
            continue
        if key not in known:
            raise SpecError(
                f"unknown spec key {key!r}; known keys: "
                f"{', '.join(sorted(known))}"
            )
        if key in _AXIS_FIELDS:
            if isinstance(value, (str, int)) and not isinstance(value, bool):
                value = [value]
            if not isinstance(value, (list, tuple)):
                raise SpecError(f"spec key {key!r} must be a value or a list")
            payload[key] = tuple(value)
        elif key == "exclude":
            if not isinstance(value, (list, tuple)):
                raise SpecError("spec key 'exclude' must be a list of rules")
            payload[key] = tuple(dict(rule) for rule in value)
        else:
            payload[key] = value
    payload.setdefault("name", default_name)
    try:
        return SuiteSpec(**payload)
    except TypeError as e:
        raise SpecError(str(e)) from None


def load_spec(path: str | Path) -> SuiteSpec:
    """Load a suite spec from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as e:
        raise SpecError(f"cannot read spec {path}: {e}") from None
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python 3.10
            raise SpecError(
                "TOML specs need Python 3.11+ (tomllib); use JSON instead"
            ) from None
        try:
            data = tomllib.loads(raw.decode())
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as e:
            raise SpecError(f"{path}: {e}") from None
    elif path.suffix == ".json":
        try:
            data = json.loads(raw)
        except ValueError as e:
            raise SpecError(f"{path}: {e}") from None
    else:
        raise SpecError(
            f"spec {path} must be a .json or .toml file"
        )
    return spec_from_mapping(data, default_name=path.stem)


__all__ = [
    "Cell",
    "EXCLUDABLE_AXES",
    "METRICS",
    "SPEC_SCHEMA_VERSION",
    "SpecError",
    "SuiteSpec",
    "load_spec",
    "spec_from_mapping",
    "validate_cell",
]
