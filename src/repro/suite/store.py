"""Checkpointing result store: one atomic JSON record per completed cell.

The store is what makes a suite *resumable*: every finished cell is
durably recorded before the scheduler moves on, each record is written
with a write-temp-then-rename so a ``kill -9`` can never leave a
half-written record behind, and a rerun consults :meth:`SuiteStore.completed`
to run only the remainder.

Aggregation is a pure function of the record set — rendering the same
store twice yields byte-identical output, which is how a killed-and-resumed
suite is verified against an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .spec import SuiteSpec, spec_from_mapping

RECORD_SCHEMA_VERSION = 1

#: Terminal statuses: the cell ran to a durable conclusion and a resume
#: must not repeat it.  ``unachievable`` is a legitimate result — the paper
#: omits such system/pattern combinations from its figures (§5.3) — while
#: ``failed`` cells are retried by the next resume.
TERMINAL_STATUSES = ("ok", "unachievable")

#: Measurement columns of the aggregate, in render order.
VALUE_COLUMNS = (
    "metg_seconds",
    "efficiency",
    "granularity_seconds",
    "flops_per_second",
    "probes",
)

#: Cell-identity columns of the aggregate, in render order.
CELL_COLUMNS = ("key", "metric", "runtime", "pattern", "width", "steps",
                "payload_bytes", "status")


class StoreError(RuntimeError):
    """Raised for store-level inconsistencies (e.g. spec mismatch)."""


class SuiteStore:
    """Directory-backed store: ``<root>/spec.json`` + ``<root>/cells/*.json``."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.cells_dir = self.root / "cells"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def ensure(self, spec: SuiteSpec) -> None:
        """Create the store layout (idempotent) and bind it to ``spec``.

        A store holds results of exactly one spec: resuming with a spec
        whose fingerprint differs from the recorded one raises
        :class:`StoreError` instead of silently mixing sweeps.
        """
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        spec_path = self.root / "spec.json"
        if spec_path.exists():
            try:
                recorded = spec_from_mapping(json.loads(spec_path.read_text()))
            except ValueError as e:
                raise StoreError(f"{spec_path} is unreadable: {e}") from None
            if recorded.fingerprint() != spec.fingerprint():
                raise StoreError(
                    f"store {self.root} was built from spec "
                    f"{recorded.name!r} ({recorded.fingerprint()}); refusing "
                    f"to mix in spec {spec.name!r} ({spec.fingerprint()}) — "
                    "use a fresh --out directory"
                )
            return
        _atomic_write_json(spec_path, spec.to_mapping())

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def cell_path(self, key: str) -> Path:
        return self.cells_dir / f"{key}.json"

    def write(self, record: Mapping[str, Any]) -> Path:
        """Durably record one finished cell (atomic rename)."""
        key = record.get("key")
        if not key or not isinstance(key, str):
            raise StoreError(f"record has no cell key: {record!r}")
        record = {"schema_version": RECORD_SCHEMA_VERSION, **record}
        path = self.cell_path(key)
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(path, record)
        return path

    def read(self, key: str) -> Optional[Dict[str, Any]]:
        """The record for ``key``, or None if absent or unreadable (a
        half-written leftover temp never shadows a real record)."""
        try:
            return json.loads(self.cell_path(key).read_text())
        except OSError:
            return None
        except ValueError:
            return None

    def records(self) -> List[Dict[str, Any]]:
        """All readable records, sorted by cell key (deterministic)."""
        if not self.cells_dir.is_dir():
            return []
        out = []
        for path in sorted(self.cells_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(record, dict) and record.get("key"):
                out.append(record)
        out.sort(key=lambda r: r["key"])
        return out

    def completed(self) -> set:
        """Keys whose cells reached a terminal status (skipped on resume)."""
        return {
            r["key"] for r in self.records()
            if r.get("status") in TERMINAL_STATUSES
        }


def _atomic_write_json(path: Path, payload: Mapping[str, Any]) -> None:
    """Write JSON so readers observe either nothing or the whole record."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# Aggregation: records -> rows -> table / CSV
# ---------------------------------------------------------------------------
def aggregate_rows(records: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Flatten records into deterministic aggregate rows.

    One row per record, ordered by cell key, with a fixed column set
    (:data:`CELL_COLUMNS` + :data:`VALUE_COLUMNS`); measurements a cell did
    not produce are ``None``.  Rows are plain scalars, ready for CSV, for
    the text table, and for :func:`repro.analysis.figures.suite_series`.
    """
    rows = []
    for record in sorted(records, key=lambda r: r.get("key", "")):
        cell = record.get("cell", {})
        measurements = record.get("measurements", {})
        row: Dict[str, Any] = {"key": record.get("key")}
        for column in CELL_COLUMNS[1:-1]:
            row[column] = cell.get(column)
        row["status"] = record.get("status")
        for column in VALUE_COLUMNS:
            row[column] = measurements.get(column)
        rows.append(row)
    return rows


def _format_value(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6e}"
    return str(value)


def render_table(rows: Sequence[Mapping[str, Any]]) -> str:
    """Fixed-width aggregate table (deterministic for a given row set)."""
    columns = list(CELL_COLUMNS[1:]) + list(VALUE_COLUMNS)
    cells = [[_format_value(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in cells)) if cells
        else len(column)
        for i, column in enumerate(columns)
    ]
    lines = ["  ".join(c.ljust(w) for c, w in zip(columns, widths)).rstrip()]
    for line in cells:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(line, widths)).rstrip()
        )
    return "\n".join(lines)


def render_csv(rows: Sequence[Mapping[str, Any]]) -> str:
    """Aggregate CSV (deterministic for a given row set)."""
    columns = list(CELL_COLUMNS) + list(VALUE_COLUMNS)
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(
            "" if row.get(c) is None else _format_value(row.get(c))
            for c in columns
        ))
    return "\n".join(lines) + "\n"


def load_rows(path: str | Path) -> List[Dict[str, Any]]:
    """Read an aggregate CSV back into rows (numeric columns coerced), so
    downstream plotting does not need the original store."""
    import csv

    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        rows = []
        for entry in reader:
            row: Dict[str, Any] = {}
            for column, text in entry.items():
                if text == "" or text is None:
                    row[column] = None
                elif column in ("width", "steps", "payload_bytes", "probes"):
                    row[column] = int(float(text))
                elif column in VALUE_COLUMNS:
                    row[column] = float(text)
                else:
                    row[column] = text
            rows.append(row)
    return rows


__all__ = [
    "CELL_COLUMNS",
    "RECORD_SCHEMA_VERSION",
    "StoreError",
    "SuiteStore",
    "TERMINAL_STATUSES",
    "VALUE_COLUMNS",
    "aggregate_rows",
    "load_rows",
    "render_csv",
    "render_table",
]
