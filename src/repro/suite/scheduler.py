"""Resource-aware parallel suite scheduler.

Runs the independent cells of a :class:`~repro.suite.spec.SuiteSpec`
concurrently, each in its own forked worker process, under three admission
rules:

1. **Job cap** — at most ``jobs`` cells in flight.
2. **Core budget** — the sum of running cells' core costs (from
   :func:`repro.runtimes.registry.runtime_core_cost`) never exceeds the
   host budget, so two process-pool cells cannot oversubscribe the machine
   and corrupt each other's timings.  A single cell larger than the budget
   still runs — alone.
3. **Isolation exclusivity** — cells whose executor substrate claims
   host-global resources are serialized against their
   :attr:`~repro.core.executor_base.Executor.isolation` metadata:
   ``cluster`` cells (socket meshes, rank process trees) never overlap
   another cluster cell, and ``shm_processes`` cells never overlap each
   other (they contend for /dev/shm capacity).

Cross-cell caching: the scheduler calibrates the kernel's peak FLOP/s
*once*, before any cell runs, and pins it via ``TASKBENCH_PEAK_FLOPS`` so
every cell — in every worker process — shares one 100 %-efficiency
reference (otherwise each cell's efficiencies would be scaled by its own
noisy calibration and METG would not be comparable across cells).  Within
a cell, task-graph construction is memoized and the probes of a sweep
reuse one warm runner (persistent pools stay up across probes).

Every finished cell is durably recorded in the
:class:`~repro.suite.store.SuiteStore` before the scheduler moves on, so a
killed suite resumes with only the remainder.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Callable, List, Optional, Sequence

from ..metg.efficiency import measure
from ..metg.metg import METGUnachievable, metg
from ..metg.runners import (
    PEAK_FLOPS_ENV,
    RealRunner,
    SimRunner,
    peak_flops_per_core,
)
from ..runtimes.registry import (
    make_executor,
    runtime_core_cost,
    runtime_isolation,
)
from ..sim.machine import MachineSpec
from .spec import Cell, SuiteSpec
from .store import SuiteStore

#: Isolation classes that must never overlap a running cell of the same
#: class (host-global substrate: socket meshes + rank process trees).
EXCLUSIVE_ISOLATION = frozenset({"cluster"})

#: Runtimes serialized against themselves (shared /dev/shm capacity).
SERIALIZED_RUNTIMES = frozenset({"shm_processes"})

#: How long a deadline-exceeded or shutdown-terminated cell worker gets to
#: die gracefully before escalating to SIGKILL.
_REAP_GRACE_SECONDS = 5.0


@dataclass(frozen=True)
class SuiteSummary:
    """Outcome of one scheduler invocation."""

    total: int
    skipped: int
    ok: int
    unachievable: int
    failed: int
    wall_seconds: float

    @property
    def ran(self) -> int:
        return self.ok + self.unachievable + self.failed

    def report_lines(self) -> List[str]:
        return [
            f"Suite Cells {self.total} ({self.skipped} already complete)",
            f"Suite Ran {self.ran} ({self.ok} ok, "
            f"{self.unachievable} unachievable, {self.failed} failed)",
            f"Suite Wall Time {self.wall_seconds:e} seconds",
        ]


# ---------------------------------------------------------------------------
# Cell execution (runs inside a forked worker process)
# ---------------------------------------------------------------------------
def _make_runner(cell: Cell):
    if cell.is_simulated:
        machine = MachineSpec(
            nodes=cell.nodes, cores_per_node=cell.cores_per_node or 32
        )
        return SimRunner(cell.runtime[len("sim:"):], machine)
    kwargs: dict = {}
    if cell.timeout is not None:
        kwargs["timeout"] = cell.timeout
    return RealRunner(make_executor(cell.runtime, workers=cell.workers, **kwargs))


def run_cell(cell: Cell, runner=None) -> dict:
    """Execute one cell to a durable record (never raises).

    One runner serves every probe of the cell, so persistent substrates
    (fork pools, slab pools, rank meshes) stay warm across the sweep.  By
    default the runner is built here and closed before the record is
    returned, so worker trees never outlive the cell; a caller that owns
    a warm runner (the serve daemon checking an executor out of its warm
    pool) passes it in and keeps responsibility for its lifecycle — the
    cell then runs without paying substrate construction, and ``run_cell``
    never closes what it did not open.
    """
    started = time.perf_counter()
    status, error = "ok", None
    measurements: dict = {}
    owns_runner = runner is None
    try:
        if runner is None:
            runner = _make_runner(cell)
        if cell.metric == "run":
            m = measure(runner, cell.graphs_at, cell.iterations)
            measurements = {
                "iterations": m.iterations,
                "efficiency": m.efficiency,
                "granularity_seconds": m.granularity_seconds,
                "flops_per_second": m.flops_per_second,
                "elapsed_seconds": m.result.elapsed_seconds,
                "probes": 1,
            }
        else:
            res = metg(
                runner,
                cell.graphs_at,
                target_efficiency=cell.target,
                start_iterations=max(1, cell.iterations),
                max_iterations=cell.max_iterations,
            )
            measurements = {
                "metg_seconds": res.metg_seconds,
                "efficiency": res.above.efficiency,
                "iterations": res.above.iterations,
                "flops_per_second": res.above.flops_per_second,
                "probes": len(res.history),
            }
    except METGUnachievable as e:
        status, error = "unachievable", str(e)
    except Exception as e:  # a failed cell must not sink the suite
        status, error = "failed", f"{type(e).__name__}: {e}"
    finally:
        if owns_runner and runner is not None:
            close = getattr(runner, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    pass
    record = {
        "key": cell.key,
        "cell": cell.params(),
        "status": status,
        "wall_seconds": time.perf_counter() - started,
        "measurements": measurements,
    }
    if error is not None:
        record["error"] = error
    return record


def _cell_worker(params: dict, store_root: str) -> None:
    """Worker-process entry point: run the cell, record it, exit 0."""
    store = SuiteStore(store_root)
    store.write(run_cell(Cell(**params)))


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Claim:
    """One unit of in-flight work, as admission control sees it.

    The currency shared by every layer that schedules benchmark work on
    one host — the suite scheduler's cell workers and the serve daemon's
    warm-executor jobs both admit against lists of claims, so the
    isolation-exclusivity and core-budget rules cannot drift apart.
    """

    runtime: str
    cost: int
    isolation: str


def admit(candidate: Claim, running: Sequence[Claim], max_jobs: int,
          core_budget: int) -> bool:
    """Whether ``candidate`` may start now, given the in-flight claims.

    The three admission rules of the module docstring: job cap, isolation
    exclusivity (cluster meshes never overlap; runtimes in
    :data:`SERIALIZED_RUNTIMES` never overlap themselves), and the host
    core budget.  An idle scheduler admits anything — guaranteed progress
    even for a claim larger than the budget.
    """
    if len(running) >= max_jobs:
        return False
    if not running:
        return True  # guaranteed progress: an idle scheduler admits anything
    if candidate.isolation in EXCLUSIVE_ISOLATION and any(
        claim.isolation == candidate.isolation for claim in running
    ):
        return False
    if candidate.runtime in SERIALIZED_RUNTIMES and any(
        claim.runtime == candidate.runtime for claim in running
    ):
        return False
    used = sum(claim.cost for claim in running)
    return used + candidate.cost <= core_budget


@dataclass
class _Job:
    cell: Cell
    proc: multiprocessing.process.BaseProcess
    claim: Claim
    started: float


def cell_cost(cell: Cell) -> int:
    """Host cores a running cell effectively occupies."""
    if cell.is_simulated:
        return 1  # pure in-process computation
    return runtime_core_cost(cell.runtime, cell.workers)


def cell_isolation(cell: Cell) -> str:
    return "serial" if cell.is_simulated else runtime_isolation(cell.runtime)


def claim_for_cell(cell: Cell) -> Claim:
    """The admission claim one cell occupies while it runs."""
    return Claim(
        runtime=cell.runtime,
        cost=cell_cost(cell),
        isolation=cell_isolation(cell),
    )


def admissible(cell: Cell, running: List[_Job], jobs: int,
               core_budget: int) -> bool:
    """Whether ``cell`` may start now, given the in-flight jobs."""
    return admit(
        claim_for_cell(cell), [job.claim for job in running], jobs,
        core_budget,
    )


# ---------------------------------------------------------------------------
# The scheduler loop
# ---------------------------------------------------------------------------
def run_suite(
    spec: SuiteSpec,
    store: SuiteStore,
    *,
    jobs: int = 1,
    core_budget: Optional[int] = None,
    resume: bool = False,
    echo: Optional[Callable[[str], None]] = None,
) -> SuiteSummary:
    """Run every incomplete cell of ``spec``, up to ``jobs`` at a time.

    With ``resume=True`` cells that already have a terminal record in the
    store are skipped (the kill -9 recovery path); failed cells are always
    retried.  Returns a :class:`SuiteSummary`; per-cell results live in
    the store.
    """
    emit = echo if echo is not None else (lambda line: None)
    store.ensure(spec)
    cells = spec.cells()
    done = store.completed() if resume else set()
    pending = deque(cell for cell in cells if cell.key not in done)
    skipped = len(cells) - len(pending)
    jobs = max(1, jobs)
    budget = core_budget if core_budget is not None else (os.cpu_count() or 1)
    budget = max(1, budget)
    started_wall = time.perf_counter()
    counts = {"ok": 0, "unachievable": 0, "failed": 0}
    total = len(pending)
    launched = 0

    restore_env = _pin_calibration(pending, emit)
    ctx = _fork_context()
    running: List[_Job] = []
    try:
        while pending or running:
            # First-fit launch scan: a blocked cluster cell at the head of
            # the queue must not starve admissible smaller cells behind it.
            progressed = True
            while progressed and pending and len(running) < jobs:
                progressed = False
                for i, cell in enumerate(pending):
                    if admissible(cell, running, jobs, budget):
                        del pending[i]
                        proc = ctx.Process(
                            target=_cell_worker,
                            args=(cell.params(), str(store.root)),
                        )
                        proc.start()
                        launched += 1
                        emit(f"[{launched}/{total}] start {cell.key}")
                        running.append(_Job(
                            cell=cell,
                            proc=proc,
                            claim=claim_for_cell(cell),
                            started=time.perf_counter(),
                        ))
                        progressed = True
                        break
            ready = mp_connection.wait(
                [job.proc.sentinel for job in running],
                timeout=_wait_timeout(running, spec.cell_timeout),
            )
            now = time.perf_counter()
            for job in list(running):
                if job.proc.sentinel in ready or not job.proc.is_alive():
                    job.proc.join()
                    running.remove(job)
                    status = _conclude(store, job, emit)
                    counts[status] = counts.get(status, 0) + 1
                elif (
                    spec.cell_timeout is not None
                    and now - job.started > spec.cell_timeout
                ):
                    _reap(job.proc)
                    running.remove(job)
                    store.write({
                        "key": job.cell.key,
                        "cell": job.cell.params(),
                        "status": "failed",
                        "wall_seconds": now - job.started,
                        "measurements": {},
                        "error": (
                            f"cell deadline exceeded "
                            f"({spec.cell_timeout:g}s); worker killed"
                        ),
                    })
                    counts["failed"] += 1
                    emit(f"  kill {job.cell.key}: cell deadline exceeded")
    finally:
        for job in running:
            _reap(job.proc)
        restore_env()
    return SuiteSummary(
        total=len(cells),
        skipped=skipped,
        ok=counts["ok"],
        unachievable=counts["unachievable"],
        failed=counts["failed"],
        wall_seconds=time.perf_counter() - started_wall,
    )


def _conclude(store: SuiteStore, job: _Job, emit) -> str:
    """Classify a finished worker and make sure a record exists."""
    record = store.read(job.cell.key)
    if job.proc.exitcode == 0 and record is not None:
        status = str(record.get("status", "failed"))
        highlight = _highlight(record)
        emit(f"  done {job.cell.key}: {status}{highlight}")
        return status
    # The worker died before recording (interpreter crash, OOM kill):
    # record the failure so the aggregate names the hole; a resume retries.
    store.write({
        "key": job.cell.key,
        "cell": job.cell.params(),
        "status": "failed",
        "wall_seconds": time.perf_counter() - job.started,
        "measurements": {},
        "error": f"cell worker exited with code {job.proc.exitcode} "
                 "before recording a result",
    })
    emit(f"  done {job.cell.key}: failed (worker exit "
         f"{job.proc.exitcode})")
    return "failed"


def _highlight(record: dict) -> str:
    m = record.get("measurements") or {}
    if m.get("metg_seconds") is not None:
        return (f" (METG {m['metg_seconds']:.3e}s, "
                f"{m.get('probes', 0)} probes)")
    if m.get("granularity_seconds") is not None:
        eff = m.get("efficiency")
        eff_text = f", eff {eff:.3f}" if eff is not None else ""
        return f" (granularity {m['granularity_seconds']:.3e}s{eff_text})"
    return ""


def _wait_timeout(running: List[_Job], cell_timeout: Optional[float]):
    if not running:
        return 0.0
    if cell_timeout is None:
        return None  # sentinels alone wake the scheduler
    now = time.perf_counter()
    remaining = min(cell_timeout - (now - job.started) for job in running)
    return max(0.05, remaining)


def _reap(proc: multiprocessing.process.BaseProcess) -> None:
    """Terminate a worker, escalating to SIGKILL if it lingers."""
    if not proc.is_alive():
        proc.join()
        return
    proc.terminate()
    proc.join(_REAP_GRACE_SECONDS)
    if proc.is_alive():
        proc.kill()
        proc.join()


def _pin_calibration(pending, emit) -> Callable[[], None]:
    """Calibrate once, before any cell runs, and export the reference.

    Pins ``TASKBENCH_PEAK_FLOPS`` so every cell worker inherits the same
    per-core peak instead of each calibrating its own noisy reference.
    Returns a closure restoring the previous environment.
    """
    if all(cell.is_simulated for cell in pending):
        return lambda: None
    previous = os.environ.get(PEAK_FLOPS_ENV)
    if previous is None:
        peak = peak_flops_per_core()
        os.environ[PEAK_FLOPS_ENV] = repr(peak)
        emit(f"calibrated kernel peak: {peak:.3e} FLOP/s per core")

    def restore() -> None:
        if previous is None:
            os.environ.pop(PEAK_FLOPS_ENV, None)
        else:
            os.environ[PEAK_FLOPS_ENV] = previous

    return restore


def _fork_context():
    """Fork workers when the platform offers it (cheap, inherits the
    calibration cache and graph memo); otherwise the default context."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


__all__ = [
    "EXCLUSIVE_ISOLATION",
    "SERIALIZED_RUNTIMES",
    "Claim",
    "SuiteSummary",
    "admissible",
    "admit",
    "cell_cost",
    "cell_isolation",
    "claim_for_cell",
    "run_cell",
    "run_suite",
]
