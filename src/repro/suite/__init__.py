"""Suite orchestration: parallel, resumable benchmark-sweep harness.

The paper's evaluation is a cross-product — systems × patterns × node
counts × granularities (Figures 3-9) — and this package is the layer that
runs such cross-products as one job: a declarative :class:`SuiteSpec`
(:mod:`repro.suite.spec`), a resource-aware parallel scheduler
(:mod:`repro.suite.scheduler`), and a checkpointing result store
(:mod:`repro.suite.store`) that makes a killed sweep resumable.

Surfaced on the command line as ``task-bench suite SPEC [--jobs N]
[--resume] [--report]``.
"""

from .scheduler import (
    Claim,
    SuiteSummary,
    admit,
    claim_for_cell,
    run_cell,
    run_suite,
)
from .spec import (
    Cell,
    SpecError,
    SuiteSpec,
    load_spec,
    spec_from_mapping,
    validate_cell,
)
from .store import (
    StoreError,
    SuiteStore,
    aggregate_rows,
    load_rows,
    render_csv,
    render_table,
)

__all__ = [
    "Cell",
    "Claim",
    "SpecError",
    "StoreError",
    "SuiteSpec",
    "SuiteStore",
    "SuiteSummary",
    "admit",
    "aggregate_rows",
    "claim_for_cell",
    "load_rows",
    "load_spec",
    "render_csv",
    "render_table",
    "run_cell",
    "run_suite",
    "spec_from_mapping",
    "validate_cell",
]
