"""Weak and strong scaling studies and their relationship to METG
(paper §4, Figures 4-5).

* Weak scaling: problem size *per node* fixed; width grows with the
  machine.  A configuration weak-scales at >=50 % efficiency as long as its
  per-task granularity stays above METG(50%) at that node count.
* Strong scaling: *total* problem size fixed; per-task work shrinks as the
  machine grows.  Scaling stops where the shrinking granularity crosses
  METG(50%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.kernels import Kernel
from ..core.task_graph import TaskGraph
from ..core.types import DependenceType, KernelType
from ..sim.machine import MachineSpec
from ..sim.network import ARIES, NetworkModel
from ..sim.runtime_model import RuntimeModel
from ..sim.simulator import simulate
from ..sim.systems import scaled_for


@dataclass(frozen=True)
class ScalingPoint:
    """One node count of a scaling study."""

    nodes: int
    iterations_per_task: int
    wall_seconds: float
    efficiency: float
    granularity_seconds: float


def _run_at_scale(
    model: RuntimeModel,
    machine: MachineSpec,
    network: NetworkModel,
    nodes: int,
    iterations: int,
    steps: int,
    dependence: DependenceType,
    radix: int,
) -> ScalingPoint:
    mach = machine.with_nodes(nodes)
    scaled = scaled_for(model, mach)
    width = nodes * scaled.worker_cores_per_node(mach.cores_per_node)
    g = TaskGraph(
        timesteps=steps,
        max_width=width,
        dependence=dependence,
        radix=radix,
        kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=iterations),
    )
    r = simulate([g], mach, scaled, network)
    return ScalingPoint(
        nodes=nodes,
        iterations_per_task=iterations,
        wall_seconds=r.elapsed_seconds,
        efficiency=r.flops_per_second / mach.peak_flops,
        granularity_seconds=r.task_granularity_seconds,
    )


def weak_scaling(
    model: RuntimeModel,
    node_counts: Sequence[int],
    iterations_per_task: int,
    *,
    machine: MachineSpec | None = None,
    network: NetworkModel = ARIES,
    steps: int = 100,
    dependence: DependenceType = DependenceType.STENCIL_1D,
    radix: int = 3,
) -> List[ScalingPoint]:
    """Fixed work per task; width (and total work) grows with node count.

    Ideal weak scaling is a flat wall-time line (paper Figure 4)."""
    machine = machine or MachineSpec()
    return [
        _run_at_scale(
            model, machine, network, n, iterations_per_task, steps, dependence, radix
        )
        for n in node_counts
    ]


def strong_scaling(
    model: RuntimeModel,
    node_counts: Sequence[int],
    total_iterations: int,
    *,
    machine: MachineSpec | None = None,
    network: NetworkModel = ARIES,
    steps: int = 100,
    dependence: DependenceType = DependenceType.STENCIL_1D,
    radix: int = 3,
) -> List[ScalingPoint]:
    """Fixed total work; per-task work shrinks as the machine grows.

    Ideal strong scaling halves wall time per node doubling (paper
    Figure 5); scaling stops where granularity hits METG."""
    machine = machine or MachineSpec()
    out = []
    for n in node_counts:
        mach = machine.with_nodes(n)
        scaled = scaled_for(model, mach)
        width = n * scaled.worker_cores_per_node(mach.cores_per_node)
        iters = max(1, total_iterations // (width * steps))
        out.append(
            _run_at_scale(model, machine, network, n, iters, steps, dependence, radix)
        )
    return out


def strong_scaling_limit_nodes(points: Sequence[ScalingPoint],
                               threshold: float = 0.5) -> int:
    """Largest node count still at or above the efficiency threshold —
    "the point at which strong scaling can be expected to stop" (§4)."""
    ok = [p.nodes for p in points if p.efficiency >= threshold]
    return max(ok) if ok else 0
