"""METG: minimum effective task granularity (paper §4).

The efficiency-constrained metric for runtime-limited performance, plus the
sweep/scaling machinery it is computed from.  Works identically against the
simulator substrate (:class:`~repro.metg.runners.SimRunner`) and real
executors (:class:`~repro.metg.runners.RealRunner`).
"""

from .efficiency import (
    GraphFactory,
    Measurement,
    compute_workload,
    efficiency_curve,
    measure,
    memory_workload,
)
from .metg import METGResult, METGUnachievable, metg
from .runners import (
    RealRunner,
    SimRunner,
    calibrate_kernel_flops,
    peak_flops_per_core,
)
from .scaling import (
    ScalingPoint,
    strong_scaling,
    strong_scaling_limit_nodes,
    weak_scaling,
)

__all__ = [
    "GraphFactory",
    "METGResult",
    "METGUnachievable",
    "Measurement",
    "RealRunner",
    "ScalingPoint",
    "SimRunner",
    "calibrate_kernel_flops",
    "compute_workload",
    "efficiency_curve",
    "measure",
    "memory_workload",
    "metg",
    "peak_flops_per_core",
    "strong_scaling",
    "strong_scaling_limit_nodes",
    "weak_scaling",
]
