"""Efficiency curves: throughput vs problem size / task granularity.

The raw material of the METG metric (paper §4, Figures 2-3): run the same
machine and software configuration at a sweep of problem sizes (compute
kernel iteration counts) and record achieved throughput, efficiency, and
mean task granularity.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..core.kernels import Kernel
from ..core.metrics import FaultStats, RunResult
from ..core.task_graph import TaskGraph
from ..core.types import KernelType
from ..runtimes._procpool import WorkerCrashError, WorkerTimeoutError

#: Failures considered transient at the probe level: the pool supervised
#: them, reaped the dead worker, and will self-heal on the next run — so
#: re-running the probe is sound and cheap (no refork of survivors).
TRANSIENT_ERRORS = (WorkerCrashError, WorkerTimeoutError)

#: First retry backoff; doubles per attempt (a crashed probe's respawn is
#: cheap, but a timeout often means the host is momentarily oversubscribed).
RETRY_BACKOFF_SECONDS = 0.05


@dataclass(frozen=True)
class Measurement:
    """One point of an efficiency curve."""

    iterations: int
    result: RunResult
    efficiency: float

    @property
    def granularity_seconds(self) -> float:
        """Mean task granularity (wall time x cores / tasks, paper §4)."""
        return self.result.task_granularity_seconds

    @property
    def flops_per_second(self) -> float:
        return self.result.flops_per_second

    @property
    def bytes_per_second(self) -> float:
        return self.result.bytes_per_second


#: A workload: maps an iteration count to the graphs to execute.
GraphFactory = Callable[[int], Sequence[TaskGraph]]


def compute_workload(
    width: int,
    steps: int = 100,
    *,
    dependence=None,
    radix: int = 3,
    ngraphs: int = 1,
    output_bytes: int = 16,
    kernel_type: KernelType = KernelType.COMPUTE_BOUND,
    imbalance: float = 0.0,
    persistent_imbalance: bool = False,
    seed: int = 12345,
) -> GraphFactory:
    """Standard METG workload: ``ngraphs`` identical graphs of the given
    pattern whose task duration is set by the compute-kernel iteration
    count (paper §4: "the problem size is then repeatedly reduced while
    maintaining exactly the same hardware and software configuration")."""
    from ..core.types import DependenceType

    dep = dependence if dependence is not None else DependenceType.STENCIL_1D

    def factory(iterations: int) -> List[TaskGraph]:
        kernel = Kernel(
            kernel_type=kernel_type,
            iterations=iterations,
            imbalance=imbalance,
            persistent=persistent_imbalance,
        )
        return [
            TaskGraph(
                timesteps=steps,
                max_width=width,
                dependence=dep,
                radix=radix,
                kernel=kernel,
                output_bytes_per_task=output_bytes,
                graph_index=k,
                seed=seed,
            )
            for k in range(ngraphs)
        ]

    return factory


def memory_workload(
    width: int,
    steps: int = 100,
    *,
    dependence=None,
    span_bytes: int = 4096,
    scratch_bytes: int = 1 << 20,
    output_bytes: int = 16,
    seed: int = 12345,
) -> GraphFactory:
    """Memory-bound METG workload (paper §5.2): constant working set
    (``scratch_bytes``), problem size set by the iteration count."""
    from ..core.types import DependenceType

    dep = dependence if dependence is not None else DependenceType.STENCIL_1D

    def factory(iterations: int) -> List[TaskGraph]:
        kernel = Kernel(
            kernel_type=KernelType.MEMORY_BOUND,
            iterations=iterations,
            span_bytes=span_bytes,
        )
        return [
            TaskGraph(
                timesteps=steps,
                max_width=width,
                dependence=dep,
                kernel=kernel,
                output_bytes_per_task=output_bytes,
                scratch_bytes_per_task=scratch_bytes,
                seed=seed,
            )
        ]

    return factory


def measure(runner, factory: GraphFactory, iterations: int,
            *, metric: str = "flops",
            max_retries: int | None = None) -> Measurement:
    """Run the workload at one problem size and compute its efficiency.

    ``metric`` selects the throughput measure: ``"flops"`` (compute-bound)
    or ``"bytes"`` (memory-bound), against the runner's calibrated peak.

    Transient worker failures (a crashed or deadline-killed worker — see
    :data:`TRANSIENT_ERRORS`) are retried with exponential backoff up to
    ``max_retries`` times (default: the runner's ``max_retries`` attribute,
    else 0), so one injected or real crash costs one probe rather than the
    whole sweep.  Retries that occurred are recorded in the measurement's
    ``result.faults.probe_retries``.
    """
    budget = (
        max_retries
        if max_retries is not None
        else getattr(runner, "max_retries", 0)
    )
    attempt = 0
    while True:
        # Fresh graphs on every attempt: a partially-executed run may have
        # mutated graph or validation state (worker-side caches key on the
        # graph object), and a retry must observe none of it.
        graphs = factory(iterations)
        try:
            result = runner.run(graphs)
            break
        except TRANSIENT_ERRORS:
            if attempt >= budget:
                raise
            time.sleep(RETRY_BACKOFF_SECONDS * (2 ** attempt))
            attempt += 1
    if attempt:
        faults = result.faults or FaultStats()
        result = dataclasses.replace(
            result,
            faults=dataclasses.replace(
                faults, probe_retries=faults.probe_retries + attempt
            ),
        )
    if metric == "flops":
        eff = result.flops_per_second / runner.peak_flops
    elif metric == "bytes":
        eff = result.bytes_per_second / runner.peak_bytes_per_second
    else:
        raise ValueError(f"unknown efficiency metric {metric!r}")
    return Measurement(iterations=iterations, result=result, efficiency=eff)


def efficiency_curve(
    runner,
    factory: GraphFactory,
    iteration_counts: Sequence[int],
    *,
    metric: str = "flops",
) -> List[Measurement]:
    """Measure the workload at every problem size, largest first (the
    paper's presentation order: start from the configuration that proves
    peak is achievable, then shrink)."""
    return [
        measure(runner, factory, n, metric=metric)
        for n in sorted(iteration_counts, reverse=True)
    ]
