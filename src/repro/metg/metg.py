"""Minimum effective task granularity — METG (paper §4).

    "METG(50%) for an application A is the smallest average task granularity
    (i.e., task duration) such that A achieves overall efficiency of at
    least 50%."

The measurement procedure follows the paper: fix the machine and software
configuration, sweep the problem size (compute-kernel iterations per task),
and find where the efficiency curve crosses the target.  The crossing is
located by a geometric bracket search plus bisection, then the granularity
at the crossing is log-interpolated between the bracketing measurements
(the "intersection of this curve with 50% efficiency" of Figure 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from .efficiency import GraphFactory, Measurement, measure


class METGUnachievable(RuntimeError):
    """The configuration cannot reach the requested efficiency at any
    problem size (e.g. reserved cores or load imbalance cap peak below the
    target, or a controller bound dominates).  The paper omits such
    system/pattern combinations from its figures (§5.3: "Spark, Swift/T and
    TensorFlow are omitted ... as the overheads of these systems require
    excessive problem sizes")."""


@dataclass(frozen=True)
class METGResult:
    """Outcome of a METG search."""

    metg_seconds: float
    target_efficiency: float
    #: Bracketing measurements: just below and at/above the target.
    below: Measurement | None
    above: Measurement
    #: Every measurement taken during the search (the efficiency curve).
    history: List[Measurement]

    @property
    def metg_milliseconds(self) -> float:
        return self.metg_seconds * 1e3

    @property
    def metg_microseconds(self) -> float:
        return self.metg_seconds * 1e6


def metg(
    runner,
    factory: GraphFactory,
    *,
    target_efficiency: float = 0.5,
    metric: str = "flops",
    start_iterations: int = 1,
    max_iterations: int = 1 << 36,
    tolerance: float = 0.02,
) -> METGResult:
    """Measure METG(target) for the given runner and workload.

    Raises
    ------
    METGUnachievable
        If efficiency stays below the target all the way to
        ``max_iterations``.
    """
    if not 0.0 < target_efficiency < 1.0:
        raise ValueError("target_efficiency must be in (0, 1)")
    history: List[Measurement] = []

    def probe(iterations: int) -> Measurement:
        m = measure(runner, factory, iterations, metric=metric)
        history.append(m)
        return m

    # Phase 1: geometric growth until the target is reached.
    lo: Measurement | None = None
    n = max(1, start_iterations)
    hi = probe(n)
    if hi.efficiency >= target_efficiency:
        # The very first probe already meets the target: the crossing is
        # *below* the caller's starting guess.  Without a downward search
        # the reported METG would be an artifact of ``start_iterations``
        # (whatever granularity the caller happened to start at), so
        # geometrically shrink the problem until a probe falls below the
        # target and becomes the lower bracket.  If even one iteration per
        # task meets the target, the crossing is unobservable and the
        # smallest measurable granularity is the honest answer (lo=None).
        while hi.iterations > 1:
            m = probe(max(1, hi.iterations // 8))
            if m.efficiency >= target_efficiency:
                hi = m
            else:
                lo = m
                break
    else:
        while hi.efficiency < target_efficiency:
            lo = hi
            if n >= max_iterations:
                # Report the best efficiency seen anywhere in the sweep,
                # not the last probe's: real efficiency curves are noisy
                # and non-monotone, so the final measurement can sit well
                # below the true peak.
                peak = max(history, key=lambda m: m.efficiency)
                raise METGUnachievable(
                    f"{runner.name}: efficiency peaked at {peak.efficiency:.3f} "
                    f"at {peak.iterations} iterations/task (target "
                    f"{target_efficiency}, {len(history)} probes up to "
                    f"{n} iterations/task)"
                )
            n = min(n * 8, max_iterations)
            hi = probe(n)

    # Phase 2: bisect the bracket in log space.
    if lo is not None:
        lo_n, hi_n = lo.iterations, hi.iterations
        while hi_n > lo_n + 1 and hi_n > lo_n * (1 + tolerance):
            mid_n = int(round(math.sqrt(lo_n * hi_n)))
            mid_n = min(max(mid_n, lo_n + 1), hi_n - 1)
            m = probe(mid_n)
            if m.efficiency >= target_efficiency:
                hi, hi_n = m, mid_n
            else:
                lo, lo_n = m, mid_n

    return METGResult(
        metg_seconds=_interpolate_crossing(lo, hi, target_efficiency),
        target_efficiency=target_efficiency,
        below=lo,
        above=hi,
        history=history,
    )


def _interpolate_crossing(
    lo: Measurement | None, hi: Measurement, target: float
) -> float:
    """Granularity at the exact efficiency crossing.

    Linear interpolation of log-granularity against efficiency between the
    two bracketing measurements.  ``lo`` is ``None`` only when the target
    was still met at one iteration per task — the crossing sits below the
    smallest measurable problem size, so the granularity of that smallest
    probe is the honest (upper-bound) answer.
    """
    if lo is None or hi.efficiency == lo.efficiency:
        return hi.granularity_seconds
    frac = (target - lo.efficiency) / (hi.efficiency - lo.efficiency)
    frac = min(1.0, max(0.0, frac))
    log_g = (
        math.log(lo.granularity_seconds)
        + frac * (math.log(hi.granularity_seconds) - math.log(lo.granularity_seconds))
    )
    return math.exp(log_g)
