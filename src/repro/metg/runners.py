"""Runners: a uniform "execute this workload, report throughput" interface.

METG is measured identically for simulated systems and real executors (the
paper computes it the same way for all 15 systems); runners hide which
substrate is underneath.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..core.envvars import env_float
from ..core.executor_base import Executor
from ..core.kernels import FLOPS_PER_ITERATION, execute_kernel_compute
from ..core.metrics import RunResult
from ..core.task_graph import TaskGraph
from ..sim.machine import MachineSpec
from ..sim.network import ARIES, NetworkModel
from ..sim.runtime_model import RuntimeModel
from ..sim.simulator import simulate
from ..sim.systems import get_system, scaled_for


class SimRunner:
    """Runs workloads on the simulator substrate."""

    def __init__(
        self,
        system: RuntimeModel | str,
        machine: MachineSpec,
        network: NetworkModel = ARIES,
        *,
        scale_reserved: bool = True,
    ) -> None:
        model = get_system(system) if isinstance(system, str) else system
        if scale_reserved:
            model = scaled_for(model, machine)
        self.model = model
        self.machine = machine
        self.network = network

    @property
    def name(self) -> str:
        return self.model.name

    @property
    def cores(self) -> int:
        return self.machine.total_cores

    @property
    def worker_width(self) -> int:
        """Natural graph width: one column per worker core (paper §2)."""
        return self.machine.nodes * self.model.worker_cores_per_node(
            self.machine.cores_per_node
        )

    @property
    def peak_flops(self) -> float:
        """The 100 % efficiency reference: the machine's best measured rate
        (paper §5.1 uses the empirically-determined peak across systems)."""
        return self.machine.peak_flops

    @property
    def peak_bytes_per_second(self) -> float:
        return self.machine.peak_bytes_per_second

    def run(self, graphs: Sequence[TaskGraph]) -> RunResult:
        return simulate(graphs, self.machine, self.model, self.network)


class RealRunner:
    """Runs workloads on a real executor of ``repro.runtimes``.

    The peak FLOP/s reference is calibrated empirically — the rate of the
    actual compute kernel on this host times the worker count — mirroring
    the paper's empirical calibration of Cori's 1.26 TFLOP/s.

    ``max_retries`` is the per-probe retry budget for transient worker
    failures (read by :func:`repro.metg.efficiency.measure`); the default
    comes from the ``TASKBENCH_MAX_RETRIES`` environment variable.
    """

    def __init__(
        self,
        executor: Executor,
        *,
        validate: bool = False,
        max_retries: int | None = None,
    ) -> None:
        from ..faults import default_max_retries

        self.executor = executor
        self.validate = validate
        self.max_retries = (
            max_retries if max_retries is not None else default_max_retries()
        )
        self._peak_per_core: float | None = None

    @property
    def name(self) -> str:
        return self.executor.name

    @property
    def cores(self) -> int:
        return self.executor.cores

    @property
    def worker_width(self) -> int:
        return self.executor.cores

    @property
    def peak_flops(self) -> float:
        """Empirical 100 %-efficiency reference for this executor.

        The per-core kernel rate comes from the process-wide cache (see
        :func:`peak_flops_per_core`) so every runner of a sweep — and every
        cell of a suite — shares one calibration instead of each measuring
        its own noisy reference, which would make efficiencies (and hence
        METG) incomparable across cells.  Tests may pin the reference by
        setting ``_peak_per_core`` directly.
        """
        if self._peak_per_core is None:
            self._peak_per_core = peak_flops_per_core()
        return self._peak_per_core * self.executor.cores

    def run(self, graphs: Sequence[TaskGraph]) -> RunResult:
        return self.executor.run(graphs, validate=self.validate)

    def close(self) -> None:
        """Release the executor's resources (worker pools, rank meshes).

        Persistent-substrate executors stay warm across a sweep's probes;
        once the sweep is over the caller closes the runner so process
        trees and socket directories do not outlive the measurement."""
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()


def calibrate_kernel_flops(iterations: int = 20_000, repeats: int = 3) -> float:
    """Measured FLOP/s of the compute kernel on one core of this host."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        execute_kernel_compute(iterations)
        elapsed = time.perf_counter() - start
        best = max(best, iterations * FLOPS_PER_ITERATION / elapsed)
    return best


#: Process-wide calibration cache (``None`` = not yet calibrated).
_PEAK_PER_CORE: float | None = None

#: Environment override: pin the per-core peak FLOP/s reference instead of
#: calibrating.  Set by the suite scheduler so every cell of a sweep — even
#: ones running in child processes — shares one calibration and their
#: efficiencies are directly comparable.
PEAK_FLOPS_ENV = "TASKBENCH_PEAK_FLOPS"


def peak_flops_per_core(*, recalibrate: bool = False) -> float:
    """Per-core peak FLOP/s reference, calibrated at most once per process.

    Resolution order: the :data:`PEAK_FLOPS_ENV` environment variable if
    set (must be a positive number), else the cached calibration, else one
    fresh :func:`calibrate_kernel_flops` whose result is cached for the
    life of the process.  ``recalibrate=True`` forces a fresh measurement
    (and refreshes the cache) unless the environment override is set.
    """
    global _PEAK_PER_CORE
    value = env_float(PEAK_FLOPS_ENV, None, exclusive_minimum=0.0)
    if value is not None:
        return value
    if _PEAK_PER_CORE is None or recalibrate:
        _PEAK_PER_CORE = calibrate_kernel_flops()
    return _PEAK_PER_CORE
