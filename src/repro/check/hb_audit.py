"""Happens-before audit of recorded executor schedules.

Bytewise validation (paper §2) proves the *values* flowing between tasks are
right, but a racy executor can deliver correct bytes by schedule luck while
still violating ordering — e.g. publishing an output before the kernel that
computes it has finished, or reading a buffer it never synchronized on.
This pass replays the event trace recorded by the hooks in
:mod:`repro.runtimes._common` through a vector-clock checker and a
graph-aware completeness check:

* **Vector clocks**: each thread is a process; ``publish`` stores the
  publisher's clock as a message, ``acquire`` joins the matching message
  clock into the consumer.  An input acquired whose producer's ``finish``
  is not in the consumer's causal past has no happens-before edge from its
  producer's completion (``hb-race``); an acquire with no preceding publish
  at all is a read of unsynchronized state (``hb-unpublished-read``); a
  publish ordered before its own task's finish exposes an incomplete
  output (``hb-early-publish``).
* **Graph-aware completeness**: every task must start and finish exactly
  once, acquire exactly its dependence-relation inputs
  (``hb-missing-acquire`` catches dropped edges, ``hb-extra-acquire``
  phantom ones), and publish when it has consumers.

Every real executor must audit clean; the seeded-bug fixtures in
``tests/buggy_executor.py`` must not.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.diagnostics import Diagnostic, error, findings, info
from ..core.executor_base import Executor
from ..core.metrics import RunResult
from ..core.task_graph import TaskGraph
from ..runtimes._common import (
    EV_ACQUIRE,
    EV_FINISH,
    EV_PUBLISH,
    EV_START,
    TaskKey,
    TraceEvent,
    TraceRecorder,
    consumer_count,
    tracing,
)


def _fmt(key: TaskKey) -> str:
    gi, t, i = key
    return f"graph {gi} (t={t}, i={i})"


# ----------------------------------------------------------------------
# Vector-clock machinery
# ----------------------------------------------------------------------
class _VectorClock:
    """Grow-on-demand integer vector clock."""

    __slots__ = ("v",)

    def __init__(self, width: int = 0) -> None:
        self.v: List[int] = [0] * width

    def tick(self, idx: int) -> None:
        if idx >= len(self.v):
            self.v.extend([0] * (idx + 1 - len(self.v)))
        self.v[idx] += 1

    def join(self, other: "_VectorClock") -> None:
        if len(other.v) > len(self.v):
            self.v.extend([0] * (len(other.v) - len(self.v)))
        for k, val in enumerate(other.v):
            if val > self.v[k]:
                self.v[k] = val

    def dominates(self, other: "_VectorClock") -> bool:
        """True when ``other <= self`` component-wise."""
        for k, val in enumerate(other.v):
            mine = self.v[k] if k < len(self.v) else 0
            if val > mine:
                return False
        return True

    def snapshot(self) -> "_VectorClock":
        c = _VectorClock()
        c.v = list(self.v)
        return c


@dataclass
class _TaskRecord:
    """Per-task event bookkeeping for the completeness check."""

    starts: int = 0
    finishes: int = 0
    finish_seq: int = -1
    acquires: List[Tuple[TaskKey, int]] = field(default_factory=list)
    publish_seqs: List[int] = field(default_factory=list)


# ----------------------------------------------------------------------
# Trace replay
# ----------------------------------------------------------------------
def audit_trace(
    graphs: Sequence[TaskGraph], events: Sequence[TraceEvent]
) -> List[Diagnostic]:
    """Replay ``events`` and return every happens-before violation found."""
    out: List[Diagnostic] = []
    by_index = {g.graph_index: g for g in graphs}

    # -- pass 1: vector clocks over the linearized trace ----------------
    thread_idx: Dict[int, int] = {}
    clocks: List[_VectorClock] = []
    publishes: Dict[TaskKey, List[Tuple[int, _VectorClock]]] = {}
    finish_vc: Dict[TaskKey, _VectorClock] = {}
    records: Dict[TaskKey, _TaskRecord] = {}

    for ev in events:
        tid = thread_idx.setdefault(ev.thread, len(thread_idx))
        if tid == len(clocks):
            clocks.append(_VectorClock())
        vc = clocks[tid]
        vc.tick(tid)
        rec = records.setdefault(ev.task, _TaskRecord())
        if ev.kind == EV_START:
            rec.starts += 1
        elif ev.kind == EV_FINISH:
            rec.finishes += 1
            rec.finish_seq = ev.seq
            finish_vc[ev.task] = vc.snapshot()
        elif ev.kind == EV_PUBLISH:
            rec.publish_seqs.append(ev.seq)
            publishes.setdefault(ev.task, []).append((ev.seq, vc.snapshot()))
        elif ev.kind == EV_ACQUIRE:
            assert ev.source is not None
            rec.acquires.append((ev.source, ev.seq))
            sent = publishes.get(ev.source, [])
            pos = bisect.bisect_left([s for s, _ in sent], ev.seq)
            if pos == 0:
                out.append(
                    error(
                        "hb-unpublished-read",
                        f"acquired the output of {_fmt(ev.source)} before any "
                        "publish of it was recorded — the read races the "
                        "producer's write",
                        _fmt(ev.task),
                        "only hand a buffer to a consumer after the producer "
                        "publishes it through a synchronizing channel",
                    )
                )
                continue
            vc.join(sent[pos - 1][1])
            producer_finish = finish_vc.get(ev.source)
            if producer_finish is None or not vc.dominates(producer_finish):
                out.append(
                    error(
                        "hb-race",
                        f"acquired the output of {_fmt(ev.source)} with no "
                        "happens-before edge from the producer's completion "
                        "(the publish it synchronized on predates the "
                        "producer's finish)",
                        _fmt(ev.task),
                        "publish outputs only after the kernel completes",
                    )
                )

    # -- pass 2: graph-aware completeness -------------------------------
    for key, rec in records.items():
        gi = key[0]
        if gi not in by_index or not by_index[gi].contains_point(key[1], key[2]):
            out.append(
                error(
                    "hb-unknown-task",
                    "events recorded for a task outside the configured graphs",
                    _fmt(key),
                )
            )

    for g in graphs:
        for t, i in g.points():
            key = (g.graph_index, t, i)
            rec = records.get(key)
            if rec is None:
                out.append(
                    error(
                        "hb-missing-event",
                        "task never executed (no events recorded)",
                        _fmt(key),
                        "the executor must run every point of every graph",
                    )
                )
                continue
            if rec.starts != 1 or rec.finishes != 1:
                out.append(
                    error(
                        "hb-missing-event",
                        f"expected exactly one start and one finish, saw "
                        f"{rec.starts} start(s) and {rec.finishes} finish(es)",
                        _fmt(key),
                        "execute each task exactly once",
                    )
                )
                continue
            expected = {(g.graph_index, t - 1, j) for j in g.dependency_points(t, i)} if t else set()
            acquired = {src for src, _ in rec.acquires}
            for src in sorted(expected - acquired):
                out.append(
                    error(
                        "hb-missing-acquire",
                        f"never acquired its input from {_fmt(src)} — the "
                        "dependence edge was dropped by the scheduler",
                        _fmt(key),
                        "wait on every producer listed by dependency_points "
                        "before executing",
                    )
                )
            for src in sorted(acquired - expected):
                out.append(
                    error(
                        "hb-extra-acquire",
                        f"acquired an input from {_fmt(src)} that the "
                        "dependence relation does not declare",
                        _fmt(key),
                        "gather exactly the inputs of dependency_points",
                    )
                )
            for _, seq in rec.acquires:
                if seq > rec.finish_seq:
                    out.append(
                        error(
                            "hb-late-acquire",
                            "an input was acquired after the task finished",
                            _fmt(key),
                            "gather all inputs before running the kernel",
                        )
                    )
                    break
            if any(seq < rec.finish_seq for seq in rec.publish_seqs):
                out.append(
                    error(
                        "hb-early-publish",
                        "output was published before the task finished "
                        "computing it — consumers can observe an incomplete "
                        "buffer even if the bytes happen to validate",
                        _fmt(key),
                        "publish only after execute_point returns",
                    )
                )
            if consumer_count(g, t, i) > 0 and not rec.publish_seqs:
                out.append(
                    error(
                        "hb-missing-publish",
                        "task has consumers but its output was never published",
                        _fmt(key),
                        "route the output to every reverse dependency",
                    )
                )
    return out


# ----------------------------------------------------------------------
# Audited execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AuditResult:
    """Outcome of an audited run: the normal result plus the audit."""

    run: RunResult
    diagnostics: List[Diagnostic]
    num_events: int

    @property
    def ok(self) -> bool:
        """True when the schedule audit found no violations."""
        return not findings(self.diagnostics)

    def report(self) -> str:
        """The run report followed by an audit summary line."""
        n = len(findings(self.diagnostics))
        status = "clean" if n == 0 else f"{n} violation(s)"
        return (
            f"{self.run.report()}\n"
            f"Audit {status} ({self.num_events} events)"
        )


def audit_run(
    executor: Executor, graphs: Sequence[TaskGraph], *, validate: bool = True
) -> AuditResult:
    """Execute ``graphs`` with tracing enabled and audit the schedule."""
    recorder = TraceRecorder()
    with tracing(recorder):
        result = executor.run(graphs, validate=validate)
    diags = audit_trace(list(graphs), recorder.events)
    diags.append(
        info(
            "hb-trace",
            f"audited {len(recorder.events)} events from executor "
            f"{executor.name!r}",
            "audit",
        )
    )
    return AuditResult(run=result, diagnostics=diags, num_events=len(recorder.events))
