"""Executor-contract lint: AST checks over :mod:`repro.runtimes`.

The O(m + n) property of Task Bench (paper §1) holds only while every
runtime shim honors the same small contract.  This pass enforces the repo's
invariants statically, without importing the modules:

* ``api-missing-member``: every ``Executor`` subclass must define ``name``,
  ``cores``, and ``execute_graphs``.
* ``api-kernel-bypass``: kernels run only through ``run_point`` /
  ``execute_point``; calling ``kernel.execute`` or an ``execute_kernel_*``
  function directly would skip input validation and trace hooks.
* ``api-timing``: no wall-clock calls inside executor code — the timing
  contract lives in ``Executor.run``, which times ``execute_graphs`` from
  the outside.  Waivable per line with ``# check: allow[timing]`` for
  executors that deliberately model overhead.
* ``api-unlocked-mutation``: inside worker closures (functions nested in
  ``execute_graphs``, which run on worker threads), mutations of shared
  (enclosing-scope) containers must be lexically inside a ``with`` block —
  the idiom every executor here uses for lock-protected scheduler state.
  Waivable with ``# check: allow[shared-mutation]``.
* ``api-raw-shm``: runtime modules must not construct
  ``multiprocessing.shared_memory.SharedMemory`` segments directly; segment
  lifecycle (creation, generation tagging, unlinking) belongs to
  :mod:`repro.core.bufpool`, whose pools are the only owners the leak
  checks cover.  Waivable with ``# check: allow[raw-shm]``.
* ``api-ref-leak``: a runtime module that acquires pool handles
  (``.acquire()`` / ``.acquire_batch()`` on a pool-named receiver) must
  also release them somewhere (``.decref()`` / ``.decref_batch()`` /
  ``.close()``) — acquire-only modules leak slots by construction.
  Waivable with ``# check: allow[ref-leak]``.

Executor classes are recognized transitively: a class subclassing another
executor class *in the same module* inherits its contract members, and
private (``_``-prefixed) executor bases are abstract — they contribute
members to subclasses but need not be complete themselves.

``task-bench check --self`` runs this lint over the repo's own runtimes and
must pass clean; it is wired into CI so every hot-path change is gated.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Set

from ..core.diagnostics import Diagnostic, error

#: Wall-clock functions banned inside executor code (``api-timing``).
_TIMING_CALLS = {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
                 "time", "time_ns", "process_time", "clock"}

#: Container methods treated as mutations of shared state.
_MUTATING_METHODS = {"append", "appendleft", "pop", "popleft", "add", "remove",
                     "discard", "clear", "extend", "insert", "update",
                     "setdefault", "popitem"}

#: Files in the runtimes package that hold no executors.
_SKIP_FILES = {"__init__.py"}


def _waivers(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of waived rules (``# check: allow[rule]``)."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        marker = "check: allow["
        pos = line.find(marker)
        while pos != -1:
            end = line.find("]", pos)
            if end == -1:
                break
            rule = line[pos + len(marker):end].strip()
            out.setdefault(lineno, set()).add(rule)
            pos = line.find(marker, end)
    return out


def _base_names(node: ast.ClassDef) -> List[str]:
    out: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            out.append(base.id)
        elif isinstance(base, ast.Attribute):
            out.append(base.attr)
    return out


def _executor_classes(module: ast.Module) -> List[ast.ClassDef]:
    """Executor subclasses of the module, found transitively: subclassing
    ``Executor`` directly, or subclassing another executor class defined in
    the same module."""
    classes = [n for n in module.body if isinstance(n, ast.ClassDef)]
    executor_like: Set[str] = {"Executor"}
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in executor_like:
                continue
            if any(b in executor_like for b in _base_names(cls)):
                executor_like.add(cls.name)
                changed = True
    return [c for c in classes if c.name in executor_like]


#: Receivers the ``api-ref-leak`` pairing rule applies to: pool handles are
#: acquired from objects whose names say so (``pool``, ``buffers``,
#: ``slab``...); bare ``lock.acquire()`` is not a pool acquisition.
_POOLISH = ("pool", "buf", "slab")

#: Pool-handle release calls that balance an ``acquire``.
_RELEASE_METHODS = {"decref", "decref_batch", "close"}


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _root_name(node: ast.expr) -> str | None:
    """The leftmost ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _attr_chain(node: ast.expr) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return parts[::-1]


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
    """Names bound inside ``fn`` (hence *not* shared closure state)."""
    names: Set[str] = set()
    args = fn.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        names.add(a.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for t in ast.walk(node.target):
                if isinstance(t, ast.Name):
                    names.add(t.id)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for t in ast.walk(node.optional_vars):
                if isinstance(t, ast.Name):
                    names.add(t.id)
        elif isinstance(node, (ast.Nonlocal, ast.Global)):
            # Explicitly shared again: remove from locals.
            names.difference_update(node.names)
    return names


class _FileLinter:
    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.waivers = _waivers(source)
        self.tree = ast.parse(source, filename=str(path))
        self.out: List[Diagnostic] = []

    def _loc(self, node: ast.AST) -> str:
        return f"{self.rel}:{getattr(node, 'lineno', 0)}"

    def _waived(self, node: ast.AST, rule: str) -> bool:
        return rule in self.waivers.get(getattr(node, "lineno", -1), set())

    # ------------------------------------------------------------------
    def run(self) -> List[Diagnostic]:
        first_acquire: ast.Call | None = None
        releases = False
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._check_kernel_bypass(node)
                self._check_raw_shm(node)
                func = node.func
                if isinstance(func, ast.Attribute):
                    receiver = _root_name(func.value) or ""
                    poolish = any(p in receiver.lower() for p in _POOLISH)
                    if (
                        func.attr in ("acquire", "acquire_batch")
                        and poolish
                        and first_acquire is None
                        and not self._waived(node, "ref-leak")
                    ):
                        first_acquire = node
                    elif func.attr in _RELEASE_METHODS and poolish:
                        releases = True
        if first_acquire is not None and not releases:
            self.out.append(
                error(
                    "api-ref-leak",
                    "module acquires pool handles but never releases any "
                    "(no decref/decref_batch/close on a pool); slots leak "
                    "by construction",
                    self._loc(first_acquire),
                    "pair every pool.acquire with a decref (or close the "
                    "pool), or waive with '# check: allow[ref-leak]'",
                )
            )
        module_classes = {
            n.name: n for n in self.tree.body if isinstance(n, ast.ClassDef)
        }
        for node in _executor_classes(self.tree):
            if not node.name.startswith("_"):  # private bases are abstract
                self._check_members(node, module_classes)
            self._check_timing(node)
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "execute_graphs"
                ):
                    self._check_shared_mutation(item)
        return self.out

    # ------------------------------------------------------------------
    def _check_members(
        self, cls: ast.ClassDef, module_classes: Dict[str, ast.ClassDef]
    ) -> None:
        def own_members(node: ast.ClassDef) -> Set[str]:
            have: Set[str] = set()
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    have.add(item.name)
                elif isinstance(item, ast.Assign):
                    for t in item.targets:
                        if isinstance(t, ast.Name):
                            have.add(t.id)
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    have.add(item.target.id)
            return have

        have: Set[str] = set()
        seen: Set[str] = set()
        stack = [cls.name]
        while stack:  # members inherited from same-module bases count
            name = stack.pop()
            if name in seen or name not in module_classes:
                continue
            seen.add(name)
            node = module_classes[name]
            have |= own_members(node)
            stack.extend(_base_names(node))
        for member in ("name", "cores", "execute_graphs"):
            if member not in have:
                self.out.append(
                    error(
                        "api-missing-member",
                        f"executor class {cls.name} does not define "
                        f"{member!r}; the registry and Executor.run require it",
                        self._loc(cls),
                        f"add a {member!r} definition to the class body",
                    )
                )

    def _check_kernel_bypass(self, call: ast.Call) -> None:
        name = _call_name(call.func)
        if name.startswith("execute_kernel_"):
            self.out.append(
                error(
                    "api-kernel-bypass",
                    f"direct call to {name}(); kernels must run via "
                    "run_point/execute_point so inputs are validated and "
                    "events traced",
                    self._loc(call),
                    "call graph.execute_point (or _common.run_point) instead",
                )
            )
        elif name == "execute" and isinstance(call.func, ast.Attribute):
            chain = _attr_chain(call.func)
            if "kernel" in chain[:-1]:
                self.out.append(
                    error(
                        "api-kernel-bypass",
                        f"direct call to {'.'.join(chain)}(); kernels must "
                        "run via run_point/execute_point",
                        self._loc(call),
                        "call graph.execute_point (or _common.run_point) "
                        "instead",
                    )
                )

    def _check_raw_shm(self, call: ast.Call) -> None:
        if _call_name(call.func) == "SharedMemory" and not self._waived(
            call, "raw-shm"
        ):
            self.out.append(
                error(
                    "api-raw-shm",
                    "direct SharedMemory() construction in a runtime; "
                    "segment lifecycle (creation, generation tags, "
                    "unlinking) belongs to repro.core.bufpool",
                    self._loc(call),
                    "acquire slots from a SharedMemorySlabPool, or waive "
                    "with '# check: allow[raw-shm]'",
                )
            )

    def _check_timing(self, cls: ast.ClassDef) -> None:
        for node in ast.walk(cls):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_timing = (
                isinstance(func, ast.Attribute)
                and func.attr in _TIMING_CALLS
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ) or (isinstance(func, ast.Name) and func.id in _TIMING_CALLS)
            if is_timing and not self._waived(node, "timing"):
                self.out.append(
                    error(
                        "api-timing",
                        "wall-clock call inside an executor; the timing "
                        "contract lives in Executor.run, which times "
                        "execute_graphs from the outside",
                        self._loc(node),
                        "remove the call, or waive a deliberate overhead "
                        "model with '# check: allow[timing]'",
                    )
                )

    def _check_shared_mutation(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """Worker closures must mutate shared containers under a ``with``."""
        for nested in ast.walk(fn):
            if nested is fn or not isinstance(
                nested, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            locals_ = _local_names(nested)
            self._walk_mutations(nested, nested, locals_, in_with=False)

    def _walk_mutations(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.AST,
        locals_: Set[str],
        *,
        in_with: bool,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # handled by its own _check_shared_mutation walk
            child_in_with = in_with or isinstance(
                child, (ast.With, ast.AsyncWith)
            )
            if not child_in_with:
                self._flag_mutation(fn, child, locals_)
            self._walk_mutations(fn, child, locals_, in_with=child_in_with)

    def _flag_mutation(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.AST,
        locals_: Set[str],
    ) -> None:
        shared: str | None = None
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if isinstance(t, (ast.Subscript, ast.Attribute)):
                    root = _root_name(t)
                    if root and root not in locals_ and root != "self":
                        shared = root
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            func = node.value.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
                root = _root_name(func.value)
                if root and root not in locals_ and root != "self":
                    shared = root
        if shared is not None and not self._waived(node, "shared-mutation"):
            self.out.append(
                error(
                    "api-unlocked-mutation",
                    f"worker closure {fn.name!r} mutates shared state "
                    f"{shared!r} outside any 'with' (lock) block",
                    self._loc(node),
                    "guard scheduler state with the executor's lock or "
                    "condition variable, or waive with "
                    "'# check: allow[shared-mutation]'",
                )
            )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lint_executor_api(source: str, filename: str = "<string>") -> List[Diagnostic]:
    """Lint one module's source text against the executor contract."""
    try:
        linter = _FileLinter(Path(filename), filename, source)
    except SyntaxError as exc:
        return [
            error(
                "api-syntax",
                f"cannot parse module: {exc.msg}",
                f"{filename}:{exc.lineno or 0}",
            )
        ]
    return linter.run()


def lint_runtime_sources(package_dir: str | Path | None = None) -> List[Diagnostic]:
    """Lint every module of the runtimes package (default: this repo's).

    Diagnostics carry ``<file>:<line>`` locations relative to the package
    directory's parent, so output is stable across checkouts.
    """
    if package_dir is None:
        package_dir = Path(__file__).resolve().parent.parent / "runtimes"
    package_dir = Path(package_dir)
    out: List[Diagnostic] = []
    for path in sorted(package_dir.glob("*.py")):
        if path.name in _SKIP_FILES:
            continue
        rel = f"{package_dir.name}/{path.name}"
        source = path.read_text(encoding="utf-8")
        try:
            linter = _FileLinter(path, rel, source)
        except SyntaxError as exc:
            out.append(
                error("api-syntax", f"cannot parse module: {exc.msg}",
                      f"{rel}:{exc.lineno or 0}")
            )
            continue
        out.extend(linter.run())
    return out
