"""Static task-graph analysis, schedule auditing, and contract lint.

Four passes, all reporting :class:`~repro.core.diagnostics.Diagnostic`
records:

* :mod:`repro.check.graph_lint` — proves well-formedness of a task-graph
  configuration *before* any kernel runs: dependence-relation duality,
  acyclicity/schedulability, dependency-count bounds (Table 2), payload
  memory vs. :class:`~repro.sim.machine.MachineSpec`, and a critical-path
  lower bound on runtime.
* :mod:`repro.check.hb_audit` — replays an executor's recorded schedule
  (the trace hooks in :mod:`repro.runtimes._common`) through a vector-clock
  checker, flagging inputs acquired without a happens-before edge from
  their producer — ordering races that bytewise validation can miss.
* :mod:`repro.check.api_lint` — AST lint of :mod:`repro.runtimes` against
  the O(m + n) executor contract (required members, kernel routing, timing
  discipline, locked shared-state mutation).
* :mod:`repro.check.concurrency` — lock-order/blocking-call lint over all
  of ``src/repro`` (deadlock cycles, unpaired ``acquire``, unguarded
  ``Condition.wait``, blocking calls under a lock) plus an opt-in runtime
  lockset sanitizer (``--sanitize``) that refines the vector-clock audit
  with Eraser-style candidate locksets.

All four are wired into the ``task-bench check`` CLI subcommand.
"""

from .api_lint import lint_executor_api, lint_runtime_sources
from .concurrency import (
    LockSanitizer,
    SanitizeResult,
    active_sanitizer,
    instrument,
    lint_concurrency,
    lint_concurrency_sources,
    sanitized_run,
)
from .graph_lint import critical_path_seconds, lint_graphs, peak_payload_bytes
from .hb_audit import AuditResult, audit_run, audit_trace

__all__ = [
    "AuditResult",
    "LockSanitizer",
    "SanitizeResult",
    "active_sanitizer",
    "audit_run",
    "audit_trace",
    "critical_path_seconds",
    "instrument",
    "lint_concurrency",
    "lint_concurrency_sources",
    "lint_executor_api",
    "lint_graphs",
    "lint_runtime_sources",
    "peak_payload_bytes",
    "sanitized_run",
]
