"""Concurrency analysis: lock-order/blocking-call lint + a lockset sanitizer.

The METG methodology is meaningless if an executor can deadlock or race its
way to a fast number, and the repo's two heavily-threaded subsystems (the
thread-side schedulers and the ``repro.cluster`` socket mesh) earned their
fault-tolerance layers *reactively* — the zero-length-frame spin and the
blocked-recv hang of PRs 3-4 shipped before anything could flag them.  This
pass makes those bug classes detectable before they run, in two halves.

**Static AST analysis** (:func:`lint_concurrency` /
:func:`lint_concurrency_sources`) over every module of ``src/repro``:

* ``conc-lock-cycle``: the per-module lock-order graph — an edge A→B for
  every ``with B`` lexically nested inside ``with A`` — contains a cycle,
  the classic two-thread deadlock shape.  Conditions constructed over a
  named lock (``Condition(self.lock)``) alias that lock, so mixing the two
  spellings cannot hide an inversion; self-edges on a non-reentrant
  ``Lock`` are flagged too.
* ``conc-unpaired-acquire``: a bare ``lock.acquire()`` with no
  ``lock.release()`` in any ``finally`` block of the same function — an
  exception between the two leaks the lock forever.  Use ``with``.
* ``conc-unguarded-wait``: a ``Condition.wait()`` not inside a ``while``
  loop.  A woken waiter must re-check its predicate; ``if``-guarded waits
  lose wakeups (and spurious wakeups are allowed by the API).
* ``conc-blocking-under-lock``: a blocking call — socket I/O, ``recv``,
  ``join``, queue ``get``, ``sleep``, a wait on some *other* primitive —
  made while a lock is lexically held.  This is the exact shape of the
  PR 3/PR 4 hang bugs: the blocked holder stalls every thread that needs
  the lock, including the one that would have unblocked it.  Waiting on
  the *held* condition itself (the release-and-wait idiom) is exempt.

All rules are waivable per line with ``# check: allow[<rule>]`` (rule =
the code without its ``conc-`` prefix), the same escape hatch as
:mod:`repro.check.api_lint`.  The analysis is lexical and per-function:
lock acquisitions hidden behind a method call are invisible to it, which
is the half the runtime sanitizer covers.

**Runtime lockset sanitizer** (:func:`instrument` / :func:`sanitized_run`):
an opt-in layer (``task-bench ... --sanitize``) that replaces
``threading.Lock``/``RLock`` with recording proxies.  Each thread carries a
live lockset and a vector clock; releasing a lock publishes the releaser's
clock into the lock, acquiring joins it — so the clocks encode exactly the
happens-before edges *real* synchronization creates (lock hand-offs),
unlike :mod:`repro.check.hb_audit`, which trusts the publish/acquire trace
events themselves to synchronize.  Via the trace-event observer hook
(:func:`repro.runtimes._common.set_event_observer`), every published task
buffer is stamped with its writer's (thread, lockset, clock) and every
cross-thread read is checked Eraser-style: if the reader shares no lock
with the writer (empty candidate lockset) *and* has no happens-before edge
covering the publish, the access is flagged ``conc-lockset-race`` — even
when the bytes happen to be right.  The sanitizer slows the run (measured
~10-20% on the threads executor smoke config, see
``benchmarks/results/sanitizer_overhead.json``); sanitized timings must
never be reported as METG numbers.
"""

from __future__ import annotations

import ast
import contextlib
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.diagnostics import Diagnostic, error, findings, info
from ..core.executor_base import Executor
from ..core.metrics import RunResult
from ..core.task_graph import TaskGraph
from ..runtimes._common import (
    EV_ACQUIRE,
    EV_PUBLISH,
    TaskKey,
    TraceRecorder,
    set_event_observer,
    tracing,
)
from .api_lint import _attr_chain, _waivers
from .hb_audit import _VectorClock, audit_trace

# ----------------------------------------------------------------------
# Static half: lock declarations
# ----------------------------------------------------------------------
#: Constructors whose result is a mutual-exclusion primitive.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: Calls that block unconditionally, whatever the receiver is called.
_HARD_BLOCKING = {
    "recv", "recv_into", "recv_bytes", "recv_frame", "accept",
    "sendall", "sendmsg", "send_frame", "send_bytes", "select", "sleep",
}

#: Calls that block only on waitable receivers; flagged when the receiver's
#: name says it is one (a thread, socket, queue, pipe, process, future...).
_HINTED_BLOCKING = {"join", "get", "wait", "connect", "flush", "poll", "result"}

#: Receiver-name components (underscores stripped, lowercased) that mark a
#: receiver as waitable for the ``_HINTED_BLOCKING`` rules.
_BLOCKING_HINTS = {
    "th", "thread", "threads", "proc", "process", "procs", "worker",
    "workers", "sock", "socket", "conn", "pipe", "peer", "peers", "queue",
    "q", "mailbox", "mail", "sender", "receiver", "listener", "fsock",
    "endpoint", "ep", "future", "futures", "fut", "event", "ev", "barrier",
    "pool",
}


@dataclass
class _LockDecl:
    """One lock-like object declared in the module."""

    lock_id: str  #: canonical identity used in the order graph
    kind: str  #: "lock" (non-reentrant) | "rlock" | "condition"
    reentrant: bool
    is_condition: bool
    lineno: int


class _LockTable:
    """Lock declarations of one module, with use-site resolution.

    Identity is ``Class.attr`` for ``self.attr = threading.Lock()``
    declarations and the bare name for module- or function-level ones.  A
    ``Condition(existing_lock)`` aliases the named lock: both spellings
    resolve to one canonical id, so an inversion cannot hide behind the
    condition wrapper.
    """

    def __init__(self) -> None:
        self.by_class: Dict[Tuple[str, str], _LockDecl] = {}
        self.by_name: Dict[str, _LockDecl] = {}
        #: attribute name -> class names declaring a lock under it
        self.attr_owners: Dict[str, List[str]] = {}

    # -- collection ----------------------------------------------------
    def collect(self, tree: ast.Module) -> None:
        self._visit(tree, None)

    def _visit(self, node: ast.AST, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                self._visit(child, child.name)
                continue
            if isinstance(child, ast.Assign) and len(child.targets) == 1:
                self._maybe_declare(child.targets[0], child.value, cls)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                self._maybe_declare(child.target, child.value, cls)
            self._visit(child, cls)

    def _factory(self, value: ast.expr) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name if name in _LOCK_FACTORIES else None

    def _maybe_declare(
        self, target: ast.expr, value: ast.expr, cls: Optional[str]
    ) -> None:
        factory = self._factory(value)
        if factory is None:
            return
        is_condition = factory == "Condition"
        reentrant = factory == "RLock"
        alias: Optional[_LockDecl] = None
        if is_condition:
            call = value
            assert isinstance(call, ast.Call)
            if call.args:
                alias = self.resolve(call.args[0], cls)
            else:
                # Condition() wraps a fresh RLock: reentrant.
                reentrant = True
        lineno = getattr(target, "lineno", 0)
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and cls is not None
        ):
            attr = target.attr
            decl = alias or _LockDecl(
                f"{cls}.{attr}", factory.lower(), reentrant, is_condition, lineno
            )
            if is_condition and alias is not None:
                decl = _LockDecl(
                    alias.lock_id, alias.kind, alias.reentrant, True, lineno
                )
            self.by_class[(cls, attr)] = decl
            self.attr_owners.setdefault(attr, []).append(cls)
        elif isinstance(target, ast.Name):
            name = target.id
            decl = alias or _LockDecl(
                name, factory.lower(), reentrant, is_condition, lineno
            )
            if is_condition and alias is not None:
                decl = _LockDecl(
                    alias.lock_id, alias.kind, alias.reentrant, True, lineno
                )
            self.by_name[name] = decl

    # -- resolution ----------------------------------------------------
    def resolve(
        self, expr: ast.expr, ctx_class: Optional[str]
    ) -> Optional[_LockDecl]:
        """The declaration a use-site expression refers to, if any."""
        chain = _attr_chain(expr)
        if not chain:
            return None
        if len(chain) == 1:
            return self.by_name.get(chain[0])
        attr = chain[-1]
        if chain[0] == "self" and ctx_class is not None:
            decl = self.by_class.get((ctx_class, attr))
            if decl is not None:
                return decl
        owners = self.attr_owners.get(attr, [])
        if len(owners) == 1:
            return self.by_class.get((owners[0], attr))
        return None


# ----------------------------------------------------------------------
# Static half: per-function scan
# ----------------------------------------------------------------------
_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _functions(tree: ast.Module) -> List[Tuple[_FunctionNode, Optional[str]]]:
    """Every function/method of the module, paired with its class context.

    Nested functions are listed separately (they run on their own thread in
    the worker-closure idiom, so each gets a fresh held-lock context)."""
    out: List[Tuple[_FunctionNode, Optional[str]]] = []

    def visit(node: ast.AST, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((child, cls))
                visit(child, cls)
            else:
                visit(child, cls)

    visit(tree, None)
    return out


@dataclass
class _AcquireSite:
    decl: _LockDecl
    node: ast.Call


class _ConcurrencyLinter:
    """Lexical concurrency lint of one module."""

    def __init__(self, rel: str, source: str) -> None:
        self.rel = rel
        self.waivers = _waivers(source)
        self.tree = ast.parse(source, filename=rel)
        self.locks = _LockTable()
        self.locks.collect(self.tree)
        self.out: List[Diagnostic] = []
        #: (holder, acquired) -> example location
        self.edges: Dict[Tuple[str, str], str] = {}
        # per-function scan state
        self._ctx_class: Optional[str] = None
        self._held: List[str] = []
        self._while_depth = 0
        self._in_finally = False
        self._acquires: List[_AcquireSite] = []
        self._finally_releases: Set[str] = set()

    def _loc(self, node: ast.AST) -> str:
        return f"{self.rel}:{getattr(node, 'lineno', 0)}"

    def _waived(self, node: ast.AST, rule: str) -> bool:
        return rule in self.waivers.get(getattr(node, "lineno", -1), set())

    # ------------------------------------------------------------------
    def run(self) -> List[Diagnostic]:
        for fn, cls in _functions(self.tree):
            self._scan_function(fn, cls)
        self._check_cycles()
        return self.out

    # ------------------------------------------------------------------
    def _scan_function(self, fn: _FunctionNode, cls: Optional[str]) -> None:
        self._ctx_class = cls
        self._held = []
        self._while_depth = 0
        self._in_finally = False
        self._acquires = []
        self._finally_releases = set()
        self._visit_block(fn.body)
        for site in self._acquires:
            if site.decl.lock_id in self._finally_releases:
                continue
            if self._waived(site.node, "unpaired-acquire"):
                continue
            self.out.append(
                error(
                    "conc-unpaired-acquire",
                    f"{site.decl.lock_id}.acquire() has no matching "
                    "release() in a finally block of this function — an "
                    "exception between the two leaks the lock forever",
                    self._loc(site.node),
                    "use 'with' (or release in a try/finally), or waive "
                    "with '# check: allow[unpaired-acquire]'",
                )
            )

    def _visit_block(self, stmts: Sequence[ast.stmt]) -> None:
        for st in stmts:
            if isinstance(
                st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # scanned as its own function / class
            if isinstance(st, (ast.With, ast.AsyncWith)):
                pushed = 0
                for item in st.items:
                    self._scan_expr(item.context_expr)
                    decl = self.locks.resolve(item.context_expr, self._ctx_class)
                    if decl is None:
                        continue
                    for holder in self._held:
                        if holder != decl.lock_id or not decl.reentrant:
                            self.edges.setdefault(
                                (holder, decl.lock_id), self._loc(st)
                            )
                    self._held.append(decl.lock_id)
                    pushed += 1
                self._visit_block(st.body)
                for _ in range(pushed):
                    self._held.pop()
            elif isinstance(st, ast.While):
                self._scan_expr(st.test)
                self._while_depth += 1
                self._visit_block(st.body)
                self._visit_block(st.orelse)
                self._while_depth -= 1
            elif isinstance(st, (ast.For, ast.AsyncFor)):
                self._scan_expr(st.iter)
                self._visit_block(st.body)
                self._visit_block(st.orelse)
            elif isinstance(st, ast.If):
                self._scan_expr(st.test)
                self._visit_block(st.body)
                self._visit_block(st.orelse)
            elif isinstance(st, ast.Try):
                self._visit_block(st.body)
                for handler in st.handlers:
                    self._visit_block(handler.body)
                self._visit_block(st.orelse)
                saved = self._in_finally
                self._in_finally = True
                self._visit_block(st.finalbody)
                self._in_finally = saved
            else:
                self._scan_expr(st)

    def _scan_expr(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._classify_call(sub)

    # ------------------------------------------------------------------
    def _classify_call(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        decl = self.locks.resolve(func.value, self._ctx_class)
        if attr == "acquire" and decl is not None:
            self._acquires.append(_AcquireSite(decl, call))
            return
        if attr == "release" and decl is not None:
            if self._in_finally:
                self._finally_releases.add(decl.lock_id)
            return
        if attr == "wait" and decl is not None and decl.is_condition:
            if self._while_depth == 0 and not self._waived(
                call, "unguarded-wait"
            ):
                self.out.append(
                    error(
                        "conc-unguarded-wait",
                        f"{decl.lock_id}.wait() is not inside a while "
                        "loop — a woken waiter must re-check its "
                        "predicate or a lost/spurious wakeup returns it "
                        "with the condition still false",
                        self._loc(call),
                        "wrap the wait in 'while not <predicate>:', or "
                        "waive with '# check: allow[unguarded-wait]'",
                    )
                )
            others = [h for h in self._held if h != decl.lock_id]
            if others and not self._waived(call, "blocking-under-lock"):
                self.out.append(
                    error(
                        "conc-blocking-under-lock",
                        f"{decl.lock_id}.wait() releases only its own "
                        f"lock; {', '.join(sorted(set(others)))} stays "
                        "held while this thread sleeps",
                        self._loc(call),
                        "drop the outer lock before waiting",
                    )
                )
            return
        # -- blocking calls while holding a lock ------------------------
        if not self._held:
            return
        hinted = False
        if attr in _HINTED_BLOCKING:
            parts = {
                p.lstrip("_").lower() for p in _attr_chain(func.value)
            }
            hinted = bool(parts & _BLOCKING_HINTS)
        if (attr in _HARD_BLOCKING or hinted) and not self._waived(
            call, "blocking-under-lock"
        ):
            held = ", ".join(sorted(set(self._held)))
            self.out.append(
                error(
                    "conc-blocking-under-lock",
                    f"blocking call .{attr}() while holding {held} — if "
                    "the call never returns, every thread needing the "
                    "lock hangs with it (the PR 3/PR 4 hang shape)",
                    self._loc(call),
                    "move the blocking call outside the lock, or waive "
                    "a bounded/leaf-lock case with "
                    "'# check: allow[blocking-under-lock]'",
                )
            )

    # ------------------------------------------------------------------
    def _check_cycles(self) -> None:
        graph: Dict[str, Set[str]] = {}
        for a, b in self.edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        # Self-edges: re-acquiring a non-reentrant lock deadlocks alone.
        for (a, b), loc in sorted(self.edges.items()):
            if a == b:
                self.out.append(
                    error(
                        "conc-lock-cycle",
                        f"{a} is acquired while already held and is not "
                        "reentrant — the thread deadlocks on itself",
                        loc,
                        "use an RLock, or restructure to acquire once",
                    )
                )
        # Proper cycles: iterative DFS with an on-stack set.
        color: Dict[str, int] = {}  # 0 unvisited / 1 on stack / 2 done
        reported: Set[FrozenSet[str]] = set()

        def dfs(start: str) -> None:
            stack: List[Tuple[str, Iterator[str]]] = [
                (start, iter(sorted(graph.get(start, ()))))
            ]
            color[start] = 1
            path = [start]
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ == node:
                        continue
                    if color.get(succ, 0) == 1:
                        cycle = path[path.index(succ):] + [succ]
                        key = frozenset(cycle)
                        if key not in reported:
                            reported.add(key)
                            chain = " -> ".join(cycle)
                            locs = "; ".join(
                                self.edges.get((x, y), "")
                                for x, y in zip(cycle, cycle[1:])
                            )
                            self.out.append(
                                error(
                                    "conc-lock-cycle",
                                    f"lock-order cycle {chain}: two "
                                    "threads taking these locks in "
                                    "opposite orders deadlock "
                                    f"(acquisition sites: {locs})",
                                    self.edges.get(
                                        (cycle[0], cycle[1]), self.rel
                                    ),
                                    "impose one global acquisition order "
                                    "for these locks",
                                )
                            )
                    elif color.get(succ, 0) == 0:
                        color[succ] = 1
                        path.append(succ)
                        stack.append((succ, iter(sorted(graph.get(succ, ())))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = 2
                    path.pop()
                    stack.pop()

        for node in sorted(graph):
            if color.get(node, 0) == 0:
                dfs(node)


# ----------------------------------------------------------------------
# Static half: entry points
# ----------------------------------------------------------------------
def lint_concurrency(source: str, filename: str = "<string>") -> List[Diagnostic]:
    """Concurrency-lint one module's source text."""
    try:
        linter = _ConcurrencyLinter(filename, source)
    except SyntaxError as exc:
        return [
            error(
                "conc-syntax",
                f"cannot parse module: {exc.msg}",
                f"{filename}:{exc.lineno or 0}",
            )
        ]
    return linter.run()


def lint_concurrency_sources(
    package_dir: str | Path | None = None,
) -> List[Diagnostic]:
    """Concurrency-lint every module of the package (default: ``repro``).

    Unlike the executor-contract lint — which only covers
    :mod:`repro.runtimes` — this pass walks the whole source tree: the
    cluster transport, the buffer pools, and the check machinery itself
    all hold locks.
    """
    if package_dir is None:
        package_dir = Path(__file__).resolve().parent.parent
    package_dir = Path(package_dir)
    out: List[Diagnostic] = []
    scanned = 0
    for path in sorted(package_dir.rglob("*.py")):
        rel = f"{package_dir.name}/{path.relative_to(package_dir)}"
        out.extend(lint_concurrency(path.read_text(encoding="utf-8"), rel))
        scanned += 1
    out.append(
        info(
            "conc-scan",
            f"concurrency-linted {scanned} modules under {package_dir.name}/",
            "concurrency",
        )
    )
    return out


# ----------------------------------------------------------------------
# Runtime half: lockset sanitizer
# ----------------------------------------------------------------------
#: The real primitives, captured at import so the sanitizer's own state is
#: never built from (or hidden behind) its own proxies.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


@dataclass
class SanitizerStats:
    """Instrumentation counters of one sanitized run."""

    lock_acquires: int = 0
    lock_releases: int = 0
    locks_created: int = 0
    publishes_seen: int = 0
    reads_checked: int = 0
    injected_stalls: int = 0


@dataclass
class _PublishStamp:
    """Writer-side state captured at one buffer's publish."""

    thread: int
    lockset: FrozenSet[int]
    clock: _VectorClock


class LockSanitizer:
    """Process-wide lockset + happens-before state for a sanitized run.

    Installed by :func:`instrument`; every sanitized primitive and every
    trace event reports into it.  Thread clocks advance on each lock
    operation; a release joins the releaser's clock into the lock, an
    acquire joins the lock's clock into the acquirer — so ``a.clock >=
    b.clock_at(e)`` holds exactly when a chain of real lock hand-offs
    orders event ``e`` before ``a``'s present.  Publishes additionally
    tick the writer's clock, so a reader can only dominate a publish
    through synchronization the writer performed *after* publishing.
    """

    def __init__(self) -> None:
        self._meta = _REAL_LOCK()
        self._next_lock_id = 0
        self._thread_idx: Dict[int, int] = {}
        self._thread_vc: Dict[int, _VectorClock] = {}
        self._lock_vc: Dict[int, _VectorClock] = {}
        self._held: Dict[int, Dict[int, int]] = {}
        #: Every publish of a buffer keeps its stamp: an executor may
        #: legitimately publish one output through several channels (e.g.
        #: a mailbox post plus a local store put), and a reader is
        #: synchronized if it is ordered after ANY of them.
        self._publishes: Dict[TaskKey, List[_PublishStamp]] = {}
        self._reported: Set[Tuple[TaskKey, TaskKey]] = set()
        self.diagnostics: List[Diagnostic] = []
        self.stats = SanitizerStats()

    # -- bookkeeping (meta-lock held) ----------------------------------
    def _ticked_clock(self, ident: int) -> _VectorClock:
        idx = self._thread_idx.setdefault(ident, len(self._thread_idx))
        vc = self._thread_vc.get(ident)
        if vc is None:
            vc = _VectorClock()
            self._thread_vc[ident] = vc
        vc.tick(idx)
        return vc

    def new_lock_id(self) -> int:
        with self._meta:
            self._next_lock_id += 1
            self.stats.locks_created += 1
            return self._next_lock_id

    # -- proxy callbacks -----------------------------------------------
    def on_acquire(self, lock_id: int, count: int = 1) -> None:
        ident = threading.get_ident()
        with self._meta:
            self.stats.lock_acquires += 1
            held = self._held.setdefault(ident, {})
            held[lock_id] = held.get(lock_id, 0) + count
            vc = self._ticked_clock(ident)
            lvc = self._lock_vc.get(lock_id)
            if lvc is not None:
                vc.join(lvc)

    def on_release(self, lock_id: int, count: int = 1) -> None:
        ident = threading.get_ident()
        with self._meta:
            self.stats.lock_releases += 1
            held = self._held.setdefault(ident, {})
            depth = held.get(lock_id, 0) - count
            if depth > 0:
                held[lock_id] = depth
            else:
                held.pop(lock_id, None)
            vc = self._ticked_clock(ident)
            lvc = self._lock_vc.setdefault(lock_id, _VectorClock())
            lvc.join(vc)

    def release_all(self, lock_id: int) -> int:
        """Fully release a reentrant hold (Condition.wait); returns the
        recursion depth released so it can be restored afterwards."""
        ident = threading.get_ident()
        with self._meta:
            held = self._held.setdefault(ident, {})
            depth = held.pop(lock_id, 0)
            if depth:
                self.stats.lock_releases += 1
                vc = self._ticked_clock(ident)
                lvc = self._lock_vc.setdefault(lock_id, _VectorClock())
                lvc.join(vc)
            return max(depth, 1)

    def note_stall(self, seconds: float) -> None:
        """Record an injected transient stall (see :mod:`repro.faults`)."""
        with self._meta:
            self.stats.injected_stalls += 1

    # -- trace-event observer ------------------------------------------
    def observe(self, kind: str, task: TaskKey, source: TaskKey | None) -> None:
        ident = threading.get_ident()
        if kind == EV_PUBLISH:
            with self._meta:
                self.stats.publishes_seen += 1
                vc = self._ticked_clock(ident)
                self._publishes.setdefault(task, []).append(
                    _PublishStamp(
                        ident,
                        frozenset(self._held.get(ident, ())),
                        vc.snapshot(),
                    )
                )
        elif kind == EV_ACQUIRE and source is not None:
            with self._meta:
                self.stats.reads_checked += 1
                stamps = self._publishes.get(source)
                if not stamps:
                    return  # no publish seen: hb_audit's department
                reader_locks = frozenset(self._held.get(ident, ()))
                rvc = self._thread_vc.get(ident)
                for stamp in stamps:
                    if stamp.thread == ident:
                        return  # program order within one thread
                    if stamp.lockset & reader_locks:
                        return  # a common lock protects the buffer
                    if rvc is not None and rvc.dominates(stamp.clock):
                        return  # a real lock hand-off orders the access
                stamp = stamps[-1]
                if (source, task) in self._reported:
                    return
                self._reported.add((source, task))
                gi, t, i = source
                rgi, rt, ri = task
                self.diagnostics.append(
                    error(
                        "conc-lockset-race",
                        f"the output of graph {gi} (t={t}, i={i}) was "
                        f"published on thread {stamp.thread} and read by "
                        f"graph {rgi} (t={rt}, i={ri}) on thread {ident} "
                        "with an empty candidate lockset and no "
                        "happens-before edge from any lock hand-off — "
                        "the read races the write even if the bytes "
                        "happen to validate",
                        f"graph {rgi} (t={rt}, i={ri})",
                        "protect the shared buffer with one common lock, "
                        "or route it through a synchronizing channel "
                        "(condition, queue) the reader actually waits on",
                    )
                )


class _SanitizedLock:
    """Recording proxy over a real ``Lock``/``RLock``.

    Implements the full lock protocol plus the private
    ``_release_save``/``_acquire_restore``/``_is_owned`` trio
    ``threading.Condition`` probes for, so conditions built over a
    sanitized lock keep exact wait semantics (including reentrant holds)
    while every transition is recorded.
    """

    def __init__(self, san: LockSanitizer, inner: Any, reentrant: bool) -> None:
        self._san = san
        self._inner = inner
        self._reentrant = reentrant
        self._id = san.new_lock_id()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = bool(self._inner.acquire(blocking, timeout))
        if ok:
            self._san.on_acquire(self._id)
        return ok

    def release(self) -> None:
        # Record first: the lock's clock must carry this thread's history
        # before any waiter can possibly acquire.
        self._san.on_release(self._id)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        if probe is not None:
            return bool(probe())
        return self._is_owned()

    # -- Condition integration -----------------------------------------
    def _release_save(self) -> Tuple[Any, int, bool]:
        if self._reentrant:
            depth = self._san.release_all(self._id)
            return (self._inner._release_save(), depth, True)
        self._san.on_release(self._id)
        self._inner.release()
        return (None, 1, False)

    def _acquire_restore(self, state: Tuple[Any, int, bool]) -> None:
        inner_state, depth, reentrant = state
        if reentrant:
            self._inner._acquire_restore(inner_state)
        else:
            self._inner.acquire()
        self._san.on_acquire(self._id, count=depth)

    def _is_owned(self) -> bool:
        if self._reentrant:
            return bool(self._inner._is_owned())
        # Plain-lock probe (the stdlib fallback): unrecorded on purpose.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<sanitized {'RLock' if self._reentrant else 'Lock'} #{self._id}>"


_active: LockSanitizer | None = None


def active_sanitizer() -> LockSanitizer | None:
    """The installed sanitizer, or ``None`` outside :func:`instrument`."""
    return _active


@contextlib.contextmanager
def instrument() -> Iterator[LockSanitizer]:
    """Install the lockset sanitizer for the duration of the block.

    Replaces ``threading.Lock`` and ``threading.RLock`` with recording
    proxies (``threading.Condition`` and everything built on these —
    ``Event``, ``queue.Queue`` — is covered transitively, because the
    stdlib constructs their internals through the patched names) and
    hooks the trace-event observer.  Locks created *inside* the block are
    sanitized; construct the executor inside it, or use
    :func:`sanitized_run`, which does.  Process-wide and non-reentrant,
    like :func:`repro.runtimes._common.tracing`.
    """
    global _active
    if _active is not None:
        raise RuntimeError("a lock sanitizer is already installed")
    san = LockSanitizer()

    def make_lock() -> _SanitizedLock:
        return _SanitizedLock(san, _REAL_LOCK(), reentrant=False)

    def make_rlock() -> _SanitizedLock:
        return _SanitizedLock(san, _REAL_RLOCK(), reentrant=True)

    _active = san
    threading.Lock = make_lock  # type: ignore[assignment]
    threading.RLock = make_rlock  # type: ignore[assignment]
    set_event_observer(san.observe)
    try:
        yield san
    finally:
        threading.Lock = _REAL_LOCK  # type: ignore[assignment]
        threading.RLock = _REAL_RLOCK  # type: ignore[assignment]
        set_event_observer(None)
        _active = None


# ----------------------------------------------------------------------
# Runtime half: sanitized execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SanitizeResult:
    """Outcome of a sanitized run: the normal result, the schedule audit,
    the lockset findings, and the instrumentation counters."""

    run: RunResult
    diagnostics: List[Diagnostic]
    num_events: int
    stats: SanitizerStats = field(default_factory=SanitizerStats)

    @property
    def ok(self) -> bool:
        """True when neither the audit nor the sanitizer found anything."""
        return not findings(self.diagnostics)

    def report(self) -> str:
        """The run report plus a sanitizer summary line."""
        n = len(findings(self.diagnostics))
        status = "clean" if n == 0 else f"{n} finding(s)"
        return (
            f"{self.run.report()}\n"
            f"Sanitizer {status} ({self.num_events} events, "
            f"{self.stats.lock_acquires} lock acquires on "
            f"{self.stats.locks_created} locks)\n"
            "Note: sanitized timings include instrumentation overhead — "
            "never report them as METG numbers"
        )


def sanitized_run(
    executor: Executor | Callable[[], Executor],
    graphs: Sequence[TaskGraph],
    *,
    validate: bool = True,
) -> SanitizeResult:
    """Execute ``graphs`` under the lockset sanitizer and the schedule
    audit, and fold both diagnostic streams into one result.

    Pass a zero-arg *factory* rather than a built executor when its locks
    are created at construction time — the factory is invoked inside
    :func:`instrument`, so those locks are sanitized too (a factory-made
    executor is also closed here, since the caller never sees it).
    """
    recorder = TraceRecorder()  # built outside instrument(): raw lock
    owned: Executor | None = None
    with instrument() as san:
        if isinstance(executor, Executor):
            ex = executor
        else:
            ex = owned = executor()
        try:
            with tracing(recorder):
                result = ex.run(graphs, validate=validate)
        finally:
            if owned is not None:
                close = getattr(owned, "close", None)
                if close is not None:
                    close()
    diags = audit_trace(list(graphs), recorder.events)
    diags.extend(san.diagnostics)
    diags.append(
        info(
            "conc-sanitize",
            f"sanitized run of executor {ex.name!r}: "
            f"{san.stats.lock_acquires} lock acquires, "
            f"{san.stats.publishes_seen} publishes, "
            f"{san.stats.reads_checked} reads checked",
            "sanitize",
        )
    )
    return SanitizeResult(
        run=result,
        diagnostics=diags,
        num_events=len(recorder.events),
        stats=san.stats,
    )
