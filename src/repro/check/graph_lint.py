"""Static task-graph lint: prove a configuration well-formed before running.

The paper's safety net is dynamic — bytewise validation catches a bug only
if a run trips it.  This pass proves properties of the *configuration*
without executing a single kernel:

* **Duality** (``graph-duality``): the dependence relation's fundamental
  invariant, ``j in deps(t, i) <=> i in rdeps(t-1, j)``, both sides
  restricted to points that exist (``contains_point``), checked over the
  full iteration space.
* **Dangling edges** (``graph-dangling-dep``): every declared dependency
  must name a point that exists at the previous timestep.
* **Acyclicity / schedulability** (``graph-cycle``): a dependency-counting
  replay — exactly what the real executors run — must retire every task.
  A deadlocked replay means the relation is cyclic in the waits-for sense
  (an edge consumed by ``dependencies`` is never released by
  ``reverse_dependencies``).
* **Dependency-count bounds** (``graph-dep-count``): per-task dependency
  counts must agree with the Table 2 equations, i.e. never exceed the
  pattern's ``max_dependencies()`` bound, and interval queries must be
  self-consistent.
* **Memory overcommit** (``graph-memory-overcommit``): the live payload
  frontier (producer outputs + consumer copies + scratch working sets)
  estimated against :class:`~repro.sim.machine.MachineSpec` DRAM.
* **Critical path** (``graph-critical-path`` / ``graph-infeasible``): the
  longest kernel-weighted path is a lower bound on any executor's runtime;
  with a time budget it becomes a feasibility check.

Findings are structured :class:`~repro.core.diagnostics.Diagnostic` records
with severity, location, and a fix hint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.diagnostics import Diagnostic, error, info, warning
from ..core.task_graph import TaskGraph
from ..sim.machine import MachineSpec


def _point(g: TaskGraph, t: int, i: int) -> str:
    return f"graph {g.graph_index} (t={t}, i={i})"


# ----------------------------------------------------------------------
# Individual passes
# ----------------------------------------------------------------------
def check_duality(g: TaskGraph, out: List[Diagnostic]) -> None:
    """Exhaustively verify deps/rdeps duality restricted to existing points."""
    for t, i in g.points():
        for j in g.dependency_points(t, i):
            if not g.contains_point(t - 1, j):
                out.append(
                    error(
                        "graph-dangling-dep",
                        f"depends on (t={t - 1}, i={j}), which is outside the "
                        "iteration space",
                        _point(g, t, i),
                        "clip raw dependencies to the previous timestep's "
                        "active window (offset/width_at_timestep)",
                    )
                )
                continue
            if i not in set(g.reverse_dependency_points(t - 1, j)):
                out.append(
                    error(
                        "graph-duality",
                        f"reads (t={t - 1}, i={j}) but the producer's "
                        "reverse_dependencies do not list it as a consumer",
                        _point(g, t, i),
                        "make reverse_dependencies the exact inverse of "
                        "dependencies for this pattern",
                    )
                )
        if t + 1 < g.timesteps:
            for j in g.reverse_dependency_points(t, i):
                if not g.contains_point(t + 1, j):
                    out.append(
                        error(
                            "graph-dangling-dep",
                            f"lists consumer (t={t + 1}, i={j}), which is "
                            "outside the iteration space",
                            _point(g, t, i),
                            "clip raw reverse dependencies to the next "
                            "timestep's active window",
                        )
                    )
                elif i not in set(g.dependency_points(t + 1, j)):
                    out.append(
                        error(
                            "graph-duality",
                            f"lists consumer (t={t + 1}, i={j}) but that task's "
                            "dependencies do not include this producer",
                            _point(g, t, i),
                            "make dependencies the exact inverse of "
                            "reverse_dependencies for this pattern",
                        )
                    )


def check_schedulability(graphs: Sequence[TaskGraph], out: List[Diagnostic]) -> None:
    """Dependency-counting replay: every task must become ready and retire.

    This is the executor's-eye view of acyclicity: real executors release a
    consumer when each of its producers completes (via
    ``reverse_dependencies``) and wait for ``num_dependencies`` inputs.  If
    the two sides disagree, or edges form a waits-for cycle, the replay
    deadlocks exactly as a real run would hang.
    """
    pending: Dict[Tuple[int, int, int], int] = {}
    ready: List[Tuple[int, int, int]] = []
    by_index = {g.graph_index: g for g in graphs}
    total = 0
    for g in graphs:
        for t, i in g.points():
            total += 1
            n = g.num_dependencies(t, i)
            if n == 0:
                ready.append((g.graph_index, t, i))
            else:
                pending[(g.graph_index, t, i)] = n
    retired = 0
    while ready:
        gi, t, i = ready.pop()
        retired += 1
        g = by_index[gi]
        if t + 1 >= g.timesteps:
            continue
        for j in g.reverse_dependency_points(t, i):
            key = (gi, t + 1, j)
            left = pending.get(key)
            if left is None:
                continue  # duality pass reports the mismatch itself
            if left == 1:
                del pending[key]
                ready.append(key)
            else:
                pending[key] = left - 1
    if retired != total:
        stuck = sorted(pending)[:5]
        out.append(
            error(
                "graph-cycle",
                f"dependency-counting replay deadlocked: {total - retired} of "
                f"{total} tasks never became ready (e.g. {stuck}); the "
                "dependence relation is cyclic or its duality is broken",
                "schedulability",
                "every edge consumed by dependencies() must be released by "
                "the producer's reverse_dependencies()",
            )
        )


def check_dependency_counts(g: TaskGraph, out: List[Diagnostic]) -> None:
    """Per-task dependency counts vs. the Table 2 pattern bounds."""
    bound = g.max_dependencies()
    for t, i in g.points():
        intervals = g.dependencies(t, i)
        n_count = g.num_dependencies(t, i)
        n_points = sum(1 for _ in g.dependency_points(t, i))
        if n_count != n_points:
            out.append(
                error(
                    "graph-dep-count",
                    f"num_dependencies reports {n_count} but the dependency "
                    f"intervals {intervals} cover {n_points} points",
                    _point(g, t, i),
                    "keep num_dependencies consistent with dependencies()",
                )
            )
        if t > 0 and n_count > bound:
            out.append(
                error(
                    "graph-dep-count",
                    f"{n_count} dependencies exceed the "
                    f"{g.dependence.value} pattern bound of {bound} "
                    "(Table 2)",
                    _point(g, t, i),
                    "fix the pattern's dependencies() or its "
                    "max_dependencies() bound",
                )
            )


def peak_payload_bytes(graphs: Sequence[TaskGraph]) -> int:
    """Upper estimate of the live payload frontier, in bytes.

    Executors hold at most two timesteps of outputs per graph (producers of
    the frontier plus the frontier's own outputs), one consumer copy per
    dependence edge crossing the frontier, and one scratch buffer per
    column.
    """
    peak = 0
    for g in graphs:
        worst = 0
        for t in range(g.timesteps):
            live = g.width_at_timestep(t) * g.output_bytes_per_task
            if t + 1 < g.timesteps:
                live += g.width_at_timestep(t + 1) * g.output_bytes_per_task
                edges = sum(
                    g.num_dependencies(t + 1, j)
                    for j in range(
                        g.offset_at_timestep(t + 1),
                        g.offset_at_timestep(t + 1) + g.width_at_timestep(t + 1),
                    )
                )
                live += edges * g.output_bytes_per_task
            worst = max(worst, live)
        peak += worst + g.max_width * g.scratch_bytes_per_task
    return peak


def check_memory(
    graphs: Sequence[TaskGraph], machine: MachineSpec, out: List[Diagnostic]
) -> None:
    """Flag configurations whose payload frontier overcommits machine DRAM."""
    peak = peak_payload_bytes(graphs)
    if peak > machine.total_memory:
        out.append(
            warning(
                "graph-memory-overcommit",
                f"estimated live payload frontier of {peak:,} bytes exceeds "
                f"machine memory of {machine.total_memory:,.0f} bytes "
                f"({machine.nodes} nodes x {machine.memory_per_node:,.0f})",
                "memory",
                "reduce -output/-scratch bytes or graph width, or add nodes",
            )
        )


def critical_path_seconds(
    graphs: Sequence[TaskGraph], machine: MachineSpec
) -> float:
    """Kernel-weighted longest path: a lower bound on any executor's runtime.

    Communication is ignored (it only adds time), so the bound is valid for
    every runtime system; concurrent graphs run in parallel, so the bound is
    the max over graphs.
    """
    model = machine.kernel_time_model()
    best = 0.0
    for g in graphs:
        prev: Dict[int, float] = {}
        for t in range(g.timesteps):
            cur: Dict[int, float] = {}
            off = g.offset_at_timestep(t)
            for i in range(off, off + g.width_at_timestep(t)):
                depth = 0.0
                if t > 0:
                    for j in g.dependency_points(t, i):
                        depth = max(depth, prev.get(j, 0.0))
                cur[i] = depth + model.task_seconds(g.kernel, t, i, g.seed)
            prev = cur
        if prev:
            best = max(best, max(prev.values()))
    return best


def check_critical_path(
    graphs: Sequence[TaskGraph],
    machine: MachineSpec,
    time_budget_seconds: Optional[float],
    out: List[Diagnostic],
) -> None:
    """Report the critical-path bound; with a budget, check feasibility."""
    cp = critical_path_seconds(graphs, machine)
    total_work = sum(
        machine.kernel_time_model().task_seconds(g.kernel, t, i, g.seed)
        for g in graphs
        for t, i in g.points()
    )
    ideal = total_work / max(1, machine.total_cores)
    out.append(
        info(
            "graph-critical-path",
            f"runtime lower bound: critical path {cp:.3e} s, "
            f"perfect-parallelism bound {ideal:.3e} s on "
            f"{machine.total_cores} cores",
            "critical-path",
        )
    )
    if time_budget_seconds is not None and cp > time_budget_seconds:
        out.append(
            error(
                "graph-infeasible",
                f"critical-path lower bound {cp:.3e} s exceeds the time "
                f"budget of {time_budget_seconds:.3e} s on any machine of "
                "this speed — no schedule can meet it",
                "critical-path",
                "shorten the graph (fewer timesteps), shrink the kernel, or "
                "raise the budget",
            )
        )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def lint_graphs(
    graphs: Sequence[TaskGraph],
    machine: MachineSpec | None = None,
    *,
    time_budget_seconds: float | None = None,
) -> List[Diagnostic]:
    """Run every static pass over ``graphs`` and return the diagnostics.

    ``machine`` defaults to the Cori-Haswell reference spec; it supplies the
    kernel time model for the critical-path bound and the DRAM capacity for
    the overcommit check.
    """
    machine = machine or MachineSpec()
    out: List[Diagnostic] = []
    for g in graphs:
        check_duality(g, out)
        check_dependency_counts(g, out)
    check_schedulability(graphs, out)
    check_memory(graphs, machine, out)
    check_critical_path(graphs, machine, time_budget_seconds, out)
    return out
