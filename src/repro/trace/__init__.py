"""repro.trace — wall-clock span tracing for the real executors.

Public surface:

* :mod:`repro.trace.recorder` — the span recorder (``capture()``,
  ``enabled``, ``begin``/``complete``/``instant``/``counter``); executors
  import this module directly so the ``enabled`` flag stays a live
  attribute read.
* :mod:`repro.trace.merge` — per-rank clock alignment and dump merging.
* :mod:`repro.trace.export` — Chrome trace-event JSON in/out + schema
  validation.
* :mod:`repro.trace.conformance` — the well-formedness checker backing
  the ``traceconf`` test tier.
"""

from .conformance import check_trace
from .export import load_chrome, to_chrome, validate_chrome, write_chrome
from .merge import align_offset, merge_dumps
from .recorder import (
    CAT_DISPATCH,
    CAT_KERNEL,
    CAT_PUBLISH,
    CAT_SCHED,
    CAT_WIRE,
    SpanRecorder,
    Trace,
    TraceRecord,
    capture,
)

__all__ = [
    "CAT_DISPATCH",
    "CAT_KERNEL",
    "CAT_PUBLISH",
    "CAT_SCHED",
    "CAT_WIRE",
    "SpanRecorder",
    "Trace",
    "TraceRecord",
    "align_offset",
    "capture",
    "check_trace",
    "load_chrome",
    "merge_dumps",
    "to_chrome",
    "validate_chrome",
    "write_chrome",
]
