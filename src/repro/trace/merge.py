"""Clock alignment and trace merging across processes.

Worker and rank processes record spans against their own
``perf_counter_ns`` origin.  On Linux ``perf_counter`` is
``CLOCK_MONOTONIC``, which every process of one host shares, so aligning
a child's trace onto the parent's timeline is a single additive offset —
no rate correction, no re-clocking.  The offset is estimated with
Cristian's algorithm over the existing control pipe: the parent stamps
``t0``, asks the rank for its clock, stamps ``t1`` on the reply, and
takes ``offset = (t0 + t1) // 2 - rank_clock``.  The error is bounded by
half the round-trip time — microseconds on a local pipe, far below the
span durations the trace is meant to explain.

For same-host monotonic clocks the true offset is ~0 and the estimate
mostly corrects pipe latency; the machinery matters because it keeps the
merge correct even when the clock domains genuinely differ, and it is
what the hypothesis merge properties exercise with adversarial skews.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .recorder import Trace, TraceRecord, materialize_event


def align_offset(parent_send_ns: int, parent_recv_ns: int, remote_clock_ns: int) -> int:
    """Cristian's estimate of ``parent_clock - remote_clock`` from one
    round trip: the remote sampled its clock somewhere inside
    ``[parent_send_ns, parent_recv_ns]``; assume the midpoint."""
    return (parent_send_ns + parent_recv_ns) // 2 - remote_clock_ns


def materialize_dump(
    pid: str,
    buffers: Sequence[Any],
    *,
    offset_ns: int = 0,
    seen_tracks: Optional[Set[Tuple[str, str]]] = None,
) -> Tuple[List[TraceRecord], int]:
    """Materialize one process's buffer dump (``[[tid, dropped, events]]``)
    into records on the merged timeline.

    ``seen_tracks`` (shared across calls) guarantees collision-free track
    keys: if two dumps claim the same ``(pid, tid)`` — e.g. a healed
    worker re-sent under a reused label — the later one is suffixed rather
    than interleaved into the earlier track, which would break the
    per-track monotonicity invariant.
    """
    if seen_tracks is None:
        seen_tracks = set()
    records: List[TraceRecord] = []
    dropped = 0
    for entry in buffers:
        try:
            tid, buf_dropped, events = entry
        except (TypeError, ValueError):
            continue
        tid = str(tid)
        n = 2
        while (pid, tid) in seen_tracks:
            tid = f"{tid}~{n}"
            n += 1
        seen_tracks.add((pid, tid))
        dropped += int(buf_dropped)
        for ev in events:
            rec = materialize_event(pid, tid, ev, offset_ns)
            if rec is not None:
                records.append(rec)
    return records, dropped


def merge_dumps(parts: Sequence[Tuple[str, int, Sequence[Any]]]) -> Trace:
    """Merge ``(pid, offset_ns, buffers)`` dumps from K processes into one
    :class:`Trace` on a common timeline, records sorted by aligned start
    timestamp (ties broken by track so the order is deterministic)."""
    seen: Set[Tuple[str, str]] = set()
    records: List[TraceRecord] = []
    dropped = 0
    for pid, offset_ns, buffers in parts:
        part, part_dropped = materialize_dump(
            pid, buffers, offset_ns=offset_ns, seen_tracks=seen
        )
        records.extend(part)
        dropped += part_dropped
    records.sort(key=lambda r: (r.ts_ns, r.pid, r.tid, -r.dur_ns))
    return Trace(records, dropped)


def track_extents(trace: Trace) -> Dict[Tuple[str, str], Tuple[int, int]]:
    """Per-track ``(first start, last end)`` in aligned nanoseconds."""
    extents: Dict[Tuple[str, str], Tuple[int, int]] = {}
    for (pid, tid), records in trace.tracks().items():
        starts = [r.ts_ns for r in records]
        ends = [r.end_ns for r in records]
        extents[(pid, tid)] = (min(starts), max(ends))
    return extents
