"""Lock-free-per-thread span recorder for the real executors.

The paper explains METG curves through *where time goes* — per-task
overhead, communication stalls, phased idle gaps (§5.1, §5.6–5.7).  This
module is the measurement substrate: wall-clock spans recorded at the
executors' kernel/publish/wire/dispatch sites with near-zero disturbance
of the run being measured.

Design rules (all load-bearing):

* **Zero cost when disabled.**  Every instrumentation site checks the
  module-level :data:`enabled` flag before doing *anything* — no
  allocation, no clock read, no attribute chain beyond one module
  attribute.  ``enabled`` is only ever flipped by :func:`capture` (or the
  worker/rank helpers), never by the hot path.
* **Lock-free per thread.**  Each recording thread appends into its own
  bounded ring buffer, obtained through a ``threading.local`` — the
  append path takes no lock and shares no cache line with other
  recorders.  The recorder's lock guards only buffer *registration* (once
  per thread) and collection.
* **Bounded with an exact drop counter.**  A buffer at capacity drops the
  newest event and counts it; the trace reports exactly how many events
  were lost, so a truncated trace can never masquerade as a complete one.
* **Timestamps are ``perf_counter_ns``** — monotonic, unaffected by NTP
  slews, and (on Linux) readable across processes of one host, which is
  what makes the per-rank clock alignment in :mod:`repro.trace.merge` an
  affine correction rather than a re-clocking.

Tracing is diagnostics-only: traced timings must never feed METG numbers
(the same rule as the sanitizer); the CLI enforces ``--trace`` and
``-metg`` to be mutually exclusive.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Span/event categories used by the built-in instrumentation sites.
CAT_KERNEL = "kernel"  #: a task's kernel executing (exactly one per task)
CAT_PUBLISH = "publish"  #: a task output becoming visible to consumers
CAT_WIRE = "wire"  #: bytes moving over a socket (cluster executors)
CAT_DISPATCH = "dispatch"  #: worker-pool / controller dispatch machinery
CAT_SCHED = "sched"  #: scheduler waits and acquire instants

#: Default per-thread ring capacity (events).  65536 events cover several
#: hundred thousand tasks' worth of kernel spans per worker before drops.
DEFAULT_CAPACITY = 1 << 16

#: Is span recording active in this process?  Instrumentation sites must
#: check this (as ``trace.enabled``, a module attribute read) before any
#: other work; it is the whole disabled-path cost.
enabled: bool = False

_active: "SpanRecorder | None" = None


def now() -> int:
    """Current timestamp in nanoseconds (``perf_counter_ns``).

    Named so the executor-contract lint's wall-clock ban does not trip on
    instrumentation sites inside executor classes: the clock is read here,
    in the tracing layer, never inline in scheduling code.
    """
    return time.perf_counter_ns()


#: Alias used at span-start sites (reads better than ``now`` there).
begin = now


@dataclass(frozen=True)
class TraceRecord:
    """One materialized trace event, ready for export.

    ``ph`` follows the Chrome trace-event phase vocabulary: ``"X"`` a
    complete span (``ts_ns`` start, ``dur_ns`` duration), ``"i"`` an
    instant, ``"C"`` a counter sample (``args`` holds the track values).
    ``pid``/``tid`` are *labels* (rank/worker and thread), not OS ids.
    """

    ph: str
    pid: str
    tid: str
    name: str
    cat: str
    ts_ns: int
    dur_ns: int = 0
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_ns(self) -> int:
        return self.ts_ns + self.dur_ns


class Trace:
    """A collected trace: materialized records plus the exact drop count."""

    def __init__(self, records: List[TraceRecord], dropped: int = 0) -> None:
        self.records = records
        self.dropped = dropped

    def __len__(self) -> int:
        return len(self.records)

    @property
    def spans(self) -> List[TraceRecord]:
        return [r for r in self.records if r.ph == "X"]

    @property
    def instants(self) -> List[TraceRecord]:
        return [r for r in self.records if r.ph == "i"]

    @property
    def counters(self) -> List[TraceRecord]:
        return [r for r in self.records if r.ph == "C"]

    def kernel_spans(self) -> List[TraceRecord]:
        return [r for r in self.records if r.ph == "X" and r.cat == CAT_KERNEL]

    def tracks(self) -> Dict[Tuple[str, str], List[TraceRecord]]:
        """Records grouped by ``(pid, tid)``, preserving recorded order
        (per-thread completion order — the order the monotonicity
        invariant speaks about)."""
        by_track: Dict[Tuple[str, str], List[TraceRecord]] = {}
        for r in self.records:
            by_track.setdefault((r.pid, r.tid), []).append(r)
        return by_track


class _Buffer:
    """One thread's bounded ring: append without locks, drop-newest with an
    exact counter at capacity."""

    __slots__ = ("tid", "capacity", "events", "dropped")

    def __init__(self, tid: str, capacity: int) -> None:
        self.tid = tid
        self.capacity = capacity
        self.events: List[Tuple[Any, ...]] = []
        self.dropped = 0

    def add(self, ev: Tuple[Any, ...]) -> None:
        if len(self.events) < self.capacity:
            self.events.append(ev)
        else:
            self.dropped += 1


class SpanRecorder:
    """Per-process span sink: one ring buffer per recording thread, plus
    foreign buffers ingested from workers/ranks at collection time."""

    def __init__(
        self,
        *,
        capacity_per_thread: int = DEFAULT_CAPACITY,
        pid: str = "main",
    ) -> None:
        if capacity_per_thread < 1:
            raise ValueError("capacity_per_thread must be >= 1")
        self.pid = pid
        self.capacity = capacity_per_thread
        self._tl = threading.local()
        self._lock = threading.Lock()
        self._buffers: List[_Buffer] = []
        #: Ingested foreign dumps: (pid, clock offset ns, buffer dump).
        self._foreign: List[Tuple[str, int, List[Any]]] = []

    # -- hot path ------------------------------------------------------
    def _buffer(self) -> _Buffer:
        buf = getattr(self._tl, "buf", None)
        if buf is None:
            name = threading.current_thread().name
            buf = _Buffer(name, self.capacity)
            with self._lock:
                # Thread names are labels, not identities: a second thread
                # reusing a name gets a disambiguated track.
                taken = {b.tid for b in self._buffers}
                if buf.tid in taken:
                    buf.tid = f"{name}#{threading.get_ident()}"
                self._buffers.append(buf)
            self._tl.buf = buf
        return buf

    def add(self, ev: Tuple[Any, ...]) -> None:
        self._buffer().add(ev)

    # -- collection ----------------------------------------------------
    def ingest(self, pid: str, buffers: List[Any], offset_ns: int = 0) -> None:
        """Attach a foreign dump (one worker's or rank's buffers, as
        returned by :func:`worker_drain`) under process label ``pid``,
        shifting its timestamps by ``offset_ns`` at materialization."""
        with self._lock:
            self._foreign.append((pid, offset_ns, buffers))

    def dump(self) -> List[Any]:
        """Picklable/JSON-able snapshot of this recorder's own buffers:
        ``[[tid, dropped, [event, ...]], ...]``."""
        with self._lock:
            return [[b.tid, b.dropped, list(b.events)] for b in self._buffers]

    def collect(self) -> Trace:
        """Materialize everything recorded (own threads + ingested dumps)
        into a :class:`Trace`."""
        from .merge import materialize_dump

        with self._lock:
            own = [[b.tid, b.dropped, list(b.events)] for b in self._buffers]
            foreign = list(self._foreign)
        records: List[TraceRecord] = []
        dropped = 0
        seen_tracks: set = set()
        for pid, offset_ns, buffers in [(self.pid, 0, own)] + foreign:
            part, part_dropped = materialize_dump(
                pid, buffers, offset_ns=offset_ns, seen_tracks=seen_tracks
            )
            records.extend(part)
            dropped += part_dropped
        return Trace(records, dropped)


# ----------------------------------------------------------------------
# Recording API (module-level so sites need no recorder handle)
# ----------------------------------------------------------------------
def complete(
    name: str, cat: str, start_ns: int, args: Dict[str, Any] | None = None
) -> None:
    """Record a complete span begun at ``start_ns`` and ending now.

    Sites call ``t0 = trace.begin()`` (guarded by ``trace.enabled``), do
    the work, then ``trace.complete(...)`` — the span is allocated only at
    completion, so an enabled-flag flip mid-span loses one span instead of
    corrupting the buffer.
    """
    rec = _active
    if rec is None:
        return
    end = time.perf_counter_ns()
    rec.add(("X", name, cat, start_ns, end - start_ns, args))


def instant(name: str, cat: str = "", args: Dict[str, Any] | None = None) -> None:
    """Record a zero-duration instant event."""
    rec = _active
    if rec is None:
        return
    rec.add(("i", name, cat, time.perf_counter_ns(), 0, args))


def counter(name: str, values: Dict[str, Any]) -> None:
    """Record one sample of a counter track (absolute values)."""
    rec = _active
    if rec is None:
        return
    rec.add(("C", name, "", time.perf_counter_ns(), 0, dict(values)))


@contextlib.contextmanager
def span(
    name: str, cat: str = "", args: Dict[str, Any] | None = None
) -> Iterator[None]:
    """Context-manager convenience for cold paths (setup, CLI).  Hot
    paths use the explicit ``begin()``/``complete()`` pair behind an
    ``enabled`` check instead — a generator frame per event is exactly
    the allocation the disabled path must not pay."""
    if not enabled:
        yield
        return
    t0 = time.perf_counter_ns()
    try:
        yield
    finally:
        complete(name, cat, t0, args)


def _observe(kind: str, task: Any, source: Any) -> None:
    """Event-observer bridge: the executors' existing ``record_event``
    sites surface input acquisition, which has no natural span (the wait
    is part of the scheduler, the claim itself is instantaneous) — it
    becomes an instant on the acquiring thread's track."""
    if kind == "acquire":
        instant("acquire", CAT_SCHED, {"task": task, "source": source})


@contextlib.contextmanager
def capture(
    *,
    capacity_per_thread: int = DEFAULT_CAPACITY,
    pid: str = "main",
) -> Iterator[SpanRecorder]:
    """Enable span recording for the duration and yield the recorder.

    Installs the acquire-instant bridge on the executors' event-observer
    hook when it is free (the lockset sanitizer owns the same hook; under
    ``--sanitize`` the CLI refuses ``--trace`` outright, but library users
    composing both simply lose acquire instants, not the trace).  Nested
    or concurrent captures are not supported — one recorder per process.
    """
    global enabled, _active
    if _active is not None:
        raise RuntimeError("a span recorder is already active")
    rec = SpanRecorder(capacity_per_thread=capacity_per_thread, pid=pid)
    from ..runtimes import _common

    observing = False
    try:
        _common.set_event_observer(_observe)
        observing = True
    except RuntimeError:
        pass  # hook taken (sanitizer): trace without acquire instants
    _active = rec
    enabled = True
    try:
        yield rec
    finally:
        enabled = False
        _active = None
        if observing:
            _common.set_event_observer(None)


def active() -> SpanRecorder | None:
    """The currently capturing recorder, or ``None``."""
    return _active


def ingest(pid: str, buffers: List[Any], *, offset_ns: int = 0) -> None:
    """Attach a worker/rank dump to the active capture (no-op when none)."""
    rec = _active
    if rec is not None:
        rec.ingest(pid, buffers, offset_ns)


# ----------------------------------------------------------------------
# Worker/rank lifecycle (fork-pool broadcast targets; must be picklable
# module-level functions)
# ----------------------------------------------------------------------
def worker_begin(capacity_per_thread: int = DEFAULT_CAPACITY) -> None:
    """Start a fresh recorder in a worker/rank process.

    Always *replaces* any active recorder: a forked child inherits the
    parent's ``enabled`` flag and a copy of its buffers, and draining that
    copy would duplicate the parent's history into the child's track.
    """
    global enabled, _active
    _active = SpanRecorder(capacity_per_thread=capacity_per_thread, pid="worker")
    enabled = True


def worker_drain() -> List[Any]:
    """Stop recording in a worker/rank and return its buffer dump (see
    :meth:`SpanRecorder.dump`); the parent ingests it under the worker's
    process label."""
    global enabled, _active
    rec = _active
    enabled = False
    _active = None
    return rec.dump() if rec is not None else []


def fork_reset() -> None:
    """Discard any recorder state inherited across ``fork()``.  Called at
    worker/rank entry so a child forked mid-capture never records into (or
    later drains) a copy of the parent's buffers."""
    global enabled, _active
    enabled = False
    _active = None


def trace_stats(trace: Trace) -> Tuple[int, int, int, int]:
    """(spans, instants, counter samples, dropped) — the summary tuple the
    CLI folds into :class:`repro.core.metrics.TraceStats`."""
    spans = instants = counters = 0
    for r in trace.records:
        if r.ph == "X":
            spans += 1
        elif r.ph == "i":
            instants += 1
        else:
            counters += 1
    return spans, instants, counters, trace.dropped


def _normalize_args(args: Any) -> Dict[str, Any]:
    """Normalize an event's args mapping after a serialization round trip
    (JSON turns task-key tuples into lists)."""
    if not args:
        return {}
    out = dict(args)
    for k in ("task", "source"):
        v = out.get(k)
        if isinstance(v, (list, tuple)):
            out[k] = tuple(v)
    return out


def materialize_event(
    pid: str, tid: str, ev: Sequence[Any], offset_ns: int
) -> Optional[TraceRecord]:
    """Build one :class:`TraceRecord` from a raw buffer event, shifting
    its timestamp by ``offset_ns``.  Malformed events (a truncated dump)
    return ``None`` rather than poisoning the whole trace."""
    try:
        ph, name, cat, ts, dur, args = ev
        return TraceRecord(
            ph=str(ph),
            pid=pid,
            tid=tid,
            name=str(name),
            cat=str(cat),
            ts_ns=int(ts) + offset_ns,
            dur_ns=int(dur),
            args=_normalize_args(args),
        )
    except (TypeError, ValueError):
        return None
