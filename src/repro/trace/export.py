"""Chrome trace-event export and validation.

The on-disk format is the JSON Object Format of the Chrome trace-event
spec — ``{"traceEvents": [...]}`` — because it is what ``chrome://tracing``
and Perfetto's legacy importer load directly, and it round-trips through
plain :mod:`json`.  Conventions:

* ``ph``: ``"X"`` complete spans, ``"i"`` instants (scope ``"t"``),
  ``"C"`` counter samples, ``"M"`` metadata.
* ``ts``/``dur`` are **microseconds** (floats), rebased so the earliest
  event sits at 0 — Perfetto renders absolute ``perf_counter`` origins
  poorly.
* ``pid``/``tid`` are the recorder's string labels (``"main"``,
  ``"rank-2"`` / thread names), not OS ids; the viewers accept strings
  and the labels carry more meaning than pids ever would.

``validate_chrome`` is the schema gate CI runs against exported files;
``load_chrome`` reverses the export closely enough for ``task-bench
trace`` to summarize and Gantt-render a file it did not itself write.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .recorder import Trace, TraceRecord

_VALID_PH = {"X", "i", "C", "M"}


def to_chrome(trace: Trace) -> Dict[str, Any]:
    """Render a :class:`Trace` as a Chrome trace-event JSON object."""
    records = trace.records
    t0 = min((r.ts_ns for r in records), default=0)
    events: List[Dict[str, Any]] = []
    for r in records:
        ev: Dict[str, Any] = {
            "name": r.name,
            "ph": r.ph,
            "ts": (r.ts_ns - t0) / 1000.0,
            "pid": r.pid,
            "tid": r.tid,
        }
        if r.cat:
            ev["cat"] = r.cat
        if r.ph == "X":
            ev["dur"] = r.dur_ns / 1000.0
        elif r.ph == "i":
            ev["s"] = "t"  # thread-scoped instant
        if r.args:
            ev["args"] = {k: _jsonable(v) for k, v in r.args.items()}
        events.append(ev)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "task-bench", "dropped_events": trace.dropped},
    }


def write_chrome(trace: Trace, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome(trace), fh)
        fh.write("\n")


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    return value


def validate_chrome(obj: Any) -> List[str]:
    """Check an object against the subset of the Chrome trace-event schema
    this project emits.  Returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return ["top level is not a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing required key '{key}'")
        ph = ev.get("ph")
        if ph is not None and ph not in _VALID_PH:
            problems.append(f"{where}: invalid ph {ph!r}")
        for key in ("pid", "tid"):
            if key in ev and not isinstance(ev[key], str):
                problems.append(f"{where}: {key} must be a string label")
        if "ts" in ev and not isinstance(ev["ts"], (int, float)):
            problems.append(f"{where}: ts must be a number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where}: complete span missing numeric 'dur'")
            elif dur < 0:
                problems.append(f"{where}: negative dur {dur}")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant missing scope 's'")
        if len(problems) >= 50:
            problems.append("... (further problems suppressed)")
            break
    return problems


def load_chrome(path: str) -> Trace:
    """Load an exported file back into a :class:`Trace` (timestamps in
    nanoseconds relative to the file's own origin)."""
    with open(path, "r", encoding="utf-8") as fh:
        obj = json.load(fh)
    problems = validate_chrome(obj)
    if problems:
        raise ValueError(f"not a valid trace file: {problems[0]}")
    records: List[TraceRecord] = []
    for ev in obj["traceEvents"]:
        if ev.get("ph") == "M":
            continue
        args = ev.get("args") or {}
        records.append(
            TraceRecord(
                ph=ev["ph"],
                pid=ev["pid"],
                tid=ev["tid"],
                name=ev["name"],
                cat=ev.get("cat", ""),
                ts_ns=int(round(ev["ts"] * 1000.0)),
                dur_ns=int(round(ev.get("dur", 0) * 1000.0)),
                args={
                    k: tuple(v) if isinstance(v, list) and k in ("task", "source") else v
                    for k, v in args.items()
                },
            )
        )
    dropped = 0
    other = obj.get("otherData")
    if isinstance(other, dict):
        try:
            dropped = int(other.get("dropped_events", 0))
        except (TypeError, ValueError):
            dropped = 0
    return Trace(records, dropped)
