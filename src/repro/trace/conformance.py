"""Trace well-formedness checking — the `traceconf` tier's oracle.

A trace is only useful as evidence if it is internally consistent, so
every executor's trace is held to the same contract:

* **No negative durations.**  A span that ends before it starts means a
  site paired the wrong begin/complete calls.
* **Proper nesting per track.**  Two spans on one thread either nest or
  are disjoint; partial overlap means two sites interleaved their
  begin/complete pairs (spans from *different* threads may overlap
  freely — that is parallelism, not malformation).
* **Exactly one kernel span per task.**  The kernel span is the trace's
  ground truth; a missing one means an executor path is not instrumented,
  a duplicate means a task ran twice, an unknown key means label
  corruption (e.g. a JSON round trip that was not re-normalized).
* **Monotone per-buffer order.**  Events are recorded at completion time
  by a single thread, so each buffer's recorded order must be
  non-decreasing in end timestamp — and this survives rank alignment
  because the offset is additive per buffer.  A violation means buffers
  were interleaved during merge (a track-collision bug).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, List, Sequence, Tuple

from .recorder import CAT_KERNEL, Trace


def check_trace(trace: Trace, graphs: Sequence[Any] | None = None) -> List[str]:
    """Check a collected trace; returns a list of problems (empty = ok).

    When ``graphs`` is given, kernel-span coverage is checked against the
    graphs' exact task set.
    """
    problems: List[str] = []
    problems.extend(_check_durations(trace))
    problems.extend(_check_nesting(trace))
    problems.extend(_check_buffer_monotonicity(trace))
    if graphs is not None:
        problems.extend(_check_kernel_coverage(trace, graphs))
    return problems


def _check_durations(trace: Trace) -> List[str]:
    problems = []
    for r in trace.records:
        if r.dur_ns < 0:
            problems.append(
                f"negative duration: {r.name} on {r.pid}:{r.tid} ({r.dur_ns} ns)"
            )
    return problems


def _check_nesting(trace: Trace) -> List[str]:
    """Spans on one track must nest or be disjoint.  Sorting by
    ``(start, -duration)`` makes an enclosing span precede its children;
    a stack then catches any partial overlap."""
    problems = []
    for (pid, tid), records in trace.tracks().items():
        spans = sorted(
            (r for r in records if r.ph == "X"),
            key=lambda r: (r.ts_ns, -r.dur_ns),
        )
        stack: List[Any] = []
        for s in spans:
            while stack and stack[-1].end_ns <= s.ts_ns:
                stack.pop()
            if stack and s.end_ns > stack[-1].end_ns:
                problems.append(
                    f"overlapping spans on {pid}:{tid}: "
                    f"{stack[-1].name}@{stack[-1].ts_ns} and {s.name}@{s.ts_ns}"
                )
                continue
            stack.append(s)
    return problems


def _check_buffer_monotonicity(trace: Trace) -> List[str]:
    """Recorded order per track is completion order: end timestamps must
    be non-decreasing (instants/counters count with their own ts)."""
    problems = []
    for (pid, tid), records in trace.tracks().items():
        prev = None
        for r in records:
            end = r.end_ns
            if prev is not None and end < prev:
                problems.append(
                    f"non-monotone buffer on {pid}:{tid}: "
                    f"{r.name} ends at {end} after an event ending at {prev}"
                )
            prev = end
    return problems


def _check_kernel_coverage(trace: Trace, graphs: Sequence[Any]) -> List[str]:
    from ..runtimes._common import task_keys

    expected = list(task_keys(graphs))
    counts: Counter = Counter()
    problems: List[str] = []
    for r in trace.kernel_spans():
        key = r.args.get("task")
        if isinstance(key, (list, tuple)) and len(key) == 3:
            counts[tuple(key)] += 1
        else:
            problems.append(
                f"kernel span without a task key: {r.name} on {r.pid}:{r.tid}"
            )
    expected_set = set(expected)
    for key, n in counts.items():
        if key not in expected_set:
            problems.append(f"kernel span for unknown task {key}")
        elif n != 1:
            problems.append(f"task {key} has {n} kernel spans (expected 1)")
    missing = [k for k in expected if k not in counts]
    if missing:
        shown = ", ".join(map(str, missing[:5]))
        more = f" (+{len(missing) - 5} more)" if len(missing) > 5 else ""
        problems.append(f"{len(missing)} tasks without a kernel span: {shown}{more}")
    return problems


def kernel_intervals(trace: Trace) -> List[Tuple[Tuple[int, int, int], int, int]]:
    """``(task_key, start_ns, end_ns)`` for every kernel span — handy for
    tests asserting schedule properties on top of well-formedness."""
    out = []
    for r in trace.kernel_spans():
        key = r.args.get("task")
        if isinstance(key, (list, tuple)) and len(key) == 3:
            out.append((tuple(key), r.ts_ns, r.end_ns))
    return out
