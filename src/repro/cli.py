"""Task Bench command-line interface.

Accepts the official Task Bench flag vocabulary (see
:mod:`repro.core.config`) plus selection of the execution substrate::

    # run a stencil on the real thread-pool executor
    task-bench -steps 100 -width 4 -type stencil_1d \\
               -kernel compute_bound -iter 1024 -runtime threads -workers 4

    # simulate the same benchmark on 64 Cori-like nodes under the MPI model
    task-bench -steps 100 -width 2048 -type stencil_1d \\
               -kernel compute_bound -iter 1024 \\
               -runtime sim:mpi_p2p -nodes 64 -cores 32

``-runtime sim:<system>`` selects a modeled system on the simulator
substrate; any other name selects a real executor from
``repro.runtimes``.  Output is the core library's uniform report.

Two correctness-tooling entry points (see :mod:`repro.check`)::

    # static passes: graph lint + executor-contract lint + audited run
    task-bench check -steps 100 -width 4 -type stencil_1d -runtime threads

    # contract lint of this repo's own executors only (CI gate)
    task-bench check --self

    # a normal run with the happens-before schedule audit enabled
    task-bench -steps 100 -width 4 -runtime threads --audit

    # the same plus instrumented locks and the lockset race sanitizer
    task-bench -steps 100 -width 4 -runtime threads --sanitize

Exit codes for ``check``: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import sys
from typing import List, Sequence

from .core.config import AppConfig, ConfigError, parse_args
from .core.metrics import RunResult
from .runtimes.registry import (
    available_runtimes,
    describe_runtimes,
    make_executor,
)
from .sim.machine import MachineSpec
from .sim.network import ARIES
from .sim.simulator import simulate
from .sim.systems import all_systems, get_system, scaled_for


def _executor_kwargs(app: AppConfig) -> dict:
    """Fault-tolerance options forwarded to ``make_executor``."""
    kwargs: dict = {}
    if app.timeout is not None:
        kwargs["timeout"] = app.timeout
    if app.inject_fault is not None:
        from .faults import parse_fault

        kwargs["fault"] = parse_fault(app.inject_fault)
    return kwargs


def run_config(app: AppConfig) -> RunResult:
    """Execute a parsed configuration and return its result.

    Transient worker failures (a crashed or deadline-killed worker) are
    retried up to ``app.max_retries`` times — the executor's pool
    self-heals between attempts, so a retry costs a respawn, not a
    refork of the surviving workers.
    """
    if app.runtime.startswith("sim:"):
        system = get_system(app.runtime[len("sim:"):])
        machine = MachineSpec(
            nodes=app.nodes,
            cores_per_node=app.cores_per_node or 32,
        )
        return simulate(app.graphs, machine, scaled_for(system, machine), ARIES)
    import time

    from .metg.efficiency import RETRY_BACKOFF_SECONDS, TRANSIENT_ERRORS

    executor = make_executor(
        app.runtime, workers=app.workers, **_executor_kwargs(app)
    )
    retries = app.max_retries if app.max_retries is not None else 0
    attempt = 0
    try:
        while True:
            try:
                return executor.run(app.graphs, validate=app.validate)
            except TRANSIENT_ERRORS:
                if attempt >= retries:
                    raise
                time.sleep(RETRY_BACKOFF_SECONDS * (2 ** attempt))
                attempt += 1
    finally:
        # One-shot CLI run: worker pools / rank meshes must not outlive it.
        close = getattr(executor, "close", None)
        if close is not None:
            close()


def run_metg(app: AppConfig, target: float, *, report: bool = False) -> str:
    """Run a METG sweep for the configured graphs and runtime.

    The configured graphs serve as the workload template; the sweep varies
    their compute-kernel iteration count exactly as §4 prescribes
    ("maintaining exactly the same hardware and software configuration").
    """
    import dataclasses

    from .metg.metg import metg
    from .metg.runners import RealRunner, SimRunner

    def factory(iterations: int):
        return [
            dataclasses.replace(
                g, kernel=dataclasses.replace(g.kernel, iterations=iterations)
            )
            for g in app.graphs
        ]

    if app.runtime.startswith("sim:"):
        machine = MachineSpec(
            nodes=app.nodes, cores_per_node=app.cores_per_node or 32
        )
        runner = SimRunner(app.runtime[len("sim:"):], machine)
        max_iterations = 1 << 36
    else:
        runner = RealRunner(
            make_executor(
                app.runtime, workers=app.workers, **_executor_kwargs(app)
            ),
            max_retries=app.max_retries,
        )
        max_iterations = 1 << 24  # real kernels: bound the sweep
    try:
        result = metg(runner, factory, target_efficiency=target,
                      max_iterations=max_iterations)
    finally:
        close = getattr(runner, "close", None)
        if close is not None:
            close()
    lines = [
        f"METG({target:.0%}) {result.metg_seconds:e} seconds",
        f"Probes {len(result.history)}",
        f"Efficiency At Crossing {result.above.efficiency:.3f}",
        f"Iterations At Crossing {result.above.iterations}",
    ]
    retries = sum(
        m.result.faults.probe_retries
        for m in result.history
        if m.result.faults is not None
    )
    if report or retries:
        # Fault visibility (--report): a sweep that burned retries is a
        # measurement caveat even when every probe eventually succeeded.
        lines.append(f"Probe Retries {retries}")
        faults = getattr(getattr(runner, "executor", None), "_fault_stats", None)
        if report and faults is not None:
            lines.append(
                f"Worker Crashes {faults.worker_crashes} "
                f"({faults.worker_timeouts} deadline timeouts, "
                f"{faults.workers_respawned} respawned)"
            )
    return "\n".join(lines)


def run_check(args: List[str]) -> int:
    """``task-bench check``: run the static-analysis passes.

    ``--self`` lints only the repo's own executor sources (the CI gate);
    otherwise the configured graphs are graph-linted, the executor contract
    is linted, and — for real runtimes — the graphs are executed under the
    happens-before schedule audit.  Exit codes: 0 clean, 1 findings, 2
    usage error.
    """
    from .check import (
        audit_run,
        lint_concurrency_sources,
        lint_graphs,
        lint_runtime_sources,
    )
    from .core.diagnostics import findings, render_report

    diagnostics = []
    self_only = False
    if "--self" in args:
        args = [a for a in args if a != "--self"]
        self_only = True
        if args:
            print("error: check --self takes no further arguments",
                  file=sys.stderr)
            return 2
    time_budget: float | None = None
    if "-budget" in args:
        pos = args.index("-budget")
        args.pop(pos)
        if pos >= len(args):
            print("error: -budget is missing its value", file=sys.stderr)
            return 2
        try:
            time_budget = float(args.pop(pos))
        except ValueError:
            print("error: -budget expects a number", file=sys.stderr)
            return 2

    diagnostics.extend(lint_runtime_sources())
    diagnostics.extend(lint_concurrency_sources())
    if not self_only:
        try:
            app = parse_args(args)
        except (ConfigError, ValueError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        machine = MachineSpec(
            nodes=app.nodes, cores_per_node=app.cores_per_node or 32
        )
        diagnostics.extend(
            lint_graphs(app.graphs, machine, time_budget_seconds=time_budget)
        )
        if not app.runtime.startswith("sim:"):
            try:
                executor = make_executor(app.runtime, workers=app.workers)
            except ValueError as e:
                print(f"error: {e}", file=sys.stderr)
                return 2
            # Audit only schedulable configs: a deadlocked replay means the
            # real run would hang too.
            if not any(d.code == "graph-cycle" for d in diagnostics):
                audit = audit_run(executor, app.graphs, validate=app.validate)
                diagnostics.extend(audit.diagnostics)
    report = render_report(diagnostics)
    if report:
        print(report)
    bad = findings(diagnostics)
    print(f"check: {len(bad)} finding(s)")
    return 1 if bad else 0


def run_suite_cmd(args: List[str]) -> int:
    """``task-bench suite SPEC``: run a declarative benchmark suite.

    Cells run in parallel worker processes up to ``--jobs``, under the
    scheduler's core-budget and isolation admission rules; each finished
    cell is checkpointed so ``--resume`` completes only the remainder of
    a killed suite.  Exit codes: 0 all cells terminal, 1 failed cells,
    2 usage error.
    """
    from .suite import (
        SpecError,
        StoreError,
        SuiteStore,
        aggregate_rows,
        load_spec,
        render_csv,
        render_table,
        run_suite,
    )

    jobs = 1
    out_dir: str | None = None
    cores: int | None = None
    csv_path: str | None = None
    resume = False
    report = False
    quiet = False
    positional: List[str] = []
    pos = 0
    while pos < len(args):
        flag = args[pos]
        pos += 1

        def value(name: str = flag) -> str | None:
            nonlocal pos
            if pos >= len(args):
                print(f"error: {name} is missing its value", file=sys.stderr)
                return None
            v = args[pos]
            pos += 1
            return v

        if flag in ("--jobs", "-jobs", "-j"):
            v = value()
            if v is None:
                return 2
            try:
                jobs = int(v)
            except ValueError:
                print(f"error: --jobs expects an integer, got {v!r}",
                      file=sys.stderr)
                return 2
            if jobs < 1:
                print(f"error: --jobs must be >= 1, got {jobs}",
                      file=sys.stderr)
                return 2
        elif flag in ("--cores", "-cores"):
            v = value()
            if v is None:
                return 2
            try:
                cores = int(v)
            except ValueError:
                print(f"error: --cores expects an integer, got {v!r}",
                      file=sys.stderr)
                return 2
            if cores < 1:
                print(f"error: --cores must be >= 1, got {cores}",
                      file=sys.stderr)
                return 2
        elif flag in ("--out", "-out", "-o"):
            v = value()
            if v is None:
                return 2
            out_dir = v
        elif flag in ("--csv", "-csv"):
            v = value()
            if v is None:
                return 2
            csv_path = v
        elif flag in ("--resume", "-resume"):
            resume = True
        elif flag in ("--report", "-report"):
            report = True
        elif flag in ("--quiet", "-quiet", "-q"):
            quiet = True
        elif flag.startswith("-"):
            print(f"error: unknown suite flag {flag!r}", file=sys.stderr)
            return 2
        else:
            positional.append(flag)
    if len(positional) != 1:
        print("error: suite expects exactly one spec file", file=sys.stderr)
        return 2
    try:
        spec = load_spec(positional[0])
    except SpecError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    store = SuiteStore(out_dir or f"taskbench-suite-{spec.name}")
    if not resume:
        try:
            store.ensure(spec)
        except StoreError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        stale = store.completed()
        if stale:
            print(
                f"error: {store.root} already holds {len(stale)} completed "
                "cell(s); pass --resume to finish the remainder or use a "
                "fresh --out directory",
                file=sys.stderr,
            )
            return 2
    echo = (lambda line: None) if quiet else print
    try:
        summary = run_suite(
            spec, store, jobs=jobs, core_budget=cores, resume=resume,
            echo=echo,
        )
    except (SpecError, StoreError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    for line in summary.report_lines():
        print(line)
    rows = aggregate_rows(store.records())
    if csv_path is not None:
        with open(csv_path, "w") as fh:
            fh.write(render_csv(rows))
        print(f"Suite CSV {csv_path}")
    if report:
        print(render_table(rows))
    return 0 if summary.failed == 0 else 1


def _serve_address(explicit: str | None) -> str:
    """The service endpoint: ``--socket`` flag, else
    ``TASKBENCH_SERVE_SOCKET``, else the default socket path."""
    if explicit is not None:
        return explicit
    from .core.envvars import env_str

    return env_str("TASKBENCH_SERVE_SOCKET", "taskbench-serve.sock")


def run_serve_cmd(args: List[str]) -> int:
    """``task-bench serve``: run the benchmark service daemon.

    Binds a Unix-domain socket (or ``tcp:HOST:PORT``), sweeps orphaned
    host state from earlier crashed runs, then serves SUBMIT/STATUS/
    RESULT/STATS/DRAIN requests until drained — SIGTERM and SIGINT both
    trigger the graceful drain (running jobs finish, new submissions are
    rejected).  Exit codes: 0 drained cleanly, 2 usage error.
    """
    import signal

    from .core.envvars import UsageError
    from .core.janitor import sweep_host
    from .serve import Server, ServeConfig

    socket_path: str | None = None
    overrides: dict = {}
    quiet = False
    int_flags = {
        "--jobs": ("max_jobs", 1), "--cores": ("core_budget", 1),
        "--queue": ("queue_size", 1), "--warm": ("warm_capacity", 0),
        "--cache": ("cache_capacity", 0),
    }
    float_flags = {"--deadline": "deadline", "--ttl": "warm_ttl"}
    pos = 0
    while pos < len(args):
        flag = args[pos]
        pos += 1
        if flag in ("--socket", "-socket"):
            if pos >= len(args):
                print("error: --socket is missing its value", file=sys.stderr)
                return 2
            socket_path = args[pos]
            pos += 1
        elif flag in ("--quiet", "-quiet", "-q"):
            quiet = True
        elif f"--{flag.lstrip('-')}" in int_flags:
            name, minimum = int_flags[f"--{flag.lstrip('-')}"]
            if pos >= len(args):
                print(f"error: {flag} is missing its value", file=sys.stderr)
                return 2
            try:
                value = int(args[pos])
            except ValueError:
                print(f"error: {flag} expects an integer, got {args[pos]!r}",
                      file=sys.stderr)
                return 2
            if value < minimum:
                print(f"error: {flag} must be >= {minimum}, got {value}",
                      file=sys.stderr)
                return 2
            overrides[name] = value
            pos += 1
        elif f"--{flag.lstrip('-')}" in float_flags:
            name = float_flags[f"--{flag.lstrip('-')}"]
            if pos >= len(args):
                print(f"error: {flag} is missing its value", file=sys.stderr)
                return 2
            try:
                value = float(args[pos])
            except ValueError:
                print(f"error: {flag} expects a number, got {args[pos]!r}",
                      file=sys.stderr)
                return 2
            if value <= 0:
                print(f"error: {flag} must be > 0, got {value:g}",
                      file=sys.stderr)
                return 2
            overrides[name] = value
            pos += 1
        else:
            print(f"error: unknown serve flag {flag!r}", file=sys.stderr)
            return 2
    emit = (lambda line: None) if quiet else print
    try:
        config = ServeConfig.from_env(
            address=_serve_address(socket_path), **overrides
        )
    except (UsageError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    report = sweep_host()
    if report.total:
        for line in report.report_lines():
            emit(line)
    server = Server(config)
    try:
        bound = server.start()
    except (OSError, RuntimeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    emit(f"serving on {bound} "
         f"(jobs {config.max_jobs}, cores {config.effective_core_budget}, "
         f"queue {config.queue_size})")

    def _drain(signum, frame):  # pragma: no cover - signal path
        server.drain()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _drain)
        except ValueError:  # pragma: no cover - non-main thread (tests)
            pass
    try:
        server.wait()
    finally:
        server.close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    emit("drained; exiting")
    return 0


def run_submit_cmd(args: List[str]) -> int:
    """``task-bench submit``: run one cell on a running daemon.

    Cell parameters use the main vocabulary (``-runtime``, ``-type``,
    ``-width``, ``-steps``, ``-output``, ``-workers``, ``-kernel``,
    ``-iter``); ``-metg [TARGET]`` switches the cell to a METG sweep.
    Prints the durable record as JSON.  Exit codes: 0 cell ok or
    unachievable, 1 cell failed, 2 usage / rejection error.
    """
    import json

    from .serve import ServeClient, ServeError
    from .serve.protocol import ProtocolError

    socket_path: str | None = None
    wait_timeout: float | None = None
    cell: dict = {
        "runtime": "serial", "pattern": "trivial", "width": 2, "steps": 4,
        "payload_bytes": 16, "metric": "run",
    }
    field_flags = {
        "-runtime": ("runtime", str), "-type": ("pattern", str),
        "-width": ("width", int), "-steps": ("steps", int),
        "-output": ("payload_bytes", int), "-workers": ("workers", int),
        "-kernel": ("kernel", str), "-iter": ("iterations", int),
        "-timeout": ("timeout", float), "--timeout": ("timeout", float),
    }
    pos = 0
    while pos < len(args):
        flag = args[pos]
        pos += 1
        if flag in ("--socket", "-socket"):
            if pos >= len(args):
                print("error: --socket is missing its value", file=sys.stderr)
                return 2
            socket_path = args[pos]
            pos += 1
        elif flag in ("--wait", "-wait"):
            if pos >= len(args):
                print("error: --wait is missing its value", file=sys.stderr)
                return 2
            try:
                wait_timeout = float(args[pos])
            except ValueError:
                print(f"error: --wait expects seconds, got {args[pos]!r}",
                      file=sys.stderr)
                return 2
            pos += 1
        elif flag == "-metg":
            cell["metric"] = "metg"
            if pos < len(args):
                try:
                    cell["target"] = float(args[pos])
                    pos += 1
                except ValueError:
                    pass  # next token is another flag; default target
        elif flag in field_flags:
            name, convert = field_flags[flag]
            if pos >= len(args):
                print(f"error: {flag} is missing its value", file=sys.stderr)
                return 2
            try:
                cell[name] = convert(args[pos])
            except ValueError:
                print(f"error: {flag} got a bad value {args[pos]!r}",
                      file=sys.stderr)
                return 2
            pos += 1
        else:
            print(f"error: unknown submit flag {flag!r}", file=sys.stderr)
            return 2
    address = _serve_address(socket_path)
    try:
        with ServeClient(address) as client:
            record = client.run(cell, timeout=wait_timeout)
    except ServeError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    except (OSError, ProtocolError) as e:
        print(f"error: cannot reach daemon at {address}: {e}",
              file=sys.stderr)
        return 2
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0 if record.get("status") in ("ok", "unachievable") else 1


def run_svc_stats_cmd(args: List[str]) -> int:
    """``task-bench svc-stats``: print a running daemon's counters."""
    import json

    from .serve import ServeClient, ServeError
    from .serve.protocol import ProtocolError

    socket_path: str | None = None
    if args and args[0] in ("--socket", "-socket"):
        if len(args) < 2:
            print("error: --socket is missing its value", file=sys.stderr)
            return 2
        socket_path = args[1]
        args = args[2:]
    if args:
        print(f"error: unknown svc-stats flag {args[0]!r}", file=sys.stderr)
        return 2
    address = _serve_address(socket_path)
    try:
        with ServeClient(address) as client:
            stats = client.stats()
    except (ServeError, OSError, ProtocolError) as e:
        print(f"error: cannot reach daemon at {address}: {e}",
              file=sys.stderr)
        return 2
    stats.pop("ok", None)
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def run_clean_cmd(args: List[str]) -> int:
    """``task-bench clean``: sweep orphaned host state (crashed runs).

    Unlinks shared-memory segments and cluster socket directories that a
    kill -9'd benchmark left behind — the same sweep ``task-bench serve``
    runs at startup.  ``--max-age SECONDS`` bounds how old a segment must
    be before it is swept (default one hour).
    """
    from .core.janitor import sweep_host

    max_age = None
    if args and args[0] in ("--max-age", "-max-age"):
        if len(args) < 2:
            print("error: --max-age is missing its value", file=sys.stderr)
            return 2
        try:
            max_age = float(args[1])
        except ValueError:
            print(f"error: --max-age expects seconds, got {args[1]!r}",
                  file=sys.stderr)
            return 2
        if max_age < 0:
            print(f"error: --max-age must be >= 0, got {max_age:g}",
                  file=sys.stderr)
            return 2
        args = args[2:]
    if args:
        print(f"error: unknown clean flag {args[0]!r}", file=sys.stderr)
        return 2
    report = sweep_host(**(
        {"max_age_seconds": max_age} if max_age is not None else {}
    ))
    for line in report.report_lines():
        print(line)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    args: List[str] = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] in ("-h", "--help", "help"):
        print(_usage())
        return 0
    if args and args[0] in ("--list-runtimes", "-list-runtimes"):
        for name, isolation, cost in describe_runtimes():
            print(f"{name:16s} {isolation:10s} {cost}")
        return 0
    if args and args[0] == "check":
        return run_check(args[1:])
    if args and args[0] == "trace":
        return run_trace(args[1:])
    if args and args[0] == "suite":
        return run_suite_cmd(args[1:])
    if args and args[0] == "serve":
        return run_serve_cmd(args[1:])
    if args and args[0] == "submit":
        return run_submit_cmd(args[1:])
    if args and args[0] == "svc-stats":
        return run_svc_stats_cmd(args[1:])
    if args and args[0] == "clean":
        return run_clean_cmd(args[1:])
    # --audit: run normally but record the schedule and audit it afterwards.
    audit_enabled = False
    for flag in ("--audit", "-audit"):
        if flag in args:
            args.remove(flag)
            audit_enabled = True
    # --sanitize: run under instrumented locks + the lockset race check.
    sanitize_enabled = False
    for flag in ("--sanitize", "-sanitize"):
        if flag in args:
            args.remove(flag)
            sanitize_enabled = True
    # --report: append the data-plane counters to the run report.
    report_enabled = False
    for flag in ("--report", "-report"):
        if flag in args:
            args.remove(flag)
            report_enabled = True
    # --trace PATH: record wall-clock spans and export Chrome trace JSON.
    trace_path: str | None = None
    for flag in ("--trace", "-trace"):
        if flag in args:
            pos = args.index(flag)
            args.pop(pos)
            if pos >= len(args):
                print("error: --trace is missing its output path",
                      file=sys.stderr)
                return 2
            trace_path = args.pop(pos)
    # -scenario NAME replaces the graph flags with a named application
    # scenario (repro.core.scenarios); -width/-steps/-iter still apply.
    scenario_name: str | None = None
    if "-scenario" in args:
        pos = args.index("-scenario")
        args.pop(pos)
        if pos >= len(args):
            print("error: -scenario is missing its value", file=sys.stderr)
            return 2
        scenario_name = args.pop(pos)
    # -metg [target] switches from a single run to a METG sweep.
    metg_target: float | None = None
    if "-metg" in args:
        pos = args.index("-metg")
        args.pop(pos)
        metg_target = 0.5
        if pos < len(args):
            try:
                metg_target = float(args[pos])
                args.pop(pos)
            except ValueError:
                pass  # next token is another flag; keep the default target
        if not 0.0 < metg_target < 1.0:
            print(f"error: -metg target must be in (0, 1), got {metg_target}",
                  file=sys.stderr)
            return 2
    try:
        app = parse_args(args)
    except (ConfigError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if scenario_name is not None:
        from .core.scenarios import get_scenario

        template = app.graphs[0]
        kw = {"width": template.max_width, "steps": template.timesteps}
        if template.kernel.iterations:
            kw["iterations"] = template.kernel.iterations
        try:
            app.graphs = get_scenario(scenario_name)(**kw)
        except (TypeError, ValueError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
    if app.verbose:
        for g in app.graphs:
            print(g.describe())
    if trace_path is not None:
        # Tracing is an observability channel for single real runs only:
        # trace timestamps must never feed METG numbers, the simulator has
        # its own trace, and the sanitizer/audit own the observer hook.
        if metg_target is not None:
            print("error: --trace applies to a single run; drop -metg "
                  "(trace timings never feed METG)", file=sys.stderr)
            return 2
        if app.runtime.startswith("sim:"):
            print("error: --trace requires a real runtime (the simulator "
                  "trace is rendered by the analysis tools)", file=sys.stderr)
            return 2
        if sanitize_enabled or audit_enabled:
            print("error: --trace cannot be combined with --audit/--sanitize "
                  "(they own the event-observer hook)", file=sys.stderr)
            return 2
    if sanitize_enabled:
        if metg_target is not None or app.runtime.startswith("sim:"):
            print("error: --sanitize requires a single run on a real runtime",
                  file=sys.stderr)
            return 2
        if audit_enabled:
            print("error: --sanitize already includes the schedule audit; "
                  "drop --audit", file=sys.stderr)
            return 2
        from .check import sanitized_run
        from .core.diagnostics import findings, render_report

        try:
            # A factory, not a built executor: construction happens inside
            # instrument() so the executor's own locks are sanitized.
            sanitized = sanitized_run(
                lambda: make_executor(app.runtime, workers=app.workers),
                app.graphs,
                validate=app.validate,
            )
        except ValueError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        print(sanitized.report())
        bad = findings(sanitized.diagnostics)
        if bad:
            print(render_report(bad))
            return 1
        return 0
    if audit_enabled:
        if metg_target is not None or app.runtime.startswith("sim:"):
            print("error: --audit requires a single run on a real runtime",
                  file=sys.stderr)
            return 2
        from .check import audit_run
        from .core.diagnostics import findings, render_report

        try:
            executor = make_executor(app.runtime, workers=app.workers)
            audit = audit_run(executor, app.graphs, validate=app.validate)
        except ValueError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        print(audit.report())
        bad = findings(audit.diagnostics)
        if bad:
            print(render_report(bad))
            return 1
        return 0
    from .metg import METGUnachievable
    from .runtimes import WorkerCrashError, WorkerTimeoutError

    try:
        if metg_target is not None:
            print(run_metg(app, metg_target, report=report_enabled))
            return 0
        if trace_path is not None:
            result = _traced_run(app, trace_path)
        else:
            result = run_config(app)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    except METGUnachievable as e:
        # The target efficiency is out of reach at any granularity on this
        # configuration — a legitimate finding (paper §5.3 omits such
        # combinations), not a crash.
        print(f"METG unachievable: {e}", file=sys.stderr)
        return 1
    except (WorkerCrashError, WorkerTimeoutError) as e:
        # Exhausted retries on a worker/rank failure: a detected fault, not
        # a hang — report it and fail cleanly.
        print(f"error: {e}", file=sys.stderr)
        return 1
    print(result.report(data_plane=report_enabled))
    if trace_path is not None and not report_enabled and result.trace:
        # Without --report the trace section is not in the uniform report;
        # still confirm the export so the flag visibly did something.
        for line in result.trace.report_lines():
            print(line)
    return 0


def _traced_run(app: AppConfig, trace_path: str) -> RunResult:
    """Run the configured benchmark under the span recorder and export the
    merged trace as Chrome trace-event JSON at ``trace_path``."""
    import dataclasses

    from .core.metrics import TraceStats
    from .trace import recorder as trace_recorder
    from .trace.export import write_chrome

    with trace_recorder.capture() as rec:
        result = run_config(app)
        tr = rec.collect()
    write_chrome(tr, trace_path)
    spans, instants, counters, dropped = trace_recorder.trace_stats(tr)
    return dataclasses.replace(
        result,
        trace=TraceStats(
            spans=spans,
            instants=instants,
            counter_samples=counters,
            dropped=dropped,
            path=trace_path,
        ),
    )


def run_trace(args: List[str]) -> int:
    """``task-bench trace FILE [--gantt]``: summarize (or render as an
    ASCII Gantt) a Chrome trace file exported by ``--trace``."""
    gantt = False
    for flag in ("--gantt", "-gantt"):
        if flag in args:
            args.remove(flag)
            gantt = True
    if len(args) != 1:
        print("error: trace expects exactly one trace file", file=sys.stderr)
        return 2
    from .trace import recorder as trace_recorder
    from .trace.export import load_chrome

    try:
        tr = load_chrome(args[0])
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    except ValueError as e:
        print(f"error: {args[0]}: {e}", file=sys.stderr)
        return 1
    if gantt:
        print(render_trace_gantt(tr))
        return 0
    spans, instants, counters, dropped = trace_recorder.trace_stats(tr)
    print(f"Trace Spans {spans} ({instants} instants, "
          f"{counters} counter samples, {dropped} dropped)")
    for (pid, tid), records in sorted(tr.tracks().items()):
        kernels = sum(
            1 for r in records
            if r.ph == "X" and r.cat == trace_recorder.CAT_KERNEL
        )
        print(f"  {pid}/{tid}: {len(records)} records, {kernels} kernel spans")
    return 0


def render_trace_gantt(tr) -> str:
    """ASCII Gantt of a loaded trace (one row per recorded track)."""
    from .analysis.timeline import render_gantt

    return render_gantt(tr.records)


def _usage() -> str:
    from .core.scenarios import SCENARIOS

    runtimes = ", ".join(available_runtimes())
    systems = ", ".join(sorted(all_systems()))
    scenarios = ", ".join(sorted(SCENARIOS))
    return f"""task-bench: a parameterized benchmark for parallel runtime performance

graph options (repeat after -and for multiple concurrent graphs):
  -steps N           timesteps (height)            -width N    parallelism
  -type NAME         dependence pattern            -radix N    deps per task
  -period N          random pattern period         -fraction F edge fraction
  -kernel NAME       task kernel                   -iter N     kernel iterations
  -span N            memory kernel bytes/iter      -imbalance F  load imbalance
  -wait US           busy-wait microseconds        -seed N     RNG seed
  -output N          bytes per dependency          -scratch N  working set bytes

app options:
  -runtime NAME      real executor: {runtimes}
                     or sim:<system> with <system> one of: {systems}
  -workers N         worker count for real executors
  -nodes N           simulated node count          -cores N    cores per node
  -no-validate       disable input validation      -verbose    print graphs
  -metg [TARGET]     sweep problem size and report METG(TARGET) (default 0.5)
  -scenario NAME     use a named application scenario ({scenarios})
  -persistent-imbalance   per-column (persistent) imbalance multipliers
  --audit            record the schedule and run the happens-before audit
  --sanitize         run under instrumented locks: the happens-before audit
                     plus Eraser-style lockset race detection (slower;
                     never report sanitized timings as METG numbers)
  --report           append data-plane counters (bytes copied/shared, pool
                     hit rate, bytes on the wire) and fault/retry counters
                     to the run report
  --trace PATH       record wall-clock spans (kernel execution, publishes,
                     waits, wire traffic) during the run and write Chrome
                     trace-event JSON to PATH — open it in Perfetto or
                     chrome://tracing; trace timings never feed METG
  --list-runtimes    print each real executor with its isolation level
                     (serial / threads / processes / cluster) and its
                     admission core cost (1, workers, or workers+1) and exit

fault tolerance (process and cluster executors; env defaults in parentheses):
  --timeout SECONDS  per-round worker deadline — a wedged worker surfaces
                     as WorkerTimeoutError instead of a hang
                     (TASKBENCH_TIMEOUT)
  --max-retries N    retry a run/probe whose worker crashed or timed out,
                     with backoff; the pool self-heals between attempts
                     (TASKBENCH_MAX_RETRIES)
  --inject-fault S   arm one fault, S = kind:worker:round[:seconds] with
                     kind one of crash (SIGKILL), wedge (SIGTERM-ignoring
                     busy loop), delay (transient stall)
                     (TASKBENCH_INJECT_FAULT)

subcommands:
  check [graph/app options] [-budget SECONDS]
                     static passes: graph lint, executor-contract lint,
                     concurrency lint (lock order, blocking calls), and
                     (for real runtimes) an audited run.
                     exit codes: 0 clean, 1 findings, 2 usage error
  check --self       contract + concurrency lint of this repo's sources only
  trace FILE         summarize a Chrome trace file written by --trace
                     (per-track record and kernel-span counts)
  trace FILE --gantt render the trace as an ASCII Gantt chart instead
  suite SPEC [--jobs N] [--out DIR] [--resume] [--report] [--csv PATH]
             [--cores N] [--quiet]
                     run a declarative benchmark suite (a runtimes x
                     patterns x widths x steps x payloads x metrics
                     cross-product from a .json/.toml spec): cells run in
                     parallel worker processes up to --jobs under a core
                     budget (--cores, default: host cores), each finished
                     cell is checkpointed into DIR, and --resume finishes
                     only the cells a killed run left behind.  --report
                     prints the aggregate table; --csv writes it as CSV.
                     exit codes: 0 complete, 1 failed cells, 2 usage error
  serve [--socket ADDR] [--jobs N] [--cores N] [--queue N] [--deadline S]
        [--warm N] [--ttl S] [--cache N] [--quiet]
                     run the benchmark service daemon: persistent warm
                     executor pools, admission control (suite rules),
                     single-flight result cache, explicit BUSY
                     backpressure.  ADDR is a Unix socket path or
                     tcp:HOST:PORT (default: TASKBENCH_SERVE_SOCKET or
                     ./taskbench-serve.sock); remaining defaults read
                     TASKBENCH_SERVE_{{JOBS,CORES,QUEUE,DEADLINE,WARM,
                     TTL,CACHE}}.  SIGTERM/SIGINT drain gracefully:
                     running jobs finish, new submissions are rejected
  submit [--socket ADDR] [-runtime R] [-type P] [-width N] [-steps N]
         [-output BYTES] [-workers N] [-kernel K] [-iter N] [-metg [T]]
         [-timeout S] [--wait S]
                     run one cell on a running daemon and print its
                     record as JSON.  exit codes: 0 ok/unachievable,
                     1 failed cell, 2 usage or rejection error
  svc-stats [--socket ADDR]
                     print a running daemon's counters (queue depth,
                     cache hits, coalesced submissions, warm-pool
                     state, per-verb latency percentiles) as JSON
  clean [--max-age SECONDS]
                     sweep orphaned /dev/shm segments and cluster socket
                     directories left by crashed runs (also runs at
                     serve startup)
"""


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
