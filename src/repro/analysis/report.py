"""Text rendering of figure data.

The core library "manages ... displaying results"; this module renders
:class:`~repro.analysis.figures.FigureData` as aligned text tables (the
same rows/series the paper's plots show) and as Markdown for
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Iterable, List

from .figures import FigureData, Series


def format_quantity(value: float, unit: str = "") -> str:
    """Human-readable engineering notation (1.26e12 -> '1.26T')."""
    if value == 0:
        return f"0{unit}"
    if value != value or math.isinf(value):  # NaN / inf
        return str(value)
    prefixes = [
        (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"),
        (1.0, ""), (1e-3, "m"), (1e-6, "u"), (1e-9, "n"),
    ]
    for scale, prefix in prefixes:
        if abs(value) >= scale:
            return f"{value / scale:.3g}{prefix}{unit}"
    return f"{value:.3g}{unit}"


def render_series_table(fig: FigureData, *, max_points: int = 12) -> str:
    """One table per figure: series as rows, x positions as columns."""
    xs = sorted({x for s in fig.series for x in s.x})
    if len(xs) > max_points:
        stride = (len(xs) + max_points - 1) // max_points
        xs = xs[::stride]
    header = ["series"] + [format_quantity(x) for x in xs]
    rows: List[List[str]] = [header]
    for s in fig.series:
        lookup = dict(zip(s.x, s.y))
        row = [s.label]
        for x in xs:
            row.append(format_quantity(lookup[x]) if x in lookup else "-")
        rows.append(row)
    return _align(rows, title=f"{fig.figure_id}: {fig.title}",
                  footer=f"x: {fig.xlabel};  y: {fig.ylabel}")


def _align(rows: List[List[str]], title: str = "", footer: str = "") -> str:
    widths = [max(len(r[c]) for r in rows) for c in range(len(rows[0]))]
    lines = []
    if title:
        lines.append(title)
    for idx, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    if footer:
        lines.append(footer)
    return "\n".join(lines)


def render_markdown_table(fig: FigureData, *, max_points: int = 8) -> str:
    """The same table in Markdown (for EXPERIMENTS.md)."""
    xs = sorted({x for s in fig.series for x in s.x})
    if len(xs) > max_points:
        stride = (len(xs) + max_points - 1) // max_points
        xs = xs[::stride]
    lines = [f"**{fig.figure_id}: {fig.title}**", ""]
    lines.append("| series | " + " | ".join(format_quantity(x) for x in xs) + " |")
    lines.append("|" + "---|" * (len(xs) + 1))
    for s in fig.series:
        lookup = dict(zip(s.x, s.y))
        cells = [format_quantity(lookup[x]) if x in lookup else "-" for x in xs]
        lines.append(f"| {s.label} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def summarize_extremes(fig: FigureData) -> str:
    """One line per series: min/max y — quick shape check in bench logs."""
    out = []
    for s in fig.series:
        out.append(
            f"{fig.figure_id} {s.label}: "
            f"y in [{format_quantity(min(s.y))}, {format_quantity(max(s.y))}]"
        )
    return "\n".join(out)


def render_all(figures: Iterable[FigureData]) -> str:
    return "\n\n".join(render_series_table(f) for f in figures)


def granularity_at_efficiency(series: Series, target: float) -> float:
    """Smallest x (granularity) at which the series reaches ``target``
    efficiency; ``inf`` if it never does."""
    return min(
        (x for x, y in zip(series.x, series.y) if y >= target),
        default=float("inf"),
    )


def render_efficiency_summary(fig: FigureData, targets=(0.5,)) -> str:
    """Per-series summary of an efficiency-vs-granularity figure: peak
    efficiency reached and the smallest granularity meeting each target.

    Efficiency curves have per-system granularity grids, so the raw series
    table is sparse; this is the dense view used for Figures 7, 11 and 12.
    """
    header = ["series", "peak eff"] + [f"gran@{int(t * 100)}%" for t in targets]
    rows = [header]
    for s in sorted(fig.series, key=lambda s: granularity_at_efficiency(s, targets[0])):
        row = [s.label, f"{max(s.y):.1%}"]
        for t in targets:
            g = granularity_at_efficiency(s, t)
            row.append("never" if g == float("inf") else format_quantity(g * 1e-3, "s"))
        rows.append(row)
    return _align(rows, title=f"{fig.figure_id} summary: {fig.title}",
                  footer="granularities converted from the figure's ms axis")
