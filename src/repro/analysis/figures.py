"""Regeneration of every figure of the paper's evaluation (§5).

Each ``figure*`` function returns a :class:`FigureData`: labeled series of
(x, y) points matching the corresponding plot of the paper.  The benchmark
harness (``benchmarks/``) calls these and checks the qualitative claims
(who wins, crossovers, orders of magnitude); ``repro.analysis.report``
renders them as text tables.

Figures are parameterized by a :class:`FigureConfig` so the same code runs
in seconds at a reduced scale (default) or at full paper scale
(``FigureConfig.paper()`` — 32-core nodes, 256-node sweeps, tall graphs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence

from ..core.types import DependenceType, KernelType
from ..metg.efficiency import compute_workload, efficiency_curve, memory_workload
from ..metg.metg import METGUnachievable, metg
from ..metg.runners import SimRunner
from ..metg.scaling import strong_scaling, weak_scaling
from ..sim.gpu import PIZ_DAINT, figure13_series
from ..sim.machine import MachineSpec
from ..sim.network import ARIES, NetworkModel
from ..sim.systems import (
    FIGURE9_SYSTEMS,
    FIGURE11_SYSTEMS,
    FIGURE12_SYSTEMS,
    all_systems,
    get_system,
)


@dataclass(frozen=True)
class Series:
    """One labeled line of a figure."""

    label: str
    x: List[float]
    y: List[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have equal length")


@dataclass(frozen=True)
class FigureData:
    """All data of one paper figure."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: List[Series]
    notes: str = ""

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.figure_id}")

    @property
    def labels(self) -> List[str]:
        return [s.label for s in self.series]


@dataclass(frozen=True)
class FigureConfig:
    """Scale knobs shared by all figure generators.

    The default is a reduced scale that preserves every qualitative
    phenomenon while keeping pure-Python simulation times in seconds.
    """

    cores_per_node: int = 8
    steps: int = 30
    node_counts: Sequence[int] = (1, 4, 16, 64, 256)
    problem_sizes: Sequence[int] = tuple(4**e for e in range(0, 10))
    network: NetworkModel = field(default=ARIES)
    systems: Sequence[str] | None = None  # None = per-figure default

    @classmethod
    def paper(cls) -> "FigureConfig":
        """Full paper scale (minutes of simulation)."""
        return cls(
            cores_per_node=32,
            steps=100,
            node_counts=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            problem_sizes=tuple(2**e for e in range(0, 22)),
        )

    def machine(self, nodes: int = 1) -> MachineSpec:
        return MachineSpec(nodes=nodes, cores_per_node=self.cores_per_node)

    def with_(self, **changes) -> "FigureConfig":
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# Figures 2/6: FLOP/s vs problem size; Figures 3/7: efficiency vs granularity
# ---------------------------------------------------------------------------
def _flops_and_efficiency_curves(
    cfg: FigureConfig, systems: Sequence[str]
) -> Dict[str, List]:
    machine = cfg.machine(1)
    out: Dict[str, List] = {}
    for name in systems:
        runner = SimRunner(name, machine, cfg.network)
        wl = compute_workload(runner.worker_width, steps=cfg.steps)
        out[name] = efficiency_curve(runner, wl, list(cfg.problem_sizes))
    return out


def figure2_3(cfg: FigureConfig = FigureConfig()) -> Dict[str, FigureData]:
    """MPI p2p alone: FLOP/s vs problem size and efficiency vs granularity
    (stencil, 1 node) — the METG construction walk-through of §4."""
    return _curves_figures(cfg, ["mpi_p2p"], "2", "3")


def figure6_7(cfg: FigureConfig = FigureConfig()) -> Dict[str, FigureData]:
    """All systems: FLOP/s vs problem size (Fig 6) and efficiency vs task
    granularity (Fig 7), stencil on one node."""
    systems = list(cfg.systems or all_systems().keys())
    return _curves_figures(cfg, systems, "6", "7")


def _curves_figures(
    cfg: FigureConfig, systems: Sequence[str], flops_id: str, eff_id: str
) -> Dict[str, FigureData]:
    curves = _flops_and_efficiency_curves(cfg, systems)
    flops_series, eff_series = [], []
    for name, ms in curves.items():
        ordered = sorted(ms, key=lambda m: m.iterations)
        flops_series.append(
            Series(
                label=name,
                x=[float(m.iterations) for m in ordered],
                y=[m.flops_per_second for m in ordered],
            )
        )
        eff_series.append(
            Series(
                label=name,
                x=[m.granularity_seconds * 1e3 for m in ordered],
                y=[m.efficiency for m in ordered],
            )
        )
    return {
        "flops": FigureData(
            figure_id=f"fig{flops_id}",
            title="FLOP/s vs problem size (stencil, 1 node)",
            xlabel="problem size (iterations/task)",
            ylabel="FLOP/s",
            series=flops_series,
        ),
        "efficiency": FigureData(
            figure_id=f"fig{eff_id}",
            title="Efficiency vs task granularity (stencil, 1 node)",
            xlabel="task granularity (ms)",
            ylabel="efficiency",
            series=eff_series,
        ),
    }


# ---------------------------------------------------------------------------
# Figures 4/5: weak and strong scaling of MPI
# ---------------------------------------------------------------------------
def figure4(cfg: FigureConfig = FigureConfig(),
            sizes: Sequence[int] | None = None) -> FigureData:
    """MPI weak scaling: wall time vs nodes, one line per per-task size."""
    sizes = list(sizes or (16, 256, 4096, 65536))
    model = get_system("mpi_p2p")
    series = []
    for iters in sizes:
        pts = weak_scaling(
            model, list(cfg.node_counts), iters,
            machine=cfg.machine(), network=cfg.network, steps=cfg.steps,
        )
        series.append(
            Series(
                label=f"iters={iters}",
                x=[float(p.nodes) for p in pts],
                y=[p.wall_seconds for p in pts],
            )
        )
    return FigureData(
        figure_id="fig4",
        title="MPI weak scaling (stencil)",
        xlabel="nodes",
        ylabel="wall time (s)",
        series=series,
    )


def figure5(cfg: FigureConfig = FigureConfig(),
            totals: Sequence[int] | None = None) -> FigureData:
    """MPI strong scaling: wall time vs nodes, one line per total size."""
    workers0 = get_system("mpi_p2p").worker_cores_per_node(cfg.cores_per_node)
    base = workers0 * cfg.steps
    totals = list(totals or (base * 64, base * 1024, base * 16384, base * 262144))
    model = get_system("mpi_p2p")
    series = []
    for total in totals:
        pts = strong_scaling(
            model, list(cfg.node_counts), total,
            machine=cfg.machine(), network=cfg.network, steps=cfg.steps,
        )
        series.append(
            Series(
                label=f"total={total}",
                x=[float(p.nodes) for p in pts],
                y=[p.wall_seconds for p in pts],
            )
        )
    return FigureData(
        figure_id="fig5",
        title="MPI strong scaling (stencil)",
        xlabel="nodes",
        ylabel="wall time (s)",
        series=series,
    )


# ---------------------------------------------------------------------------
# Figure 8: memory-bound kernel throughput
# ---------------------------------------------------------------------------
def figure8(cfg: FigureConfig = FigureConfig(),
            systems: Sequence[str] | None = None) -> FigureData:
    """B/s vs problem size (memory kernel, stencil, 1 node)."""
    systems = list(systems or cfg.systems or
                   ("mpi_p2p", "mpi_bulk_sync", "charmpp", "realm", "starpu"))
    machine = cfg.machine(1)
    series = []
    for name in systems:
        runner = SimRunner(name, machine, cfg.network)
        wl = memory_workload(
            runner.worker_width, steps=cfg.steps,
            span_bytes=1 << 16, scratch_bytes=1 << 22,
        )
        ms = efficiency_curve(runner, wl, list(cfg.problem_sizes), metric="bytes")
        ordered = sorted(ms, key=lambda m: m.iterations)
        series.append(
            Series(
                label=name,
                x=[float(m.iterations) for m in ordered],
                y=[m.bytes_per_second for m in ordered],
            )
        )
    return FigureData(
        figure_id="fig8",
        title="B/s vs problem size (memory kernel, stencil, 1 node)",
        xlabel="problem size (iterations/task)",
        ylabel="B/s",
        series=series,
    )


# ---------------------------------------------------------------------------
# Figure 9: METG vs node count for four dependence configurations
# ---------------------------------------------------------------------------
_FIG9_VARIANTS = {
    "a": dict(dependence=DependenceType.STENCIL_1D, radix=3, ngraphs=1),
    "b": dict(dependence=DependenceType.NEAREST, radix=5, ngraphs=1),
    "c": dict(dependence=DependenceType.SPREAD, radix=5, ngraphs=1),
    "d": dict(dependence=DependenceType.NEAREST, radix=5, ngraphs=4),
}


def figure9(
    subfigure: str = "a",
    cfg: FigureConfig = FigureConfig(),
) -> FigureData:
    """METG(50%) vs node count (Fig 9a-d).

    Systems whose overhead cannot reach 50% efficiency at a node count are
    omitted from that point, as the paper omits Spark/Swift-T/TensorFlow
    from the complex-pattern figures (§5.3).
    """
    try:
        variant = _FIG9_VARIANTS[subfigure]
    except KeyError:
        raise ValueError(f"subfigure must be one of a-d, got {subfigure!r}") from None
    systems = list(cfg.systems or FIGURE9_SYSTEMS)
    series = []
    for name in systems:
        xs, ys = [], []
        for nodes in cfg.node_counts:
            runner = SimRunner(name, cfg.machine(nodes), cfg.network)
            wl = compute_workload(
                runner.worker_width, steps=cfg.steps,
                dependence=variant["dependence"], radix=variant["radix"],
                ngraphs=variant["ngraphs"],
            )
            try:
                res = metg(runner, wl, max_iterations=1 << 30)
            except METGUnachievable:
                continue
            xs.append(float(nodes))
            ys.append(res.metg_seconds)
        if xs:
            series.append(Series(label=name, x=xs, y=ys))
    return FigureData(
        figure_id=f"fig9{subfigure}",
        title=f"METG vs node count (variant {subfigure})",
        xlabel="nodes",
        ylabel="METG(50%) (s)",
        series=series,
        notes=str(variant),
    )


# ---------------------------------------------------------------------------
# Figure 10: METG vs dependencies per task
# ---------------------------------------------------------------------------
def figure10(
    cfg: FigureConfig = FigureConfig(),
    radices: Sequence[int] = tuple(range(10)),
) -> FigureData:
    """METG(50%) vs dependencies per task (nearest pattern, 1 node)."""
    systems = list(cfg.systems or
                   ("mpi_p2p", "mpi_bulk_sync", "charmpp", "realm",
                    "parsec_dtd", "starpu", "regent", "x10", "dask"))
    machine = cfg.machine(1)
    series = []
    for name in systems:
        xs, ys = [], []
        for radix in radices:
            runner = SimRunner(name, machine, cfg.network)
            wl = compute_workload(
                runner.worker_width, steps=cfg.steps,
                dependence=DependenceType.NEAREST, radix=radix,
            )
            try:
                res = metg(runner, wl, max_iterations=1 << 30)
            except METGUnachievable:
                continue
            xs.append(float(radix))
            ys.append(res.metg_seconds)
        if xs:
            series.append(Series(label=name, x=xs, y=ys))
    return FigureData(
        figure_id="fig10",
        title="METG vs dependencies per task (nearest, 1 node)",
        xlabel="dependencies per task",
        ylabel="METG(50%) (s)",
        series=series,
    )


# ---------------------------------------------------------------------------
# Figure 11: communication hiding
# ---------------------------------------------------------------------------
def figure11(
    output_bytes: int = 4096,
    cfg: FigureConfig = FigureConfig(),
    nodes: int = 16,
) -> FigureData:
    """Efficiency vs task granularity with communication (spread pattern,
    5 deps/task, 4 graphs) at the given payload size (Fig 11a-d use 16 B to
    64 KiB)."""
    systems = list(cfg.systems or FIGURE11_SYSTEMS)
    machine = cfg.machine(nodes)
    series = []
    for name in systems:
        runner = SimRunner(name, machine, cfg.network)
        wl = compute_workload(
            runner.worker_width, steps=cfg.steps,
            dependence=DependenceType.SPREAD, radix=5, ngraphs=4,
            output_bytes=output_bytes,
        )
        ms = efficiency_curve(runner, wl, list(cfg.problem_sizes))
        ordered = sorted(ms, key=lambda m: m.iterations)
        series.append(
            Series(
                label=name,
                x=[m.granularity_seconds * 1e3 for m in ordered],
                y=[m.efficiency for m in ordered],
            )
        )
    return FigureData(
        figure_id="fig11",
        title=f"Efficiency vs granularity, {output_bytes} B/dependency "
              f"(spread, radix 5, 4 graphs, {nodes} nodes)",
        xlabel="task granularity (ms)",
        ylabel="efficiency",
        series=series,
        notes=f"output_bytes={output_bytes}",
    )


# ---------------------------------------------------------------------------
# Figure 12: load imbalance
# ---------------------------------------------------------------------------
def figure12(cfg: FigureConfig = FigureConfig()) -> FigureData:
    """Efficiency vs task granularity under uniform [0,1) load imbalance
    (nearest, 5 deps/task, 4 graphs, 1 node)."""
    systems = list(cfg.systems or FIGURE12_SYSTEMS)
    machine = cfg.machine(1)
    series = []
    for name in systems:
        runner = SimRunner(name, machine, cfg.network)
        wl = compute_workload(
            runner.worker_width, steps=cfg.steps,
            dependence=DependenceType.NEAREST, radix=5, ngraphs=4,
            kernel_type=KernelType.LOAD_IMBALANCE, imbalance=1.0,
        )
        ms = efficiency_curve(runner, wl, list(cfg.problem_sizes))
        ordered = sorted(ms, key=lambda m: m.iterations)
        series.append(
            Series(
                label=name,
                x=[m.granularity_seconds * 1e3 for m in ordered],
                y=[m.efficiency for m in ordered],
            )
        )
    return FigureData(
        figure_id="fig12",
        title="Efficiency vs granularity under load imbalance "
              "(nearest, radix 5, 4 graphs, 1 node)",
        xlabel="task granularity (ms)",
        ylabel="efficiency",
        series=series,
    )


# ---------------------------------------------------------------------------
# Suite aggregates -> figures
# ---------------------------------------------------------------------------
def suite_series(
    rows: Sequence[Dict],
    *,
    x: str = "width",
    y: str = "metg_seconds",
    series_by: str = "runtime",
    figure_id: str = "suite",
    title: str = "",
) -> FigureData:
    """Plot a suite aggregate (``repro.suite`` rows or a loaded CSV).

    Groups the rows by ``series_by`` (one line per runtime, by default)
    with ``x`` on the abscissa and measurement ``y`` on the ordinate,
    producing the same :class:`FigureData` shape as the paper figures so
    the existing rendering/plot tooling applies unchanged.  Rows without
    the requested measurement (failed or unachievable cells, or cells of
    another metric) are skipped, mirroring how the paper omits systems
    that cannot reach the target efficiency (§5.3).
    """
    groups: Dict[str, List] = {}
    for row in rows:
        label = row.get(series_by)
        xv, yv = row.get(x), row.get(y)
        if label is None or xv is None or yv is None:
            continue
        groups.setdefault(str(label), []).append((float(xv), float(yv)))
    series = [
        Series(
            label=label,
            x=[p[0] for p in sorted(points)],
            y=[p[1] for p in sorted(points)],
        )
        for label, points in sorted(groups.items())
    ]
    return FigureData(
        figure_id=figure_id,
        title=title or f"{y} vs {x} (suite aggregate)",
        xlabel=x,
        ylabel=y,
        series=series,
    )


# ---------------------------------------------------------------------------
# Figure 13: GPU offload
# ---------------------------------------------------------------------------
def figure13() -> FigureData:
    """GPU FLOP/s vs normalized problem size (MPI vs MPI+CUDA w1/w4)."""
    data = figure13_series(PIZ_DAINT)
    series = [
        Series(label=label, x=[p[0] for p in pts], y=[p[1] for p in pts])
        for label, pts in data.items()
    ]
    return FigureData(
        figure_id="fig13",
        title="GPU FLOP/s vs normalized problem size (stencil, 1 node)",
        xlabel="problem size (FLOPs per timestep)",
        ylabel="FLOP/s",
        series=series,
    )
