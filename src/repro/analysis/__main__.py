"""Command-line front end for the analysis package.

Subcommands::

    python -m repro.analysis figures [--fast] [--plot] [--out DIR]
        Regenerate every paper figure at reduced scale; print tables and
        optionally write .txt/.json archives to DIR.

    python -m repro.analysis plot FIGURE.json [--linear]
        Render an archived figure as an ASCII plot.

    python -m repro.analysis compare A.json B.json [--rel FRAC]
        Diff two archived figures (e.g. runs at different scales or code
        versions); exits non-zero when they differ beyond the tolerance.
"""

from __future__ import annotations

import pathlib
import sys
from typing import List, Sequence

from .archive import compare_figures, load_figure_json, save_figure_json
from .figures import (
    FigureConfig,
    figure2_3,
    figure4,
    figure5,
    figure8,
    figure9,
    figure10,
    figure12,
    figure13,
)
from .plot import ascii_plot
from .report import render_series_table


def _cmd_figures(args: List[str]) -> int:
    fast = "--fast" in args
    plot = "--plot" in args
    out_dir = None
    if "--out" in args:
        pos = args.index("--out")
        if pos + 1 >= len(args):
            print("error: --out requires a directory", file=sys.stderr)
            return 2
        out_dir = pathlib.Path(args[pos + 1])
        out_dir.mkdir(parents=True, exist_ok=True)

    cfg = FigureConfig(
        cores_per_node=4,
        steps=10 if fast else 20,
        node_counts=(1, 4, 16) if fast else (1, 4, 16, 64),
        problem_sizes=tuple(8**e for e in range(7 if fast else 8)),
    )
    subset = ("mpi_p2p", "mpi_bulk_sync", "charmpp", "realm", "spark")

    figures = []
    f23 = figure2_3(cfg)
    figures += [f23["flops"], f23["efficiency"]]
    figures.append(figure4(cfg))
    figures.append(figure5(cfg))
    figures.append(figure8(cfg, systems=subset[:4]))
    figures.append(figure9("a", cfg.with_(systems=subset)))
    figures.append(figure10(cfg.with_(systems=subset[:4], cores_per_node=12),
                            radices=(0, 3, 5)))
    figures.append(figure12(cfg.with_(systems=("mpi_bulk_sync", "charmpp",
                                               "chapel_distrib"),
                                      cores_per_node=8)))
    figures.append(figure13())

    for fig in figures:
        print(render_series_table(fig))
        if plot:
            print()
            print(ascii_plot(fig, logy=fig.ylabel != "efficiency"))
        print()
        if out_dir is not None:
            (out_dir / f"{fig.figure_id}.txt").write_text(
                render_series_table(fig) + "\n"
            )
            save_figure_json(fig, out_dir / f"{fig.figure_id}.json")
    if out_dir is not None:
        print(f"archived {len(figures)} figures to {out_dir}/")
    return 0


def _cmd_plot(args: List[str]) -> int:
    linear = "--linear" in args
    paths = [a for a in args if not a.startswith("--")]
    if len(paths) != 1:
        print("usage: python -m repro.analysis plot FIGURE.json [--linear]",
              file=sys.stderr)
        return 2
    fig = load_figure_json(paths[0])
    print(ascii_plot(fig, logx=not linear, logy=not linear))
    return 0


def _cmd_compare(args: List[str]) -> int:
    rel = 0.0
    if "--rel" in args:
        pos = args.index("--rel")
        try:
            rel = float(args[pos + 1])
        except (IndexError, ValueError):
            print("error: --rel requires a number", file=sys.stderr)
            return 2
        args = args[:pos] + args[pos + 2:]
    paths = [a for a in args if not a.startswith("--")]
    if len(paths) != 2:
        print("usage: python -m repro.analysis compare A.json B.json "
              "[--rel FRAC]", file=sys.stderr)
        return 2
    a, b = (load_figure_json(p) for p in paths)
    diffs = compare_figures(a, b, rel=rel)
    if not diffs:
        print(f"{a.figure_id}: figures agree (rel tolerance {rel})")
        return 0
    for d in diffs:
        print(d)
    return 1


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, rest = args[0], args[1:]
    if command == "figures":
        return _cmd_figures(rest)
    if command == "plot":
        return _cmd_plot(rest)
    if command == "compare":
        return _cmd_compare(rest)
    print(f"error: unknown command {command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
