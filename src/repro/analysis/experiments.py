"""Batch experiment grids: sweep systems × machines × patterns and collect
results into a queryable table.

The figure generators in :mod:`repro.analysis.figures` hard-code the
paper's specific sweeps; this module is the general tool for *new*
studies in the same style — define a grid, run it, then filter / pivot /
export, or convert any slice into a :class:`~repro.analysis.figures.
FigureData` for the plotting, reporting and archiving machinery.

Example::

    grid = ExperimentGrid(
        systems=("mpi_p2p", "charmpp"),
        node_counts=(1, 4, 16),
        patterns=(PatternSpec(DependenceType.STENCIL_1D),
                  PatternSpec(DependenceType.NEAREST, radix=5)),
    )
    table = run_grid(grid)
    fig = table.filter(pattern="stencil_1d").to_figure(
        x="nodes", series="system", y="metg_seconds")
"""

from __future__ import annotations

import csv
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

from ..core.types import DependenceType
from ..metg.efficiency import compute_workload, measure
from ..metg.metg import METGUnachievable, metg
from ..metg.runners import SimRunner
from ..sim.machine import MachineSpec
from ..sim.network import ARIES, NetworkModel
from .figures import FigureData, Series


@dataclass(frozen=True)
class PatternSpec:
    """One dependence configuration of a grid."""

    dependence: DependenceType
    radix: int = 3
    ngraphs: int = 1

    @property
    def label(self) -> str:
        parts = [self.dependence.value]
        if self.dependence in (DependenceType.NEAREST, DependenceType.SPREAD,
                               DependenceType.RANDOM_NEAREST):
            parts.append(f"r{self.radix}")
        if self.ngraphs > 1:
            parts.append(f"x{self.ngraphs}")
        return "_".join(parts)


@dataclass(frozen=True)
class ExperimentGrid:
    """A full sweep specification."""

    systems: Sequence[str] = ("mpi_p2p",)
    node_counts: Sequence[int] = (1,)
    patterns: Sequence[PatternSpec] = (PatternSpec(DependenceType.STENCIL_1D),)
    output_bytes: Sequence[int] = (16,)
    steps: int = 20
    cores_per_node: int = 4
    network: NetworkModel = field(default=ARIES)
    #: "metg" sweeps problem size per cell; "efficiency" runs one size.
    measure: str = "metg"
    iterations: int = 1024  # for measure="efficiency"
    target_efficiency: float = 0.5  # for measure="metg"

    def cells(self):
        for system in self.systems:
            for nodes in self.node_counts:
                for pattern in self.patterns:
                    for payload in self.output_bytes:
                        yield system, nodes, pattern, payload


def run_grid(grid: ExperimentGrid) -> "ResultTable":
    """Run every cell of the grid on the simulator substrate.

    Cells whose METG target is unachievable get ``value=None`` (the
    paper's omitted-from-figure convention) rather than failing the grid.
    """
    if grid.measure not in ("metg", "efficiency"):
        raise ValueError(f"unknown measure {grid.measure!r}")
    rows: List[Dict] = []
    for system, nodes, pattern, payload in grid.cells():
        machine = MachineSpec(nodes=nodes, cores_per_node=grid.cores_per_node)
        runner = SimRunner(system, machine, grid.network)
        workload = compute_workload(
            runner.worker_width,
            steps=grid.steps,
            dependence=pattern.dependence,
            radix=pattern.radix,
            ngraphs=pattern.ngraphs,
            output_bytes=payload,
        )
        row: Dict = {
            "system": system,
            "nodes": nodes,
            "pattern": pattern.label,
            "output_bytes": payload,
        }
        if grid.measure == "metg":
            try:
                res = metg(runner, workload,
                           target_efficiency=grid.target_efficiency,
                           max_iterations=1 << 30)
                row["metg_seconds"] = res.metg_seconds
            except METGUnachievable:
                row["metg_seconds"] = None
        else:
            m = measure(runner, workload, grid.iterations)
            row["efficiency"] = m.efficiency
            row["granularity_seconds"] = m.granularity_seconds
        rows.append(row)
    return ResultTable(rows)


class ResultTable:
    """A list of result rows with filter/pivot/export helpers."""

    def __init__(self, rows: Sequence[Dict]) -> None:
        self.rows = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # -- querying ------------------------------------------------------
    def filter(self, **criteria) -> "ResultTable":
        """Rows whose fields equal the given values."""
        return ResultTable(
            [r for r in self.rows
             if all(r.get(k) == v for k, v in criteria.items())]
        )

    def values(self, key: str) -> List:
        """Distinct values of a field, in first-seen order."""
        seen: List = []
        for r in self.rows:
            v = r.get(key)
            if v not in seen:
                seen.append(v)
        return seen

    def column(self, key: str) -> List:
        """The field from every row (including None)."""
        return [r.get(key) for r in self.rows]

    # -- conversion ------------------------------------------------------
    def to_figure(self, *, x: str, series: str, y: str,
                  figure_id: str = "grid", title: str = "") -> FigureData:
        """Pivot into a figure: one line per distinct ``series`` value,
        skipping cells with ``None`` results."""
        out = []
        for label in self.values(series):
            pts = sorted(
                (float(r[x]), float(r[y]))
                for r in self.rows
                if r.get(series) == label and r.get(y) is not None
            )
            if pts:
                out.append(Series(label=str(label),
                                  x=[p[0] for p in pts],
                                  y=[p[1] for p in pts]))
        return FigureData(
            figure_id=figure_id,
            title=title or f"{y} vs {x} by {series}",
            xlabel=x,
            ylabel=y,
            series=out,
        )

    # -- persistence ------------------------------------------------------
    def to_csv(self, path: Union[str, pathlib.Path]) -> None:
        """Write the table as CSV (missing cells empty)."""
        fields: List[str] = []
        for r in self.rows:
            for k in r:
                if k not in fields:
                    fields.append(k)
        with open(path, "w", newline="") as f:
            writer = csv.DictWriter(f, fieldnames=fields)
            writer.writeheader()
            for r in self.rows:
                writer.writerow({k: ("" if v is None else v)
                                 for k, v in r.items()})

    @classmethod
    def from_csv(cls, path: Union[str, pathlib.Path]) -> "ResultTable":
        """Read a table written by :meth:`to_csv`, restoring numbers."""
        rows = []
        with open(path, newline="") as f:
            for raw in csv.DictReader(f):
                row: Dict = {}
                for k, v in raw.items():
                    if v == "":
                        row[k] = None
                    else:
                        row[k] = _parse_cell(v)
                rows.append(row)
        return cls(rows)


def _parse_cell(v: str):
    for conv in (int, float):
        try:
            return conv(v)
        except ValueError:
            continue
    return v
