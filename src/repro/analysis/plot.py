"""Terminal (ASCII) line plots of figure data.

The paper's figures are log-log or log-linear line plots; this module
renders :class:`~repro.analysis.figures.FigureData` the same way in plain
text, so examples and bench logs can *show* the curves, not just tabulate
them.  Pure string manipulation — no plotting dependencies.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from .figures import FigureData, Series
from .report import format_quantity

#: Symbols assigned to series, in order.
SERIES_MARKS = "ox+*#@%&=~^"

#: Mark used where two or more series coincide.
OVERLAP_MARK = "?"


def _transform(value: float, log: bool) -> float:
    if log:
        return math.log10(value)
    return value


def _finite_positive(values: Sequence[float], log: bool) -> List[float]:
    if log:
        return [v for v in values if v > 0 and math.isfinite(v)]
    return [v for v in values if math.isfinite(v)]


def ascii_plot(
    fig: FigureData,
    *,
    width: int = 72,
    height: int = 18,
    logx: bool = True,
    logy: bool = True,
) -> str:
    """Render a figure as an ASCII line plot with a legend.

    Log axes drop non-positive points (as matplotlib would); series beyond
    the symbol alphabet reuse symbols cyclically.
    """
    if width < 16 or height < 4:
        raise ValueError("plot must be at least 16x4 characters")
    xs_all, ys_all = [], []
    for s in fig.series:
        pts = [
            (x, y)
            for x, y in zip(s.x, s.y)
            if (not logx or x > 0) and (not logy or y > 0)
            and math.isfinite(x) and math.isfinite(y)
        ]
        xs_all.extend(p[0] for p in pts)
        ys_all.extend(p[1] for p in pts)
    if not xs_all:
        return f"{fig.figure_id}: {fig.title}\n(no plottable points)"

    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)

    def col(x: float) -> int:
        lo, hi = _transform(x_lo, logx), _transform(x_hi, logx)
        if hi == lo:
            return 0
        frac = (_transform(x, logx) - lo) / (hi - lo)
        return min(width - 1, max(0, round(frac * (width - 1))))

    def row(y: float) -> int:
        lo, hi = _transform(y_lo, logy), _transform(y_hi, logy)
        if hi == lo:
            return height - 1
        frac = (_transform(y, logy) - lo) / (hi - lo)
        return min(height - 1, max(0, (height - 1) - round(frac * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    legend: List[Tuple[str, str]] = []
    for idx, s in enumerate(fig.series):
        mark = SERIES_MARKS[idx % len(SERIES_MARKS)]
        legend.append((mark, s.label))
        for x, y in zip(s.x, s.y):
            if (logx and x <= 0) or (logy and y <= 0):
                continue
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            r, c = row(y), col(x)
            cell = grid[r][c]
            grid[r][c] = mark if cell in (" ", mark) else OVERLAP_MARK

    top_label = format_quantity(y_hi)
    bottom_label = format_quantity(y_lo)
    margin = max(len(top_label), len(bottom_label)) + 1
    lines = [f"{fig.figure_id}: {fig.title}"]
    for r in range(height):
        if r == 0:
            label = top_label.rjust(margin - 1)
        elif r == height - 1:
            label = bottom_label.rjust(margin - 1)
        else:
            label = " " * (margin - 1)
        lines.append(f"{label}|" + "".join(grid[r]))
    x_axis = f"{' ' * margin}{format_quantity(x_lo)}{' ' * max(1, width - 16)}{format_quantity(x_hi)}"
    lines.append(" " * margin + "-" * width)
    lines.append(x_axis)
    lines.append(f"x: {fig.xlabel}{' (log)' if logx else ''};  "
                 f"y: {fig.ylabel}{' (log)' if logy else ''}")
    lines.append("legend: " + "  ".join(f"{m}={label}" for m, label in legend))
    return "\n".join(lines)


def sparkline(series: Series, *, width: int = 40, logy: bool = False) -> str:
    """One-line bar rendering of a series (block characters)."""
    blocks = " .:-=+*#%@"
    ys = _finite_positive(series.y, logy)
    if not ys:
        return f"{series.label}: (empty)"
    lo = _transform(min(ys), logy)
    hi = _transform(max(ys), logy)
    out = []
    step = max(1, len(series.y) // width)
    for y in series.y[::step][:width]:
        if (logy and y <= 0) or not math.isfinite(y):
            out.append(" ")
            continue
        frac = 0.0 if hi == lo else (_transform(y, logy) - lo) / (hi - lo)
        out.append(blocks[min(len(blocks) - 1, int(frac * (len(blocks) - 1)))])
    return f"{series.label}: [{''.join(out)}]"
