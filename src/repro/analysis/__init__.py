"""Figure/table regeneration for the paper's evaluation (§5)."""

from .experiments import ExperimentGrid, PatternSpec, ResultTable, run_grid
from .figures import (
    FigureConfig,
    FigureData,
    Series,
    figure2_3,
    figure4,
    figure5,
    figure6_7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
)
from .archive import (
    compare_figures,
    figure_from_dict,
    figure_to_dict,
    load_figure_json,
    save_figure_json,
)
from .plot import ascii_plot, sparkline
from .timeline import idle_fraction, per_graph_spans, render_gantt
from .report import (
    format_quantity,
    granularity_at_efficiency,
    render_all,
    render_efficiency_summary,
    render_markdown_table,
    render_series_table,
    summarize_extremes,
)

__all__ = [
    "ExperimentGrid",
    "FigureConfig",
    "FigureData",
    "PatternSpec",
    "ResultTable",
    "Series",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure2_3",
    "figure4",
    "figure5",
    "figure6_7",
    "figure8",
    "figure9",
    "ascii_plot",
    "compare_figures",
    "figure_from_dict",
    "figure_to_dict",
    "format_quantity",
    "granularity_at_efficiency",
    "render_all",
    "render_efficiency_summary",
    "idle_fraction",
    "per_graph_spans",
    "render_gantt",
    "render_markdown_table",
    "load_figure_json",
    "render_series_table",
    "run_grid",
    "save_figure_json",
    "sparkline",
    "summarize_extremes",
]
