"""Gantt-style rendering of simulated execution traces.

Turns a :class:`~repro.sim.simulator.SimStats` task trace into a per-core
timeline: one row per worker core, time binned into character columns, each
cell showing which graph's tasks occupied the core (digits ``0``-``9``),
``*`` where tasks of several graphs share a bin, and spaces where the core
idled.  This makes the §5.6/§5.7 phenomena directly visible: idle gaps in
a phased execution's timeline vs an asynchronous system's interleaved
digits, and the long bars of imbalanced columns.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sim.simulator import TraceEvent


def render_gantt(
    trace: Sequence[TraceEvent],
    num_workers: int,
    *,
    width: int = 72,
    title: str = "",
) -> str:
    """Render a task trace as an ASCII Gantt chart."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if width < 8:
        raise ValueError("width must be >= 8 characters")
    if not trace:
        return (title + "\n" if title else "") + "(empty trace)"

    t_end = max(ev[5] for ev in trace)
    t_start = min(ev[4] for ev in trace)
    span = max(t_end - t_start, 1e-30)
    bin_w = span / width

    grid: List[List[str]] = [[" "] * width for _ in range(num_workers)]
    for gidx, _t, _i, core, start, end in trace:
        if not 0 <= core < num_workers:
            raise ValueError(f"trace core {core} outside 0..{num_workers - 1}")
        c0 = int((start - t_start) / bin_w)
        c1 = int((end - t_start) / bin_w)
        c0 = min(width - 1, max(0, c0))
        c1 = min(width - 1, max(c0, c1))
        mark = str(gidx % 10)
        for c in range(c0, c1 + 1):
            cell = grid[core][c]
            grid[core][c] = mark if cell in (" ", mark) else "*"

    lines = []
    if title:
        lines.append(title)
    label_w = len(f"core {num_workers - 1}")
    for core in range(num_workers):
        lines.append(f"core {core}".rjust(label_w) + " |" + "".join(grid[core]))
    lines.append(" " * (label_w + 2) + "-" * width)
    lines.append(
        " " * (label_w + 2)
        + f"0{' ' * max(1, width - 14)}{t_end * 1e3:.3g} ms"
    )
    lines.append("cells: digit = graph index, * = multiple graphs, space = idle")
    return "\n".join(lines)


def idle_fraction(trace: Sequence[TraceEvent], num_workers: int) -> float:
    """Fraction of core-time spent idle over the traced makespan."""
    if not trace:
        return 0.0
    t_end = max(ev[5] for ev in trace)
    busy = sum(end - start for _, _, _, _, start, end in trace)
    total = t_end * num_workers
    return max(0.0, 1.0 - busy / total) if total > 0 else 0.0


def per_graph_spans(trace: Sequence[TraceEvent]) -> dict:
    """(first start, last end) per graph index — shows graph overlap."""
    spans: dict = {}
    for gidx, _t, _i, _core, start, end in trace:
        lo, hi = spans.get(gidx, (start, end))
        spans[gidx] = (min(lo, start), max(hi, end))
    return spans
