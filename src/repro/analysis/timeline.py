"""Gantt-style rendering of execution traces.

Turns a task trace into a per-core timeline: one row per worker core (or
per recorded thread track), time binned into character columns, each cell
showing which graph's tasks occupied the core (digits ``0``-``9``), ``*``
where tasks of several graphs share a bin, and spaces where the core
idled.  This makes the §5.6/§5.7 phenomena directly visible: idle gaps in
a phased execution's timeline vs an asynchronous system's interleaved
digits, and the long bars of imbalanced columns.

Two trace shapes are accepted:

* the simulator's 6-tuple :class:`~repro.sim.simulator.TraceEvent`
  ``(graph, t, i, core, start, end)`` — the historical input, which needs
  ``num_workers`` to size the rows;
* structured :class:`~repro.trace.recorder.TraceRecord` spans from a real
  traced run (``--trace``), where rows are the recorded ``pid/tid``
  tracks and only kernel spans are drawn.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..sim.simulator import TraceEvent

_FOOTER = "cells: digit = graph index, * = multiple graphs, space = idle"


def render_gantt(
    trace: Sequence[Any],
    num_workers: Optional[int] = None,
    *,
    width: int = 72,
    title: str = "",
) -> str:
    """Render a task trace as an ASCII Gantt chart.

    Accepts either simulator 6-tuples (``num_workers`` required) or
    structured span records (``num_workers`` ignored; one row per
    ``pid/tid`` track).
    """
    if num_workers is not None and num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if width < 8:
        raise ValueError("width must be >= 8 characters")
    if not trace:
        return (title + "\n" if title else "") + "(empty trace)"
    if hasattr(trace[0], "ph"):
        return _render_span_gantt(trace, width=width, title=title)
    if num_workers is None:
        raise ValueError("num_workers is required for tuple traces")

    t_end = max(ev[5] for ev in trace)
    t_start = min(ev[4] for ev in trace)
    span = max(t_end - t_start, 1e-30)
    bin_w = span / width

    grid: List[List[str]] = [[" "] * width for _ in range(num_workers)]
    for gidx, _t, _i, core, start, end in trace:
        if not 0 <= core < num_workers:
            raise ValueError(f"trace core {core} outside 0..{num_workers - 1}")
        c0 = int((start - t_start) / bin_w)
        c1 = int((end - t_start) / bin_w)
        c0 = min(width - 1, max(0, c0))
        c1 = min(width - 1, max(c0, c1))
        mark = str(gidx % 10)
        for c in range(c0, c1 + 1):
            cell = grid[core][c]
            grid[core][c] = mark if cell in (" ", mark) else "*"

    lines = []
    if title:
        lines.append(title)
    label_w = len(f"core {num_workers - 1}")
    for core in range(num_workers):
        lines.append(f"core {core}".rjust(label_w) + " |" + "".join(grid[core]))
    lines.append(" " * (label_w + 2) + "-" * width)
    lines.append(
        " " * (label_w + 2)
        + f"0{' ' * max(1, width - 14)}{t_end * 1e3:.3g} ms"
    )
    lines.append(_FOOTER)
    return "\n".join(lines)


def _render_span_gantt(
    records: Sequence[Any], *, width: int, title: str
) -> str:
    """Gantt over structured span records: one row per ``pid/tid`` track,
    kernel spans only (waits and dispatch framing would obscure the
    occupancy picture this chart is for)."""
    spans = [r for r in records if r.ph == "X" and r.cat == "kernel"]
    if not spans:
        return (title + "\n" if title else "") + "(empty trace)"
    t_start = min(s.ts_ns for s in spans)
    t_end = max(s.end_ns for s in spans)
    span_ns = max(t_end - t_start, 1)
    bin_w = span_ns / width

    tracks = sorted({(s.pid, s.tid) for s in spans})
    row_of = {key: n for n, key in enumerate(tracks)}
    grid: List[List[str]] = [[" "] * width for _ in tracks]
    for s in spans:
        c0 = int((s.ts_ns - t_start) / bin_w)
        c1 = int((s.end_ns - t_start) / bin_w)
        c0 = min(width - 1, max(0, c0))
        c1 = min(width - 1, max(c0, c1))
        task = (s.args or {}).get("task")
        mark = (
            str(task[0] % 10)
            if isinstance(task, (tuple, list)) and task
            else "#"
        )
        row = grid[row_of[(s.pid, s.tid)]]
        for c in range(c0, c1 + 1):
            cell = row[c]
            row[c] = mark if cell in (" ", mark) else "*"

    labels = [f"{pid}/{tid}" for pid, tid in tracks]
    label_w = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, row_cells in zip(labels, grid):
        lines.append(label.rjust(label_w) + " |" + "".join(row_cells))
    lines.append(" " * (label_w + 2) + "-" * width)
    lines.append(
        " " * (label_w + 2)
        + f"0{' ' * max(1, width - 14)}{span_ns * 1e-6:.3g} ms"
    )
    lines.append(_FOOTER)
    return "\n".join(lines)


def idle_fraction(trace: Sequence[TraceEvent], num_workers: int) -> float:
    """Fraction of core-time spent idle over the traced makespan."""
    if not trace:
        return 0.0
    t_end = max(ev[5] for ev in trace)
    busy = sum(end - start for _, _, _, _, start, end in trace)
    total = t_end * num_workers
    return max(0.0, 1.0 - busy / total) if total > 0 else 0.0


def per_graph_spans(trace: Sequence[TraceEvent]) -> dict:
    """(first start, last end) per graph index — shows graph overlap."""
    spans: dict = {}
    for gidx, _t, _i, _core, start, end in trace:
        lo, hi = spans.get(gidx, (start, end))
        spans[gidx] = (min(lo, start), max(hi, end))
    return spans
