"""Persistence of figure data as JSON.

The benchmark harness archives every regenerated figure both as a rendered
text table (human diffing) and as JSON (machine comparison across runs /
scales).  The format is stable and self-describing::

    {"figure_id": "fig9a", "title": ..., "xlabel": ..., "ylabel": ...,
     "notes": ..., "series": [{"label": ..., "x": [...], "y": [...]}, ...]}
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from .figures import FigureData, Series

_PathLike = Union[str, pathlib.Path]

#: Format marker stored alongside the data; bump on breaking changes.
SCHEMA_VERSION = 1


def figure_to_dict(fig: FigureData) -> dict:
    """JSON-ready representation of a figure."""
    return {
        "schema_version": SCHEMA_VERSION,
        "figure_id": fig.figure_id,
        "title": fig.title,
        "xlabel": fig.xlabel,
        "ylabel": fig.ylabel,
        "notes": fig.notes,
        "series": [
            {"label": s.label, "x": list(s.x), "y": list(s.y)}
            for s in fig.series
        ],
    }


def figure_from_dict(data: dict) -> FigureData:
    """Inverse of :func:`figure_to_dict`; validates the schema."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported figure schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    missing = {"figure_id", "title", "xlabel", "ylabel", "series"} - set(data)
    if missing:
        raise ValueError(f"figure JSON missing fields: {sorted(missing)}")
    series = [
        Series(label=s["label"], x=[float(v) for v in s["x"]],
               y=[float(v) for v in s["y"]])
        for s in data["series"]
    ]
    return FigureData(
        figure_id=data["figure_id"],
        title=data["title"],
        xlabel=data["xlabel"],
        ylabel=data["ylabel"],
        series=series,
        notes=data.get("notes", ""),
    )


def save_figure_json(fig: FigureData, path: _PathLike) -> None:
    """Write a figure to ``path`` as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(figure_to_dict(fig), indent=1, sort_keys=True) + "\n"
    )


def load_figure_json(path: _PathLike) -> FigureData:
    """Read a figure previously saved by :func:`save_figure_json`."""
    return figure_from_dict(json.loads(pathlib.Path(path).read_text()))


def compare_figures(a: FigureData, b: FigureData, *, rel: float = 0.0) -> list:
    """Differences between two archives of the same figure.

    Returns a list of human-readable difference strings; empty means the
    figures agree (within relative tolerance ``rel`` on y values at shared
    x positions).  Used to compare runs across scales or code versions.
    """
    diffs = []
    if a.figure_id != b.figure_id:
        diffs.append(f"figure_id: {a.figure_id} != {b.figure_id}")
    labels_a, labels_b = set(a.labels), set(b.labels)
    for label in sorted(labels_a - labels_b):
        diffs.append(f"series {label!r} only in first")
    for label in sorted(labels_b - labels_a):
        diffs.append(f"series {label!r} only in second")
    for label in sorted(labels_a & labels_b):
        sa, sb = a.get(label), b.get(label)
        common = set(sa.x) & set(sb.x)
        la, lb = dict(zip(sa.x, sa.y)), dict(zip(sb.x, sb.y))
        for x in sorted(common):
            ya, yb = la[x], lb[x]
            scale = max(abs(ya), abs(yb), 1e-300)
            if abs(ya - yb) / scale > rel:
                diffs.append(
                    f"{label} @ x={x:g}: {ya:g} vs {yb:g}"
                )
    return diffs
