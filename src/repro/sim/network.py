"""Network model for the simulator substrate.

A latency/bandwidth (postal) model with a contention term that grows with
the machine's node count.  The contention term is what reproduces the
paper's key scalability finding (§5.4): "the systems with the smallest METG
on one node have roughly an order of magnitude higher METG at 256 nodes —
increased communication latencies require significantly larger tasks to
achieve the same level of efficiency".
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point message cost model.

    ``message_seconds`` returns the in-flight time of a message; per-message
    *core* costs (marshalling, matching) belong to the runtime model, not
    the network.

    Attributes
    ----------
    base_latency_s:
        One-hop wire latency between two nodes at minimal machine size.
    bandwidth_bytes_per_s:
        Per-link bandwidth.
    contention_per_log_node:
        Effective latency multiplier growth per doubling of node count:
        the log-linear part of ``latency(n)``.  Models adaptive routing
        dilution and topology depth.
    incast_coeff_s, incast_power:
        Superlinear contention term ``incast_coeff * n**incast_power``
        added to the effective latency: jitter and link sharing from all
        ranks communicating each timestep.  Calibrated so MPI's stencil
        METG follows the paper's measured 4.6 us (1 node) -> ~28 us
        (128) -> ~61 us (256) hockey stick (§4).
    intra_node_latency_s:
        Latency between two cores of the same node (shared memory hand-off).
    intra_node_bandwidth_bytes_per_s:
        Bandwidth for same-node transfers.
    """

    base_latency_s: float = 1.5e-6  # Aries-class MPI half round trip
    bandwidth_bytes_per_s: float = 8e9
    contention_per_log_node: float = 0.15
    incast_coeff_s: float = 0.03e-6
    incast_power: float = 1.2
    intra_node_latency_s: float = 0.1e-6
    intra_node_bandwidth_bytes_per_s: float = 30e9

    def __post_init__(self) -> None:
        if self.base_latency_s < 0 or self.intra_node_latency_s < 0:
            raise ValueError("latencies must be >= 0")
        if self.bandwidth_bytes_per_s <= 0 or self.intra_node_bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidths must be positive")
        if self.contention_per_log_node < 0 or self.incast_coeff_s < 0:
            raise ValueError("contention terms must be >= 0")
        if self.incast_power < 0:
            raise ValueError("incast_power must be >= 0")

    def latency_seconds(self, nodes: int) -> float:
        """Effective internode latency on a machine of ``nodes`` nodes."""
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        if nodes == 1:
            return self.base_latency_s
        return (
            self.base_latency_s
            * (1.0 + self.contention_per_log_node * math.log2(nodes))
            + self.incast_coeff_s * nodes**self.incast_power
        )

    def message_seconds(self, nbytes: int, *, same_node: bool, nodes: int = 1) -> float:
        """In-flight time of an ``nbytes`` message."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if same_node:
            return self.intra_node_latency_s + nbytes / self.intra_node_bandwidth_bytes_per_s
        return self.latency_seconds(nodes) + nbytes / self.bandwidth_bytes_per_s


#: Calibrated to Cori's Aries interconnect scale of behaviour.
ARIES = NetworkModel()

#: Zero-cost network: isolates pure runtime overhead in tests.
IDEAL = NetworkModel(
    base_latency_s=0.0,
    bandwidth_bytes_per_s=1e30,
    contention_per_log_node=0.0,
    incast_coeff_s=0.0,
    intra_node_latency_s=0.0,
    intra_node_bandwidth_bytes_per_s=1e30,
)
