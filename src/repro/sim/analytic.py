"""Closed-form performance model for regular phased execution.

For the MPI-style phased models running a single regular task graph with
one column per worker core, steady-state behaviour has a closed form.  Per
timestep, every core pays

    T = kernel + task_overhead + R * dep_overhead + S * send_overhead
        + nodes * dynamic_check

with ``R``/``S`` the remote receive/send counts of an interior column, and
the dependence chain between neighbouring columns adds the effective
cross-node latency ``L`` once per timestep (the max-mean-cycle of the
timestep-unrolled dependence graph: any two columns in a mutual-dependence
cycle across a node boundary bound the steady-state rate at ``T + L``).

Hence::

    timestep  =  T + L
    efficiency(kernel) = kernel / (T + L)
    METG(tau) = (overhead + L) / (1 - tau)          [granularity units]

and the centralized-controller bound METG(tau) >= total_cores /
controller_tasks_per_s (the controller serializes dispatch, so granularity
cannot drop below cores/throughput while keeping cores busy).

The discrete-event simulator remains the source of truth; this module is
the fast cross-check (the test suite validates the two against each other)
and the back-of-envelope calculator for calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.types import DependenceType
from .machine import MachineSpec
from .network import NetworkModel
from .runtime_model import RuntimeModel

#: Patterns with a closed-form interior communication count.
_SUPPORTED = {
    DependenceType.TRIVIAL,
    DependenceType.NO_COMM,
    DependenceType.STENCIL_1D,
    DependenceType.STENCIL_1D_PERIODIC,
    DependenceType.DOM,
    DependenceType.NEAREST,
}


def interior_comm_counts(
    dependence: DependenceType, radix: int = 3
) -> tuple[int, int]:
    """(remote receives, remote sends) of an interior column, one column
    per core.  Self-column dependencies are local and free."""
    if dependence in (DependenceType.TRIVIAL,):
        return (0, 0)
    if dependence is DependenceType.NO_COMM:
        return (0, 0)  # the only dependency is the local column
    if dependence in (DependenceType.STENCIL_1D, DependenceType.STENCIL_1D_PERIODIC):
        return (2, 2)
    if dependence is DependenceType.DOM:
        return (1, 1)
    if dependence is DependenceType.NEAREST:
        if radix == 0:
            return (0, 0)
        return (radix - 1, radix - 1)  # window includes the local column
    raise ValueError(
        f"no closed form for dependence {dependence.value!r}; "
        f"supported: {sorted(d.value for d in _SUPPORTED)}"
    )


def crosses_nodes(dependence: DependenceType, machine: MachineSpec) -> bool:
    """Whether the pattern's interior dependencies cross node boundaries
    somewhere on the machine (one column per core, block mapping)."""
    if machine.nodes == 1:
        return False
    return dependence not in (DependenceType.TRIVIAL, DependenceType.NO_COMM)


@dataclass(frozen=True)
class PhasedPrediction:
    """Closed-form steady-state prediction for one configuration."""

    overhead_seconds: float  # per-task runtime cost excluding the kernel
    latency_seconds: float  # effective per-timestep dependence latency
    controller_floor_seconds: float  # granularity floor from the controller

    def timestep_seconds(self, kernel_seconds: float) -> float:
        """Steady-state duration of one timestep."""
        return max(
            kernel_seconds + self.overhead_seconds + self.latency_seconds,
            self.controller_floor_seconds,
        )

    def efficiency(self, kernel_seconds: float) -> float:
        """Fraction of peak achieved at the given kernel duration."""
        return kernel_seconds / self.timestep_seconds(kernel_seconds)

    def metg_seconds(self, target: float = 0.5) -> float:
        """Predicted METG(target) in task-granularity units."""
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        inline = (self.overhead_seconds + self.latency_seconds) / (1.0 - target)
        return max(inline, self.controller_floor_seconds)


def predict(
    model: RuntimeModel,
    machine: MachineSpec,
    network: NetworkModel,
    *,
    dependence: DependenceType = DependenceType.STENCIL_1D,
    radix: int = 3,
    output_bytes: int = 16,
) -> PhasedPrediction:
    """Closed-form prediction for one regular configuration.

    Assumes one column per worker core and no reserved cores (reserved
    cores shift the peak reference; the phased MPI models the closed form
    targets reserve none).
    """
    if model.runtime_cores_per_node != 0:
        raise ValueError(
            "closed form assumes no reserved cores; "
            f"{model.name} reserves {model.runtime_cores_per_node}"
        )
    recvs, sends = interior_comm_counts(dependence, radix)
    overhead = model.task_runtime_cost_s(recvs, sends, machine.nodes)

    # Symmetric patterns (stencil, nearest) put neighbouring columns in a
    # mutual-dependence cycle, so cross-core latency bounds the steady
    # state.  The directed sweep (DOM) has no cycle: its wavefront skews
    # once and then pipelines at rate T, paying no per-timestep latency.
    symmetric = dependence not in (DependenceType.DOM,)
    latency = 0.0
    if recvs > 0 and symmetric:
        if crosses_nodes(dependence, machine):
            latency = network.message_seconds(
                output_bytes, same_node=False, nodes=machine.nodes
            )
        else:
            latency = network.message_seconds(output_bytes, same_node=True)
    if model.barrier and machine.nodes > 1:
        latency += network.latency_seconds(machine.nodes) * max(
            1.0, math.log2(machine.nodes)
        )

    floor = 0.0
    if model.controller_tasks_per_s > 0:
        floor = machine.total_cores / model.controller_tasks_per_s

    return PhasedPrediction(
        overhead_seconds=overhead,
        latency_seconds=latency,
        controller_floor_seconds=floor,
    )


def predicted_metg_seconds(
    model: RuntimeModel,
    machine: MachineSpec,
    network: NetworkModel,
    *,
    dependence: DependenceType = DependenceType.STENCIL_1D,
    radix: int = 3,
    output_bytes: int = 16,
    target: float = 0.5,
) -> float:
    """Convenience wrapper: closed-form METG(target)."""
    return predict(
        model, machine, network,
        dependence=dependence, radix=radix, output_bytes=output_bytes,
    ).metg_seconds(target)
