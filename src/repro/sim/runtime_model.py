"""Runtime-system cost models for the simulator substrate.

Each of the paper's 15 systems (plus variants — Table 3 / Figures 6-12) is
represented by a :class:`RuntimeModel`: the set of mechanisms §5 uses to
explain every measured curve, reduced to explicit cost knobs.

* ``task_overhead_s`` / ``dep_overhead_s`` / ``send_overhead_s`` — inline
  per-task and per-dependency core time (§5.3, §5.5: "the number of
  dependencies per task has a strong influence on overhead").
* ``runtime_cores_per_node`` — out-of-line overhead: cores reserved for the
  runtime (§5.1: "some systems reserve a number of cores ... these systems
  take a minor hit in peak FLOP/s").
* ``execution = "phased"`` — distinct compute/communication phases per
  timestep (the MPI shims); ``"async"`` — event-driven execution where any
  ready task may run, which is what buys communication overlap (§5.6) and
  imbalance mitigation (§5.7).
* ``barrier`` — a global barrier each timestep (MPI bulk-sync variant).
* ``dynamic_check_s_per_node`` — DAG-trimming dynamic checks that scale
  with node count (§5.4: PaRSEC DTD and StarPU; PTG retains smaller checks;
  "PaRSEC shard ... completely eliminates these dynamic checks").
* ``controller_tasks_per_s`` — a centralized controller's dispatch
  throughput ceiling (§5.4: "Spark uses a centralized controller, which
  limits throughput").
* ``work_stealing`` — on-node idle-core stealing (§5.7: Chapel distrib).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

Execution = Literal["phased", "async"]


@dataclass(frozen=True)
class RuntimeModel:
    """Cost structure of one runtime system."""

    name: str
    execution: Execution = "async"
    task_overhead_s: float = 1e-6
    dep_overhead_s: float = 0.5e-6
    send_overhead_s: float = 0.5e-6
    runtime_cores_per_node: int = 0
    barrier: bool = False
    dynamic_check_s_per_node: float = 0.0
    controller_tasks_per_s: float = 0.0
    controller_latency_s: float = 0.0
    work_stealing: bool = False
    steal_overhead_s: float = 1e-6
    distributed: bool = True  # False: single-node systems (OpenMP, OmpSs)

    def __post_init__(self) -> None:
        if min(self.task_overhead_s, self.dep_overhead_s, self.send_overhead_s,
               self.dynamic_check_s_per_node, self.controller_latency_s,
               self.steal_overhead_s) < 0:
            raise ValueError("overheads must be >= 0")
        if self.runtime_cores_per_node < 0:
            raise ValueError("runtime_cores_per_node must be >= 0")
        if self.controller_tasks_per_s < 0:
            raise ValueError("controller_tasks_per_s must be >= 0")
        if self.barrier and self.execution != "phased":
            raise ValueError("barrier is only meaningful for phased execution")

    # ------------------------------------------------------------------
    def worker_cores_per_node(self, cores_per_node: int) -> int:
        """Cores left for application tasks on each node."""
        workers = cores_per_node - self.runtime_cores_per_node
        if workers < 1:
            raise ValueError(
                f"{self.name}: {self.runtime_cores_per_node} reserved cores "
                f"leave no workers on a {cores_per_node}-core node"
            )
        return workers

    def task_runtime_cost_s(self, ndeps: int, nsends: int, nodes: int) -> float:
        """Inline core time the runtime adds to one task."""
        return (
            self.task_overhead_s
            + ndeps * self.dep_overhead_s
            + nsends * self.send_overhead_s
            + nodes * self.dynamic_check_s_per_node
        )

    def with_(self, **changes) -> "RuntimeModel":
        """Copy with fields replaced (ablations)."""
        return replace(self, **changes)
