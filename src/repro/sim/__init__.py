"""Distributed-machine simulator substrate.

Replaces the paper's physical testbeds (Cori, Piz Daint): a discrete-event
simulator executing real Task Bench task graphs against calibrated machine,
network, and runtime-system cost models.  See DESIGN.md §2 for the
substitution rationale.
"""

from .gpu import (
    GPUNodeSpec,
    PIZ_DAINT,
    cpu_time_per_timestep,
    crossover_problem_size,
    figure13_series,
    gpu_time_per_timestep_w1,
    gpu_time_per_timestep_w4,
)
from .machine import CORI_HASWELL, TINY, MachineSpec, column_to_core
from .network import ARIES, IDEAL, NetworkModel
from .analytic import (
    PhasedPrediction,
    interior_comm_counts,
    predict,
    predicted_metg_seconds,
)
from .runtime_model import RuntimeModel
from .simulator import SimStats, simulate, simulate_with_stats
from .systems import (
    FIGURE9_SYSTEMS,
    FIGURE11_SYSTEMS,
    FIGURE12_SYSTEMS,
    all_systems,
    get_system,
    scaled_for,
)

__all__ = [
    "ARIES",
    "CORI_HASWELL",
    "FIGURE11_SYSTEMS",
    "FIGURE12_SYSTEMS",
    "FIGURE9_SYSTEMS",
    "GPUNodeSpec",
    "IDEAL",
    "MachineSpec",
    "NetworkModel",
    "PhasedPrediction",
    "PIZ_DAINT",
    "RuntimeModel",
    "SimStats",
    "TINY",
    "all_systems",
    "column_to_core",
    "cpu_time_per_timestep",
    "crossover_problem_size",
    "figure13_series",
    "get_system",
    "gpu_time_per_timestep_w1",
    "gpu_time_per_timestep_w4",
    "interior_comm_counts",
    "predict",
    "predicted_metg_seconds",
    "scaled_for",
    "simulate",
    "simulate_with_stats",
]
