"""GPU offload model (paper §5.8, Figure 13).

Models the paper's Piz Daint experiment: MPI on the node's CPU cores versus
MPI+CUDA in an offload style where "data is copied to and from the GPU on
every timestep".  Two offload configurations:

* ``w1`` — one rank drives the GPU; each timestep pays one H2D copy, one
  kernel launch, the kernel, and one D2H copy, strictly in sequence.
* ``w4`` — 4 ranks per GPU push work in parallel streams: copies overlap
  with compute, buying a higher asymptotic rate ("w4 achieves higher
  FLOP/s"), but every timestep pays 4x the kernel-launch overhead, so the
  curve "drops more rapidly at smaller problem sizes" (§5.8).

Copied bytes scale with the problem size (the offloaded working set), so
w1's serial copies cap its asymptotic rate below the GPU peak while w4
hides them behind compute; at small sizes the copy volume vanishes and the
fixed launch overhead dominates, favouring w1.

The x-axis is the *normalized* problem size: the FLOPs per timestep are held
equal between CPU and GPU configurations, matching the paper's Figure 13
("the x-axis is normalized to keep FLOPs constant for a given problem
size").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class GPUNodeSpec:
    """One Piz Daint-like node: a CPU socket plus an offload accelerator."""

    cpu_cores: int = 12
    cpu_flops: float = 5.726e11  # measured CPU peak (paper §5.8)
    gpu_flops: float = 4.759e12  # measured P100 peak (paper §5.8)
    kernel_launch_s: float = 10e-6
    pcie_bytes_per_s: float = 11e9  # PCIe gen3 x16 effective
    copy_latency_s: float = 10e-6
    #: FLOPs of kernel work per byte staged over PCIe each timestep.
    arithmetic_intensity: float = 5000.0
    #: Fixed staging volume independent of problem size (halo, headers).
    base_copy_bytes: float = 64 * 1024

    def __post_init__(self) -> None:
        if self.cpu_cores < 1:
            raise ValueError("cpu_cores must be >= 1")
        if min(self.cpu_flops, self.gpu_flops, self.pcie_bytes_per_s) <= 0:
            raise ValueError("rates must be positive")
        if self.arithmetic_intensity <= 0:
            raise ValueError("arithmetic_intensity must be positive")

    def copy_bytes(self, flops: float) -> float:
        """Bytes staged over PCIe for a timestep of ``flops`` work."""
        return self.base_copy_bytes + flops / self.arithmetic_intensity


PIZ_DAINT = GPUNodeSpec()


def cpu_time_per_timestep(spec: GPUNodeSpec, flops: float,
                          mpi_overhead_s: float = 2.3e-6) -> float:
    """Wall time of one timestep of the stencil on the CPU (MPI, 1 node).

    ``flops`` is the total work of the timestep, spread over the CPU cores;
    each core also pays the MPI per-task overhead.
    """
    return flops / spec.cpu_flops + mpi_overhead_s


def gpu_time_per_timestep_w1(spec: GPUNodeSpec, flops: float) -> float:
    """Wall time of one timestep in the w1 offload configuration: H2D copy,
    launch, kernel, D2H copy — strictly serial."""
    copy = 2 * (spec.copy_latency_s + spec.copy_bytes(flops) / spec.pcie_bytes_per_s)
    return copy + spec.kernel_launch_s + flops / spec.gpu_flops


def gpu_time_per_timestep_w4(spec: GPUNodeSpec, flops: float, ranks: int = 4) -> float:
    """Wall time of one timestep in the w4 overdecomposed configuration.

    Copies overlap with compute across the ``ranks`` streams (PCIe
    bandwidth is shared, so the total copy time is unchanged — the win is
    the overlap), plus a launch per rank (launches serialize on the GPU's
    command queue).
    """
    copies = 2 * (
        spec.copy_latency_s + spec.copy_bytes(flops) / spec.pcie_bytes_per_s
    )
    compute = flops / spec.gpu_flops
    return max(compute, copies) + ranks * spec.kernel_launch_s


def figure13_series(
    spec: GPUNodeSpec = PIZ_DAINT,
    problem_sizes: List[float] | None = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """FLOP/s vs normalized problem size for MPI, MPI+CUDA w1, MPI+CUDA w4.

    ``problem_sizes`` are FLOPs per timestep; defaults sweep 2^6..2^27
    scaled so the largest sizes saturate the GPU, matching the dynamic
    range of Figure 13.
    """
    if problem_sizes is None:
        problem_sizes = [2.0**e for e in range(16, 38)]
    out: Dict[str, List[Tuple[float, float]]] = {
        "mpi_cpu": [],
        "mpi_cuda_w1": [],
        "mpi_cuda_w4": [],
    }
    for flops in problem_sizes:
        out["mpi_cpu"].append((flops, flops / cpu_time_per_timestep(spec, flops)))
        out["mpi_cuda_w1"].append(
            (flops, flops / gpu_time_per_timestep_w1(spec, flops))
        )
        out["mpi_cuda_w4"].append(
            (flops, flops / gpu_time_per_timestep_w4(spec, flops))
        )
    return out


def crossover_problem_size(spec: GPUNodeSpec = PIZ_DAINT) -> float:
    """Smallest swept problem size at which the w1 GPU configuration beats
    the CPU — the §5.8 observation that "the overhead of copying data
    dominates at small task granularities, where the CPU achieves higher
    performance"."""
    for flops, gpu_rate in figure13_series(spec)["mpi_cuda_w1"]:
        cpu_rate = flops / cpu_time_per_timestep(spec, flops)
        if gpu_rate > cpu_rate:
            return flops
    return float("inf")
