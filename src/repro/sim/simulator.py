"""Discrete-event simulation of task-graph execution on a modeled machine.

This module is the substitute for the paper's physical testbeds: it executes
Task Bench task graphs against a :class:`~repro.sim.machine.MachineSpec`,
:class:`~repro.sim.network.NetworkModel` and
:class:`~repro.sim.runtime_model.RuntimeModel`, returning the same
:class:`~repro.core.metrics.RunResult` a real executor returns — so the METG
machinery is oblivious to whether it measures a real run or a simulated one.

Two engines:

``phased``
    Timestep-phased execution for the MPI-style models (§3.4): each rank
    (core) computes all of its timestep's tasks, then communicates.  With
    ``barrier=True`` a global barrier separates timesteps (the bulk-sync
    variant).  Costs are accumulated per core per timestep, which keeps the
    engine nearly allocation-free and fast.

``async``
    Event-driven greedy list scheduling for asynchronous models: any ready
    task may run on its core (or any same-node core under work stealing)
    while other tasks' messages are still in flight.  This is where
    communication overlap (§5.6) and load-imbalance mitigation (§5.7)
    emerge — they are not modeled explicitly, they fall out of the engine.

Semantics shared by both engines:

* columns are block-mapped to worker cores (``machine.column_to_core``);
  each graph is mapped over all worker cores independently, so multiple
  graphs give each core one column per graph (task parallelism);
* a dependency between tasks on the same core is free to communicate
  (phased) or costs only activation bookkeeping (async);
* per-task runtime cost = ``task_overhead + recv costs + send costs +
  dynamic checks``, all inline core time;
* a centralized controller, when configured, serializes task dispatch at
  ``controller_tasks_per_s``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Sequence, Tuple

from ..core.metrics import RunResult, summarize_graphs
from ..core.task_graph import TaskGraph
from .machine import MachineSpec, column_to_core
from .network import NetworkModel
from .runtime_model import RuntimeModel

TaskRef = Tuple[int, int, int]  # (graph position, timestep, column)

#: One executed task in a trace: (graph_index, timestep, column, core,
#: start_seconds, end_seconds).
TraceEvent = Tuple[int, int, int, int, float, float]


class SimStats:
    """Execution statistics collected during a simulation.

    Attributes
    ----------
    core_busy_seconds:
        Core time spent executing tasks + runtime overhead, per worker core.
    tasks_per_core:
        Tasks executed per worker core.
    messages_intra_node / messages_cross_node:
        Point-to-point messages by locality (same-core hand-offs are free
        and not counted).
    bytes_cross_node:
        Payload bytes that crossed the network.
    steals:
        Tasks executed away from their home core (work stealing only).
    elapsed_seconds:
        Simulated wall time (filled in at the end of the run).
    trace:
        When constructed with ``collect_trace=True``: every executed task
        as a :data:`TraceEvent`, in completion order — the input of
        :func:`repro.analysis.timeline.render_gantt`.
    """

    def __init__(self, num_workers: int, *, collect_trace: bool = False) -> None:
        self.core_busy_seconds = [0.0] * num_workers
        self.tasks_per_core = [0] * num_workers
        self.messages_intra_node = 0
        self.messages_cross_node = 0
        self.bytes_cross_node = 0
        self.steals = 0
        self.elapsed_seconds = 0.0
        self.trace: List[TraceEvent] | None = [] if collect_trace else None

    @property
    def utilization(self) -> float:
        """Mean busy fraction across worker cores."""
        if self.elapsed_seconds == 0:
            return 0.0
        busy = sum(self.core_busy_seconds) / len(self.core_busy_seconds)
        return busy / self.elapsed_seconds

    @property
    def imbalance_factor(self) -> float:
        """Max over mean per-core busy time (1.0 = perfectly balanced)."""
        mean = sum(self.core_busy_seconds) / len(self.core_busy_seconds)
        if mean == 0:
            return 1.0
        return max(self.core_busy_seconds) / mean

    def record_message(self, nbytes: int, same_node: bool) -> None:
        if same_node:
            self.messages_intra_node += 1
        else:
            self.messages_cross_node += 1
            self.bytes_cross_node += nbytes


def simulate(
    graphs: Sequence[TaskGraph],
    machine: MachineSpec,
    model: RuntimeModel,
    network: NetworkModel,
    *,
    stats: SimStats | None = None,
) -> RunResult:
    """Simulate executing ``graphs`` and return a timed result.

    The returned ``RunResult.cores`` is the machine's total core count
    (workers plus reserved runtime cores), matching the paper's task
    granularity formula which charges all allocated cores.  Pass a
    :class:`SimStats` to collect per-core utilization and message counts.
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("at least one task graph is required")
    if len({g.graph_index for g in graphs}) != len(graphs):
        raise ValueError("graphs must have distinct graph_index values")
    if not model.distributed and machine.nodes > 1:
        raise ValueError(
            f"{model.name} is a single-node system (cannot run on "
            f"{machine.nodes} nodes)"
        )
    sim = _Simulation(graphs, machine, model, network, stats)
    if model.execution == "phased":
        elapsed = sim.run_phased()
    else:
        elapsed = sim.run_async()
    if stats is not None:
        stats.elapsed_seconds = elapsed
    return summarize_graphs(
        model.name, graphs, elapsed, machine.total_cores, validated=False
    )


def simulate_with_stats(
    graphs: Sequence[TaskGraph],
    machine: MachineSpec,
    model: RuntimeModel,
    network: NetworkModel,
    *,
    collect_trace: bool = False,
) -> Tuple[RunResult, SimStats]:
    """Convenience wrapper returning the result and its statistics."""
    sim = _Simulation(list(graphs), machine, model, network, None)
    stats = SimStats(sim.num_workers, collect_trace=collect_trace)
    result = simulate(graphs, machine, model, network, stats=stats)
    return result, stats


class _Simulation:
    """Shared state and helpers for both engines."""

    def __init__(
        self,
        graphs: Sequence[TaskGraph],
        machine: MachineSpec,
        model: RuntimeModel,
        network: NetworkModel,
        stats: SimStats | None = None,
    ) -> None:
        self.graphs = list(graphs)
        self.machine = machine
        self.model = model
        self.network = network
        self.stats = stats
        self.workers_per_node = model.worker_cores_per_node(machine.cores_per_node)
        self.num_workers = machine.nodes * self.workers_per_node
        self.ktime = machine.kernel_time_model(self.workers_per_node)
        self.max_t = max(g.timesteps for g in graphs)
        self._partner_cache: Dict[Tuple[int, int, int, int], Tuple[int, List[int]]] = {}

    # -- topology helpers ------------------------------------------------
    def core_of(self, g: TaskGraph, column: int) -> int:
        return column_to_core(column, g.max_width, self.num_workers)

    def node_of(self, core: int) -> int:
        return core // self.workers_per_node

    def kernel_seconds(self, g: TaskGraph, t: int, i: int) -> float:
        return self.ktime.task_seconds(g.kernel, t, i, g.seed)

    def message_seconds(self, g: TaskGraph, src_core: int, dst_core: int) -> float:
        if src_core == dst_core:
            return 0.0
        same_node = self.node_of(src_core) == self.node_of(dst_core)
        return self.network.message_seconds(
            g.output_bytes_per_task, same_node=same_node, nodes=self.machine.nodes
        )

    def comm_partners(
        self, g: TaskGraph, t: int, i: int
    ) -> Tuple[int, List[int]]:
        """Cross-core communication of task ``(t, i)``: number of inputs
        received from other cores, and the distinct remote cores its output
        is sent to.

        Cached per dependence set (the official core's timestep
        equivalence classes): tall graphs with repeating structure —
        every figure's METG sweeps — query each structure once.
        """
        spec = g.spec
        set_in = spec.dependence_set_at_timestep(t) if t > 0 else -1
        set_out = (
            spec.dependence_set_at_timestep(t + 1) if t < g.timesteps - 1 else -1
        )
        key = (g.graph_index, set_in, set_out, i)
        cached = self._partner_cache.get(key)
        if cached is not None:
            return cached
        core = self.core_of(g, i)
        remote_recvs = 0
        if set_in >= 0:
            remote_recvs = sum(
                1 for j in g.dependency_points(t, i) if self.core_of(g, j) != core
            )
        send_cores: List[int] = []
        if set_out >= 0:
            send_cores = sorted(
                {
                    self.core_of(g, j)
                    for j in g.reverse_dependency_points(t, i)
                    if self.core_of(g, j) != core
                }
            )
        result = (remote_recvs, send_cores)
        self._partner_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Phased engine (MPI-style)
    # ------------------------------------------------------------------
    def run_phased(self) -> float:
        m = self.model
        nodes = self.machine.nodes
        start = [0.0] * self.num_workers  # phase start per core
        barrier_cost = (
            self.network.latency_seconds(nodes) * max(1.0, math.log2(max(2, nodes)))
            if m.barrier and nodes > 1
            else 0.0
        )
        for t in range(self.max_t):
            finish = list(start)
            # Compute phase: every core runs its tasks back to back;
            # send costs are charged here too (the communication phase of
            # the owning rank).
            arrivals: Dict[int, float] = {}
            sends: List[Tuple[int, int, TaskGraph]] = []  # (src, dst, graph)
            for g in self.graphs:
                if t >= g.timesteps:
                    continue
                off = g.offset_at_timestep(t)
                for i in range(off, off + g.width_at_timestep(t)):
                    core = self.core_of(g, i)
                    recvs, send_cores = self.comm_partners(g, t, i)
                    cost = (
                        self.kernel_seconds(g, t, i)
                        + m.task_overhead_s
                        + recvs * m.dep_overhead_s
                        + len(send_cores) * m.send_overhead_s
                        + nodes * m.dynamic_check_s_per_node
                    )
                    task_start = finish[core]
                    finish[core] += cost
                    if self.stats is not None:
                        self.stats.core_busy_seconds[core] += cost
                        self.stats.tasks_per_core[core] += 1
                        if self.stats.trace is not None:
                            self.stats.trace.append(
                                (g.graph_index, t, i, core, task_start,
                                 finish[core])
                            )
                        for dst in send_cores:
                            self.stats.record_message(
                                g.output_bytes_per_task,
                                self.node_of(core) == self.node_of(dst),
                            )
                    for dst in send_cores:
                        sends.append((core, dst, g))
            # Communication phase: messages leave when their rank finishes
            # its compute phase and land after the wire time.
            for src, dst, g in sends:
                arrival = finish[src] + self.message_seconds(g, src, dst)
                if arrival > arrivals.get(dst, 0.0):
                    arrivals[dst] = arrival
            if m.barrier:
                phase_end = max(finish) + barrier_cost
                start = [max(phase_end, arrivals.get(c, 0.0)) for c in range(self.num_workers)]
            else:
                start = [
                    max(finish[c], arrivals.get(c, 0.0))
                    for c in range(self.num_workers)
                ]
        return max(start)

    # ------------------------------------------------------------------
    # Async engine (event-driven greedy list scheduling)
    # ------------------------------------------------------------------
    def run_async(self) -> float:
        m = self.model
        nodes = self.machine.nodes
        graphs = self.graphs

        # Per-task pending-input counters and accumulated ready times.
        pending: Dict[TaskRef, int] = {}
        ready_at: Dict[TaskRef, float] = {}
        queues: List[List[Tuple[float, int, TaskRef]]] = [
            [] for _ in range(self._num_queues())
        ]
        core_free = [0.0] * self.num_workers
        controller_free = 0.0
        seq = itertools.count()

        events: List[Tuple[float, int, int]] = []  # (time, seq, core hint)

        def queue_index(core: int) -> int:
            return self.node_of(core) if m.work_stealing else core

        def enqueue(ref: TaskRef, when: float) -> None:
            gpos, t, i = ref
            core = self.core_of(graphs[gpos], i)
            heapq.heappush(queues[queue_index(core)], (when, next(seq), ref))
            heapq.heappush(events, (when, next(seq), core))

        # Seed all zero-dependency tasks.
        total = 0
        for gpos, g in enumerate(graphs):
            for t, i in g.points():
                total += 1
                nd = g.num_dependencies(t, i)
                ref = (gpos, t, i)
                if nd == 0:
                    enqueue(ref, 0.0)
                else:
                    pending[ref] = nd
                    ready_at[ref] = 0.0

        executed = 0
        now = 0.0
        while executed < total:
            if not events:
                raise RuntimeError(
                    f"simulation stalled with {total - executed} tasks left "
                    "(dependence routing bug)"
                )
            now, _, core = heapq.heappop(events)
            qi = queue_index(core)
            # Run as many queued tasks as this wake-up allows.  Under work
            # stealing, any core of the node may pick the task up.
            run_core = self._pick_core(core, core_free) if m.work_stealing else core
            q = queues[qi]
            if not q or q[0][0] > now:
                continue
            if core_free[run_core] > now:
                # Core busy: it will re-check when it frees up.
                heapq.heappush(events, (core_free[run_core], next(seq), core))
                continue
            when, _, ref = heapq.heappop(q)
            gpos, t, i = ref
            g = graphs[gpos]
            home_core = self.core_of(g, i)

            start = max(now, when)
            if m.controller_tasks_per_s > 0:
                dispatch = max(start, controller_free)
                controller_free = dispatch + 1.0 / m.controller_tasks_per_s
                start = dispatch + m.controller_latency_s
            start = max(start, core_free[run_core])

            recvs, send_cores = self.comm_partners(g, t, i)
            cost = (
                self.kernel_seconds(g, t, i)
                + m.task_overhead_s
                + recvs * m.dep_overhead_s
                + len(send_cores) * m.send_overhead_s
                + nodes * m.dynamic_check_s_per_node
            )
            if m.work_stealing:
                # Shared-queue contention on every dequeue, plus the full
                # steal cost when the task runs away from its home core.
                # This is what makes the default scheduler beat the
                # stealing one at very small granularities (paper §5.7).
                cost += 0.25 * m.steal_overhead_s
                if run_core != home_core:
                    cost += m.steal_overhead_s
            end = start + cost
            core_free[run_core] = end
            executed += 1
            if self.stats is not None:
                self.stats.core_busy_seconds[run_core] += cost
                self.stats.tasks_per_core[run_core] += 1
                if self.stats.trace is not None:
                    self.stats.trace.append(
                        (g.graph_index, t, i, run_core, start, end)
                    )
                if run_core != home_core:
                    self.stats.steals += 1
                for dst in send_cores:
                    self.stats.record_message(
                        g.output_bytes_per_task,
                        self.node_of(home_core) == self.node_of(dst),
                    )

            # Deliver to consumers.
            for j in g.reverse_dependency_points(t, i):
                cref = (gpos, t + 1, j)
                arrival = end + self.message_seconds(g, home_core, self.core_of(g, j))
                if arrival > ready_at[cref]:
                    ready_at[cref] = arrival
                pending[cref] -= 1
                if pending[cref] == 0:
                    del pending[cref]
                    enqueue(cref, ready_at.pop(cref))
            # Let this core look for more work.
            if q:
                heapq.heappush(events, (max(end, q[0][0]), next(seq), core))
        return max(core_free)

    def _num_queues(self) -> int:
        return self.machine.nodes if self.model.work_stealing else self.num_workers

    def _pick_core(self, hint_core: int, core_free: List[float]) -> int:
        """Under work stealing, the earliest-free core of the hint's node."""
        node = self.node_of(hint_core)
        lo = node * self.workers_per_node
        hi = lo + self.workers_per_node
        best = min(range(lo, hi), key=lambda c: core_free[c])
        return best
