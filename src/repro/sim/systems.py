"""Catalog of modeled runtime systems (paper Table 3 / Figures 6-12).

Each entry is a :class:`~repro.sim.runtime_model.RuntimeModel` whose cost
knobs are calibrated so the *1-node METG(50%)* and the *scaling behaviour*
land in the band the paper measures for that system.  The paper's reference
points used for calibration:

* MPI p2p: METG(50%) of 390 ns with 0 dependencies and 4.6 µs for the
  3-dependency stencil on one node (§5.5), rising to ~28 µs at 128 nodes
  and ~61 µs at 256 (§4).
* Overheads across systems span more than five orders of magnitude (§1),
  from sub-µs (MPI) to 10s-100s of ms (Swift/T, TensorFlow, Dask, Spark).
* Spark's centralized controller caps task throughput, so its METG rises
  immediately with node count (§5.4).
* PaRSEC DTD and StarPU pay per-task dynamic DAG-trimming checks that scale
  with node count; PTG reduces but retains them; "PaRSEC shard ...
  completely eliminates these dynamic checks" (§5.4).
* Some systems reserve 1-2 cores per node for the runtime (§5.1).
* Chapel's ``distrib`` scheduler adds on-node work stealing, winning under
  load imbalance at large granularity but losing at very small granularity
  (§5.7).

Absolute values are modeling choices — the reproduction targets the *shape*:
ordering of systems, crossovers, and order-of-magnitude spans.
"""

from __future__ import annotations

from typing import Dict, List

from .machine import MachineSpec
from .runtime_model import RuntimeModel

_US = 1e-6
_MS = 1e-3


def _catalog() -> List[RuntimeModel]:
    return [
        # -- message passing (phased: distinct compute/comm phases) -------
        RuntimeModel(
            name="mpi_p2p",
            execution="phased",
            task_overhead_s=0.20 * _US,
            dep_overhead_s=0.55 * _US,
            send_overhead_s=0.50 * _US,
        ),
        RuntimeModel(
            name="mpi_bulk_sync",
            execution="phased",
            task_overhead_s=0.20 * _US,
            dep_overhead_s=0.55 * _US,
            send_overhead_s=0.50 * _US,
            barrier=True,
        ),
        RuntimeModel(
            name="mpi_openmp",
            execution="phased",
            task_overhead_s=2.0 * _US,  # forall fork/join share per task
            dep_overhead_s=1.0 * _US,
            send_overhead_s=1.0 * _US,
        ),
        # -- shared-memory tasking (single node) --------------------------
        RuntimeModel(
            name="openmp_task",
            task_overhead_s=1.5 * _US,
            dep_overhead_s=0.4 * _US,
            send_overhead_s=0.4 * _US,
            distributed=False,
        ),
        RuntimeModel(
            name="ompss",
            task_overhead_s=3.0 * _US,
            dep_overhead_s=0.8 * _US,
            send_overhead_s=0.8 * _US,
            distributed=False,
        ),
        # -- asynchronous distributed systems ------------------------------
        RuntimeModel(
            name="charmpp",
            task_overhead_s=1.2 * _US,
            dep_overhead_s=0.8 * _US,
            send_overhead_s=0.8 * _US,
            runtime_cores_per_node=1,  # comm thread
        ),
        RuntimeModel(
            name="realm",
            task_overhead_s=0.8 * _US,
            dep_overhead_s=0.5 * _US,
            send_overhead_s=0.5 * _US,
            runtime_cores_per_node=2,  # utility + background work threads
        ),
        RuntimeModel(
            name="regent",
            task_overhead_s=150.0 * _US,
            dep_overhead_s=5.0 * _US,
            send_overhead_s=5.0 * _US,
            runtime_cores_per_node=2,
        ),
        RuntimeModel(
            name="chapel",
            task_overhead_s=8.0 * _US,
            dep_overhead_s=1.5 * _US,
            send_overhead_s=1.5 * _US,
            runtime_cores_per_node=1,
        ),
        RuntimeModel(
            name="chapel_distrib",
            task_overhead_s=8.0 * _US,
            dep_overhead_s=1.5 * _US,
            send_overhead_s=1.5 * _US,
            runtime_cores_per_node=1,
            work_stealing=True,
            steal_overhead_s=4.0 * _US,
        ),
        RuntimeModel(
            name="parsec_dtd",
            task_overhead_s=1.5 * _US,
            dep_overhead_s=0.7 * _US,
            send_overhead_s=0.7 * _US,
            runtime_cores_per_node=1,
            dynamic_check_s_per_node=0.05 * _US,
        ),
        RuntimeModel(
            name="parsec_ptg",
            task_overhead_s=1.0 * _US,
            dep_overhead_s=0.6 * _US,
            send_overhead_s=0.6 * _US,
            runtime_cores_per_node=1,
            dynamic_check_s_per_node=0.01 * _US,
        ),
        RuntimeModel(
            name="parsec_shard",
            task_overhead_s=1.5 * _US,
            dep_overhead_s=0.7 * _US,
            send_overhead_s=0.7 * _US,
            runtime_cores_per_node=1,
            dynamic_check_s_per_node=0.0,
        ),
        RuntimeModel(
            name="starpu",
            task_overhead_s=2.5 * _US,
            dep_overhead_s=1.0 * _US,
            send_overhead_s=1.0 * _US,
            runtime_cores_per_node=1,
            dynamic_check_s_per_node=0.08 * _US,
        ),
        RuntimeModel(
            name="x10",
            task_overhead_s=40.0 * _US,
            dep_overhead_s=5.0 * _US,
            send_overhead_s=5.0 * _US,
            runtime_cores_per_node=1,
        ),
        # -- workflow / data-analytics systems -----------------------------
        RuntimeModel(
            name="swift_t",
            task_overhead_s=8.0 * _MS,
            dep_overhead_s=0.5 * _MS,
            send_overhead_s=0.5 * _MS,
            runtime_cores_per_node=1,  # ADLB server share
        ),
        RuntimeModel(
            name="tensorflow",
            task_overhead_s=5.0 * _MS,
            dep_overhead_s=0.2 * _MS,
            send_overhead_s=0.2 * _MS,
            distributed=False,  # evaluated on a single node in the paper
        ),
        RuntimeModel(
            name="dask",
            task_overhead_s=1.0 * _MS,
            dep_overhead_s=0.1 * _MS,
            send_overhead_s=0.1 * _MS,
            runtime_cores_per_node=2,  # scheduler + comm
            controller_tasks_per_s=500.0,
            controller_latency_s=1.0 * _MS,
        ),
        RuntimeModel(
            name="spark",
            task_overhead_s=2.0 * _MS,
            dep_overhead_s=0.5 * _MS,
            send_overhead_s=0.5 * _MS,
            runtime_cores_per_node=2,  # driver + shuffle service
            controller_tasks_per_s=150.0,
            controller_latency_s=2.0 * _MS,
        ),
    ]


def all_systems() -> Dict[str, RuntimeModel]:
    """All modeled systems by name."""
    return {m.name: m for m in _catalog()}


def get_system(name: str) -> RuntimeModel:
    """Look up one modeled system by name."""
    systems = all_systems()
    try:
        return systems[name]
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; available: {', '.join(sorted(systems))}"
        ) from None


def scaled_for(model: RuntimeModel, machine: MachineSpec) -> RuntimeModel:
    """Adapt a model's reserved-core count to a (possibly downscaled)
    machine.

    On Cori a runtime reserving 2 of 32 cores costs 6 % of peak; on the
    small simulated nodes used in fast benchmarks the same absolute count
    would cost 50 %, distorting METG(50%).  Reserved cores are therefore
    scaled with node size, preserving the *fractional* peak hit.
    """
    if model.runtime_cores_per_node == 0:
        return model
    scaled = min(
        model.runtime_cores_per_node,
        max(0, machine.cores_per_node // 8),
    )
    return model.with_(runtime_cores_per_node=scaled)


#: Systems shown in Figure 9 (all but single-node-only ones scale).
FIGURE9_SYSTEMS = [
    "mpi_p2p", "mpi_bulk_sync", "mpi_openmp", "charmpp", "realm", "regent",
    "chapel", "parsec_dtd", "parsec_ptg", "parsec_shard", "starpu", "x10",
    "swift_t", "dask", "spark",
]

#: Asynchronous systems of the communication-hiding study (Figure 11).
FIGURE11_SYSTEMS = [
    "chapel", "charmpp", "mpi_bulk_sync", "mpi_p2p", "mpi_openmp",
    "parsec_dtd", "parsec_ptg", "parsec_shard", "realm", "starpu",
]

#: Systems of the load-imbalance study (Figure 12), single node.
FIGURE12_SYSTEMS = [
    "chapel", "chapel_distrib", "charmpp", "dask", "mpi_bulk_sync",
    "mpi_p2p", "mpi_openmp", "ompss", "openmp_task", "parsec_dtd",
    "parsec_ptg", "realm", "starpu", "x10",
]
