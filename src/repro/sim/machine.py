"""Machine specifications for the simulator substrate.

Stands in for the paper's testbeds: Cori (Cray XC40, 32-core Haswell nodes,
1.26 TFLOP/s measured per node, Aries interconnect) and Piz Daint (XC50,
12-core Xeon + P100 per node).  The simulator is calibrated against the
paper's *measured* peaks, exactly as the paper calibrates efficiency against
its empirically-determined 1.26 TFLOP/s rather than the official number.

Column-to-core mapping follows the paper's convention: "each column will be
assigned to execute on a different processor core" — width is normally the
number of worker cores, and columns are block-distributed so neighbouring
columns share nodes (which is what makes the stencil pattern cheap and the
spread pattern expensive at scale).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.kernels import FLOPS_PER_ITERATION, Kernel, KernelTimeModel


@dataclass(frozen=True)
class MachineSpec:
    """A homogeneous cluster of multi-core nodes.

    Attributes
    ----------
    nodes:
        Number of nodes.
    cores_per_node:
        Physical cores per node.
    flops_per_core:
        Peak FLOP/s of one core for the compute kernel (calibrated).
    mem_bw_per_node:
        Peak memory bandwidth per node in B/s (calibrated; the paper
        measures 79 GB/s per Cori node).
    mem_bw_saturation_cores:
        Number of cores needed to saturate memory bandwidth (paper §5.2:
        "not all cores are required to saturate memory bandwidth").
    memory_per_node:
        DRAM capacity per node in bytes (Cori Haswell: 128 GB).  Used by
        the static graph lint to flag configurations whose live payload
        frontier cannot fit in memory.
    """

    nodes: int = 1
    cores_per_node: int = 32
    flops_per_core: float = 39.4e9  # 1.26 TFLOP/s / 32 cores (Cori Haswell)
    mem_bw_per_node: float = 79e9  # measured STREAM-like peak on Cori
    mem_bw_saturation_cores: int = 16
    memory_per_node: float = 128e9  # Cori Haswell DRAM per node

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.cores_per_node < 1:
            raise ValueError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        if self.flops_per_core <= 0 or self.mem_bw_per_node <= 0:
            raise ValueError("peak rates must be positive")
        if self.mem_bw_saturation_cores < 1:
            raise ValueError("mem_bw_saturation_cores must be >= 1")
        if self.memory_per_node <= 0:
            raise ValueError("memory_per_node must be positive")

    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        """All cores in the machine."""
        return self.nodes * self.cores_per_node

    @property
    def peak_flops(self) -> float:
        """Machine-wide peak FLOP/s (the 100 % efficiency reference)."""
        return self.total_cores * self.flops_per_core

    @property
    def peak_bytes_per_second(self) -> float:
        """Machine-wide peak memory bandwidth."""
        return self.nodes * self.mem_bw_per_node

    @property
    def total_memory(self) -> float:
        """Machine-wide DRAM capacity in bytes."""
        return self.nodes * self.memory_per_node

    def with_nodes(self, nodes: int) -> "MachineSpec":
        """Same node architecture, different node count (scaling studies)."""
        return replace(self, nodes=nodes)

    # ------------------------------------------------------------------
    def kernel_time_model(self, worker_cores_per_node: int | None = None) -> KernelTimeModel:
        """Duration model for kernels running on one core of this machine.

        The memory-bound kernel's per-core rate is ``node_bw / max(workers,
        saturation)``: with at least ``mem_bw_saturation_cores`` workers the
        node bandwidth is fully shared (aggregate = node peak — which is why
        reserving a few cores barely hurts the memory case, paper §5.2);
        with fewer workers each core is bound by its single-core share and
        the node cannot be saturated.
        """
        cores = worker_cores_per_node or self.cores_per_node
        saturation = min(self.mem_bw_saturation_cores, self.cores_per_node)
        sharing = max(1, max(cores, saturation))
        return KernelTimeModel(
            seconds_per_iteration=FLOPS_PER_ITERATION / self.flops_per_core,
            bytes_per_second=self.mem_bw_per_node / sharing,
        )

    def kernel_seconds(self, kernel: Kernel, t: int = 0, i: int = 0, seed: int = 0) -> float:
        """Modeled duration of one task's kernel on one core."""
        return self.kernel_time_model().task_seconds(kernel, t, i, seed)

    # ------------------------------------------------------------------
    # Column/core topology
    # ------------------------------------------------------------------
    def node_of_core(self, core: int) -> int:
        """Node hosting global core index ``core``."""
        if not 0 <= core < self.total_cores:
            raise IndexError(f"core {core} outside [0, {self.total_cores})")
        return core // self.cores_per_node


#: The paper's primary testbed: Cori Haswell partition (§5).
CORI_HASWELL = MachineSpec()

#: A deliberately small machine for fast simulations and tests: shapes of
#: the paper's phenomena are preserved while task counts stay tractable for
#: a pure-Python event loop.
TINY = MachineSpec(nodes=1, cores_per_node=4)


def column_to_core(column: int, width: int, worker_cores: int) -> int:
    """Block-map ``column`` of a ``width``-wide graph onto a worker core.

    When ``width == worker_cores`` this is the identity (the paper's usual
    configuration); when width exceeds the cores, contiguous blocks of
    columns share a core; when cores exceed width, the extra cores idle.
    """
    if width < 1 or worker_cores < 1:
        raise ValueError("width and worker_cores must be >= 1")
    if not 0 <= column < width:
        raise IndexError(f"column {column} outside [0, {width})")
    if width <= worker_cores:
        return column
    return min(column * worker_cores // width, worker_cores - 1)
