"""Stress and semantics tests for the futures and asyncio executors.

The basic correctness grid in ``test_executors.py`` covers them; here we
check the paradigm-specific properties: the FIFO/topological deadlock-
freedom argument of the futures executor, and the unbounded-suspension /
bounded-execution split of the asyncio executor.
"""

import threading

import pytest

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.runtimes import AsyncioExecutor, FuturesExecutor


def graph(width, steps=12, pattern=DependenceType.STENCIL_1D, gi=0, radix=3):
    return TaskGraph(
        timesteps=steps,
        max_width=width,
        dependence=pattern,
        radix=radix,
        kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=2),
        graph_index=gi,
    )


class TestFuturesDeadlockFreedom:
    """The executor blocks inside tasks on input futures; FIFO + topological
    submission order is the no-deadlock argument.  Stress the narrow-pool
    regimes where a wrong order would hang."""

    @pytest.mark.parametrize("workers", [1, 2, 3])
    @pytest.mark.parametrize("width", [1, 4, 16, 33])
    def test_narrow_pools_wide_graphs(self, workers, width):
        r = FuturesExecutor(workers=workers).run([graph(width)])
        assert r.total_tasks == width * 12

    def test_single_worker_all_patterns(self):
        for pattern in (DependenceType.ALL_TO_ALL, DependenceType.FFT,
                        DependenceType.TREE, DependenceType.SPREAD):
            FuturesExecutor(workers=1).run([graph(6, pattern=pattern)])

    def test_many_graphs_one_worker(self):
        graphs = [graph(5, gi=k) for k in range(6)]
        r = FuturesExecutor(workers=1).run(graphs)
        assert r.total_tasks == 6 * 5 * 12

    def test_exception_does_not_hang(self, monkeypatch):
        def boom(self, t=0, i=0, scratch=None, seed=0):
            if (t, i) == (5, 2):
                raise RuntimeError("kernel crash")

        monkeypatch.setattr(Kernel, "execute", boom)
        done = []

        def run():
            with pytest.raises(RuntimeError, match="kernel crash"):
                FuturesExecutor(workers=2).run([graph(4)])
            done.append(True)

        th = threading.Thread(target=run, daemon=True)
        th.start()
        th.join(timeout=30)
        assert done, "futures executor hung on task failure"


class TestAsyncioExecutor:
    def test_many_suspended_few_running(self):
        """A tall, wide graph creates far more coroutines than the worker
        semaphore permits; all must complete."""
        g = graph(32, steps=20)
        r = AsyncioExecutor(workers=2).run([g])
        assert r.total_tasks == 640

    def test_single_permit_serializes_correctly(self):
        r = AsyncioExecutor(workers=1).run([graph(8)])
        assert r.total_tasks == 96

    def test_heterogeneous_graphs(self):
        graphs = [
            graph(6, gi=0),
            graph(8, gi=1, pattern=DependenceType.TREE),
            graph(4, gi=2, pattern=DependenceType.ALL_TO_ALL),
        ]
        r = AsyncioExecutor(workers=3).run(graphs)
        assert r.total_tasks == sum(g.total_tasks() for g in graphs)

    def test_exception_propagates_and_loop_closes(self, monkeypatch):
        def boom(self, t=0, i=0, scratch=None, seed=0):
            if (t, i) == (3, 1):
                raise ValueError("async kernel crash")

        monkeypatch.setattr(Kernel, "execute", boom)
        with pytest.raises(ValueError, match="async kernel crash"):
            AsyncioExecutor(workers=2).run([graph(4)])
        # the loop must be fully torn down: a fresh run works
        monkeypatch.undo()
        AsyncioExecutor(workers=2).run([graph(4)])

    def test_validation_enabled_by_default(self):
        r = AsyncioExecutor(workers=2).run([graph(4)])
        assert r.validated
