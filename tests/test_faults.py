"""Fault-tolerance tests: supervised pool, fault injection, self-healing.

The METG methodology re-runs one executor configuration dozens of times per
sweep; these tests pin the supervision layer that keeps a single fault from
hanging or aborting the whole benchmark:

* a SIGKILLed worker surfaces as :class:`WorkerCrashError` and a wedged one
  as :class:`WorkerTimeoutError` *within the configured deadline* — never
  an indefinite ``recv`` hang;
* the pool self-heals: dead workers respawn in place, the executor replays
  its graph-cache state, and the next run passes validation with zero
  orphaned shared-memory segments;
* an injected transient crash during a METG sweep costs one retried probe.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.core.bufpool import (
    SharedMemorySlabPool,
    StaleHandleError,
    _POOLS,
    orphaned_segments,
    sweep_orphaned_segments,
)
from repro.faults import FaultSpec, apply_fault, parse_fault
from repro.metg.efficiency import measure
from repro.metg.runners import RealRunner
from repro.runtimes import make_executor
from repro.runtimes._procpool import (
    ForkWorkerPool,
    WorkerCrashError,
    WorkerTimeoutError,
)

PROCESS_RUNTIMES = ["processes", "shm_processes"]

#: Generous wall-clock bound: a "no indefinite hang" assertion with slack
#: for terminate->kill escalation and slow CI hosts.
HANG_BOUND = 20.0


def _graph(nbytes=64, **kw) -> TaskGraph:
    kw.setdefault("timesteps", 4)
    kw.setdefault("max_width", 4)
    kw.setdefault("dependence", DependenceType.STENCIL_1D)
    return TaskGraph(output_bytes_per_task=nbytes, **kw)


def _chunk_fn(arg):
    """Pool test worker: echo, crash, or stall on marker chunks."""
    if arg == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    if arg == "hang":
        time.sleep(600)
    return (os.getpid(), arg)


# ----------------------------------------------------------------------
# FaultSpec parsing and validation
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_forms(self):
        assert parse_fault("crash:0:3") == FaultSpec("crash", 0, 3)
        assert parse_fault("wedge:1:0") == FaultSpec("wedge", 1, 0)
        assert parse_fault("delay:0:2:0.2") == FaultSpec("delay", 0, 2, 0.2)

    @pytest.mark.parametrize(
        "bad",
        ["", "crash", "crash:0", "crash:x:1", "crash:0:1:zz", "explode:0:1",
         "crash:-1:0", "crash:0:-2", "delay:0:0:-1", "crash:0:1:2:3"],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_fault(bad)

    def test_delay_fault_returns(self):
        start = time.monotonic()
        apply_fault(FaultSpec("delay", 0, 0, 0.01))
        assert 0.005 < time.monotonic() - start < 5.0

    def test_env_arming(self, monkeypatch):
        from repro import faults

        monkeypatch.setenv(faults.ENV_FAULT, "crash:1:2")
        monkeypatch.setenv(faults.ENV_TIMEOUT, "7.5")
        monkeypatch.setenv(faults.ENV_MAX_RETRIES, "3")
        assert faults.fault_from_env() == FaultSpec("crash", 1, 2)
        assert faults.default_timeout() == 7.5
        assert faults.default_max_retries() == 3
        monkeypatch.delenv(faults.ENV_FAULT)
        monkeypatch.delenv(faults.ENV_TIMEOUT)
        monkeypatch.delenv(faults.ENV_MAX_RETRIES)
        assert faults.fault_from_env() is None
        assert faults.default_timeout() is None
        assert faults.default_max_retries() == 0


# ----------------------------------------------------------------------
# ForkWorkerPool supervision primitive
# ----------------------------------------------------------------------
class TestSupervisedPool:
    def test_sigkilled_worker_raises_crash_and_heals(self):
        pool = ForkWorkerPool(_chunk_fn, 2, timeout=10.0)
        try:
            start = time.monotonic()
            with pytest.raises(WorkerCrashError):
                pool.run_round(["a", "die", "c"])
            assert time.monotonic() - start < HANG_BOUND
            assert pool.crashes == 1
            assert pool.dead_workers  # marked for respawn

            assert pool.heal() == 1
            assert not pool.dead_workers
            results = pool.run_round(["x", "y"])
            assert [r[1] for r in results] == ["x", "y"]
        finally:
            pool.close()

    def test_wedged_worker_times_out_within_deadline(self):
        pool = ForkWorkerPool(_chunk_fn, 2, timeout=0.5)
        try:
            start = time.monotonic()
            with pytest.raises(WorkerTimeoutError, match="deadline"):
                pool.run_round(["a", "hang"])
            assert time.monotonic() - start < HANG_BOUND
            assert pool.timeouts == 1

            pool.heal()
            assert [r[1] for r in pool.run_round(["x"])] == ["x"]
        finally:
            pool.close()

    def test_injected_wedge_is_killed_on_close(self):
        """A SIGTERM-ignoring busy-loop worker cannot survive shutdown:
        close() escalates terminate() -> kill()."""
        pool = ForkWorkerPool(
            _chunk_fn, 1, timeout=0.5, fault=FaultSpec("wedge", 0, 0)
        )
        proc = pool._procs[0]
        try:
            with pytest.raises(WorkerTimeoutError):
                pool.run_round(["a"])
        finally:
            start = time.monotonic()
            pool.close()
            assert time.monotonic() - start < HANG_BOUND
        assert not proc.is_alive()

    def test_injected_crash_fires_at_chosen_round(self):
        pool = ForkWorkerPool(
            _chunk_fn, 1, timeout=10.0, fault=FaultSpec("crash", 0, 1)
        )
        try:
            assert [r[1] for r in pool.run_round(["r0"])] == ["r0"]  # round 0 ok
            with pytest.raises(WorkerCrashError):
                pool.run_round(["r1"])
            # Respawned generations never carry the fault: transient.
            pool.heal()
            assert [r[1] for r in pool.run_round(["r1"])] == ["r1"]
            assert [r[1] for r in pool.run_round(["r2"])] == ["r2"]
        finally:
            pool.close()

    def test_broadcast_slots_align_with_worker_indices(self):
        pool = ForkWorkerPool(_remember_chunk, 3, timeout=10.0)
        try:
            # Seed per-worker state so one specific worker errors below.
            pool.run_round([0, 1, 2])  # round-robin: worker w gets chunk w
            out = pool.broadcast(os.getpid)
            assert len(out) == 3 and len(set(out)) == 3

            with pytest.raises(ZeroDivisionError) as excinfo:
                pool.broadcast(_div_by_worker_chunk)
            # Worker 0 (chunk 0) errored; results stay at worker indices.
            assert excinfo.value.partial_results == [None, 100, 50]

            # Pipes stayed in protocol sync: the pool still serves rounds.
            assert [r[1] for r in pool.run_round(["z"])] == ["z"]
        finally:
            pool.close()


_LAST_CHUNK = None


def _remember_chunk(arg):
    global _LAST_CHUNK
    _LAST_CHUNK = arg
    return (os.getpid(), arg)


def _div_by_worker_chunk():
    """Broadcast target: fails only in the worker whose last-seen round
    chunk was 0 (see test_broadcast_slots_align_with_worker_indices)."""
    return 100 // _LAST_CHUNK


# ----------------------------------------------------------------------
# End-to-end: executors under injected faults
# ----------------------------------------------------------------------
@pytest.mark.parametrize("runtime", PROCESS_RUNTIMES)
def test_executor_crash_self_heals_no_refork(runtime):
    """A worker SIGKILLed mid-run surfaces a typed error within the
    deadline, the pool heals in place (no full refork), and the next run
    on the same executor instance passes validation."""
    ex = make_executor(
        runtime, workers=2, timeout=10.0, fault=parse_fault("crash:0:1")
    )
    try:
        start = time.monotonic()
        with pytest.raises(WorkerCrashError):
            ex.run([_graph()])
        assert time.monotonic() - start < HANG_BOUND
        pool = ex._procs
        assert pool is not None  # supervised failure keeps the warm pool

        result = ex.run([_graph()])  # heals, replays cache, validates
        assert ex._procs is pool  # same pool object: healed, not reforked
        assert result.faults is not None
        assert result.faults.worker_crashes == 1
        assert result.faults.workers_respawned == 1
    finally:
        ex.close()


@pytest.mark.parametrize("runtime", PROCESS_RUNTIMES)
def test_executor_wedge_times_out_and_recovers(runtime):
    ex = make_executor(
        runtime, workers=2, timeout=1.0, fault=parse_fault("wedge:1:0")
    )
    try:
        start = time.monotonic()
        with pytest.raises(WorkerTimeoutError, match="deadline"):
            ex.run([_graph()])
        assert time.monotonic() - start < HANG_BOUND

        result = ex.run([_graph()])
        assert result.faults is not None
        assert result.faults.worker_timeouts == 1
    finally:
        ex.close()


def test_shm_crash_releases_slots_and_orphans_nothing():
    """The data-plane half of recovery: a mid-round crash must not leave
    live slots (masking the original error with the leak check on the
    next run) nor orphan /dev/shm segments."""
    ex = make_executor(
        "shm_processes", workers=2, timeout=10.0, fault=parse_fault("crash:0:1")
    )
    try:
        with pytest.raises(WorkerCrashError):
            ex.run([_graph(nbytes=4096)])
        buffers = ex._buffers
        assert buffers is not None
        assert buffers.live_slots == 0  # aborted round fully unwound
        segments = list(buffers.segment_names)
        assert segments
        for name in segments:
            assert os.path.exists(f"/dev/shm/{name}")  # still backing the pool

        result = ex.run([_graph(nbytes=4096)])  # no data-plane leak error
        assert result.validated
    finally:
        ex.close()
    for name in segments:
        assert not os.path.exists(f"/dev/shm/{name}")  # unlinked on close


def test_graph_cache_replay_after_crash():
    """A healed pool must execute the *current* graphs, not a stale cache:
    run graph A clean, crash during run of a *different* graph B under the
    same graph_index, then re-run B — validation (enabled) catches any
    stale replay in the respawned worker."""
    # Worker 1 serves 4 chunk rounds in run A (timesteps=4), so a fault at
    # round index 4 fires on its first round of run B.
    ex = make_executor(
        "processes", workers=2, timeout=10.0, fault=parse_fault("crash:1:4")
    )
    try:
        a = _graph(nbytes=64)
        assert ex.run([a]).validated  # run A: clean, caches A in workers
        b = _graph(
            nbytes=1024,
            dependence=DependenceType.FFT,
            kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=2),
        )
        with pytest.raises(WorkerCrashError):
            ex.run([b])
        result = ex.run([b])  # healed worker must boot with graph B, not A
        assert result.validated
        assert result.faults.workers_respawned == 1
    finally:
        ex.close()


# ----------------------------------------------------------------------
# Data-plane recovery primitives
# ----------------------------------------------------------------------
class TestBufpoolRecovery:
    def test_release_live_reclaims_and_staleifies(self):
        with SharedMemorySlabPool() as pool:
            refs = [pool.acquire(128, refs=2) for _ in range(5)]
            assert pool.live_slots == 5
            assert pool.release_live() == 5
            assert pool.live_slots == 0
            for ref in refs:  # outstanding handles went stale, not silent
                with pytest.raises(StaleHandleError):
                    pool.resolve(ref)
            # Released slots recycle through the free lists.
            again = pool.acquire(128)
            assert pool.stats.hits >= 1
            pool.decref(again)
        assert pool.release_live() == 0  # closed pool: a no-op

    def test_sweep_unlinks_only_orphans(self):
        keeper = SharedMemorySlabPool()
        orphan = SharedMemorySlabPool()
        try:
            keeper.acquire(64)
            orphan.acquire(64)
            kept = list(keeper.segment_names)
            lost = list(orphan.segment_names)
            assert not orphaned_segments()

            # Simulate a fault unwinding the owner before close() ran.
            _POOLS.pop(orphan.pool_id)
            assert orphaned_segments() == sorted(lost)
            swept = sweep_orphaned_segments()
            assert swept == sorted(lost)
            for name in lost:
                assert not os.path.exists(f"/dev/shm/{name}")
            for name in kept:  # live pools are never touched
                assert os.path.exists(f"/dev/shm/{name}")
            assert not orphaned_segments()
        finally:
            keeper.release_live()
            keeper.close()
            orphan.close()  # segments already swept; teardown tolerates it


# ----------------------------------------------------------------------
# METG probe retry
# ----------------------------------------------------------------------
def test_metg_probe_retry_costs_one_probe():
    """An injected transient crash during a sweep costs one retried probe,
    visible in the measurement's fault counters."""
    ex = make_executor(
        "processes", workers=2, timeout=10.0, fault=parse_fault("crash:0:1")
    )
    runner = RealRunner(ex, max_retries=2)
    try:

        def factory(iterations):
            return [
                _graph(
                    kernel=Kernel(
                        kernel_type=KernelType.COMPUTE_BOUND,
                        iterations=iterations,
                    )
                )
            ]

        m = measure(runner, factory, 4)
        assert m.result.faults is not None
        assert m.result.faults.probe_retries == 1
        assert m.result.faults.worker_crashes == 1
        assert m.result.faults.workers_respawned == 1
    finally:
        ex.close()


def test_metg_probe_retry_budget_exhausted():
    """With no retry budget the transient failure propagates."""
    ex = make_executor(
        "processes", workers=2, timeout=10.0, fault=parse_fault("crash:0:0")
    )
    runner = RealRunner(ex, max_retries=0)
    try:
        with pytest.raises(WorkerCrashError):
            measure(runner, lambda n: [_graph()], 1)
    finally:
        ex.close()


def test_metg_unachievable_reports_peak_not_last(monkeypatch):
    """The METGUnachievable message must cite the sweep's *best*
    efficiency (curves are noisy and non-monotone), not the last probe's."""
    import importlib

    from repro.core.metrics import RunResult
    from repro.metg.efficiency import Measurement

    # ``repro.metg`` re-exports the ``metg`` *function* under the same
    # name, so ``import repro.metg.metg`` would bind the function.
    metg_mod = importlib.import_module("repro.metg.metg")

    curve = {1: 0.2, 8: 0.45, 64: 0.3}

    def fake_measure(runner, factory, iterations, *, metric="flops"):
        result = RunResult(
            executor="fake", elapsed_seconds=1.0, cores=1,
            total_tasks=1, total_dependencies=0,
        )
        return Measurement(
            iterations=iterations, result=result,
            efficiency=curve[iterations],
        )

    monkeypatch.setattr(metg_mod, "measure", fake_measure)

    class FakeRunner:
        name = "fake"

    with pytest.raises(metg_mod.METGUnachievable) as excinfo:
        metg_mod.metg(
            FakeRunner(), lambda n: [], start_iterations=1, max_iterations=64
        )
    message = str(excinfo.value)
    assert "0.450" in message  # the peak, not the last probe's 0.300
    assert "at 8 iterations/task" in message
