"""Tests for the ``python -m repro.analysis`` command-line front end."""

import json

import pytest

from repro.analysis import figure13, save_figure_json
from repro.analysis.__main__ import main
from repro.analysis.figures import FigureData, Series


@pytest.fixture()
def archived(tmp_path):
    path = tmp_path / "fig13.json"
    save_figure_json(figure13(), path)
    return path


class TestPlotCommand:
    def test_plots_archive(self, archived, capsys):
        assert main(["plot", str(archived)]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out and "mpi_cpu" in out

    def test_linear_flag(self, archived, capsys):
        assert main(["plot", str(archived), "--linear"]) == 0
        assert "(log)" not in capsys.readouterr().out

    def test_usage_error(self, capsys):
        assert main(["plot"]) == 2
        assert "usage" in capsys.readouterr().err


class TestCompareCommand:
    def test_identical_agree(self, archived, capsys):
        assert main(["compare", str(archived), str(archived)]) == 0
        assert "agree" in capsys.readouterr().out

    def test_different_figures_differ(self, archived, tmp_path, capsys):
        other = FigureData(
            "fig13", "t", "x", "y",
            [Series("mpi_cpu", [65536.0], [1.0])],
        )
        path2 = tmp_path / "other.json"
        save_figure_json(other, path2)
        assert main(["compare", str(archived), str(path2)]) == 1
        assert capsys.readouterr().out

    def test_tolerance(self, archived, tmp_path, capsys):
        data = json.loads(archived.read_text())
        for s in data["series"]:
            s["y"] = [y * 1.01 for y in s["y"]]
        path2 = tmp_path / "scaled.json"
        path2.write_text(json.dumps(data))
        assert main(["compare", str(archived), str(path2), "--rel", "0.05"]) == 0
        assert main(["compare", str(archived), str(path2), "--rel", "0.001"]) == 1

    def test_bad_rel(self, capsys):
        assert main(["compare", "a", "b", "--rel", "x"]) == 2


class TestTopLevel:
    def test_help(self, capsys):
        assert main([]) == 0
        assert "Subcommands" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["dance"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_figures_fast_archives(self, tmp_path, capsys):
        rc = main(["figures", "--fast", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert (tmp_path / "fig13.json").exists()
        assert (tmp_path / "fig9a.txt").exists()
