"""Regression tests for cross-run worker-cache coherence.

The process executors keep their fork-worker pool alive across runs of one
executor instance.  Workers cache graphs by ``graph_index``; historically a
later run reusing an index for a *different* graph silently executed the
stale cached graph (wrong kernel, wrong payload size, wrong dependence
pattern).  These tests pin the fix at both layers:

* worker-side: :func:`repro.runtimes.processes.worker_graph` evicts a
  mismatched cache entry (and its scratch buffer) by equality;
* parent-side: ``_sync_workers`` broadcasts changed graphs to *every*
  worker before any chunk of the new run is dispatched.

Plus direct coverage of the :class:`ForkWorkerPool` primitive the
executors are built on.
"""

from __future__ import annotations

import os

import pytest

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.runtimes import make_executor
from repro.runtimes._common import capturing_outputs, consumer_count
from repro.runtimes._procpool import ForkWorkerPool
from repro.runtimes.processes import (
    _WORKER_GRAPHS,
    _WORKER_SCRATCH,
    _worker_init,
    worker_graph,
    worker_scratch,
)

PROCESS_RUNTIMES = ["processes", "shm_processes"]


def _graph(dep=DependenceType.STENCIL_1D, nbytes=256, **kw) -> TaskGraph:
    kw.setdefault("timesteps", 5)
    kw.setdefault("max_width", 6)
    return TaskGraph(dependence=dep, output_bytes_per_task=nbytes, **kw)


# ----------------------------------------------------------------------
# Worker-side cache eviction
# ----------------------------------------------------------------------
@pytest.fixture
def clean_worker_caches():
    _WORKER_GRAPHS.clear()
    _WORKER_SCRATCH.clear()
    yield
    _WORKER_GRAPHS.clear()
    _WORKER_SCRATCH.clear()


def test_worker_graph_evicts_stale_entry(clean_worker_caches):
    """A different graph under a reused index replaces the cached one and
    drops its scratch buffer; an equal graph keeps the warm entry."""
    a = _graph(
        kernel=Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=1),
        scratch_bytes_per_task=1024,
        graph_index=0,
    )
    _worker_init([a])
    assert worker_scratch(a) is not None
    assert 0 in _WORKER_SCRATCH

    # Same index, different graph: the stale entry and scratch must go.
    b = _graph(DependenceType.FFT, nbytes=64, graph_index=0)
    installed = worker_graph(b)
    assert installed is b
    assert _WORKER_GRAPHS[0] == b
    assert 0 not in _WORKER_SCRATCH

    # Equal graph: the cached instance (warm dependence tables) survives.
    b2 = _graph(DependenceType.FFT, nbytes=64, graph_index=0)
    assert worker_graph(b2) is b


def test_worker_scratch_tracks_size(clean_worker_caches):
    g = _graph(scratch_bytes_per_task=512, graph_index=3)
    _worker_init([g])
    first = worker_scratch(g)
    assert first is not None and first.nbytes == 512
    assert worker_scratch(g) is first  # stable across calls

    bigger = _graph(scratch_bytes_per_task=2048, graph_index=3)
    second = worker_scratch(bigger)
    assert second is not None and second.nbytes == 2048


# ----------------------------------------------------------------------
# End-to-end: one executor, back-to-back runs, conflicting graph_index
# ----------------------------------------------------------------------
def _captured_outputs(runtime: str, graphs, executor=None):
    ex = executor or make_executor(runtime, workers=2)
    try:
        with capturing_outputs() as sink:
            ex.run(graphs)
        expected = {
            (g.graph_index, t, i)
            for g in graphs
            for t, i in g.points()
            if consumer_count(g, t, i) > 0
        }
        return {k: sink[k] for k in expected}
    finally:
        if executor is None and hasattr(ex, "close"):
            ex.close()


@pytest.mark.parametrize("runtime", PROCESS_RUNTIMES)
def test_graph_index_reuse_across_runs(runtime):
    """Re-running one executor with a *different* graph under the same
    ``graph_index`` must execute the new graph, not the workers' cached
    one.  Validation stays on, so a stale graph (different pattern,
    payload size, and kernel) fails loudly rather than flakily."""
    ex = make_executor(runtime, workers=2)
    try:
        first = _graph(DependenceType.STENCIL_1D, nbytes=64, graph_index=0)
        ex.run([first])

        second = _graph(
            DependenceType.FFT,
            nbytes=1024,
            graph_index=0,
            kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=2),
        )
        got = _captured_outputs(runtime, [second], executor=ex)
        want = _captured_outputs("serial", [_graph(
            DependenceType.FFT,
            nbytes=1024,
            graph_index=0,
            kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=2),
        )])
        assert got == want
    finally:
        ex.close()


@pytest.mark.parametrize("runtime", PROCESS_RUNTIMES)
def test_scratch_size_change_across_runs(runtime):
    """A reused index whose scratch requirement changed must not leave
    workers holding the old buffer size."""
    ex = make_executor(runtime, workers=2)
    try:
        ex.run([_graph(
            kernel=Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=1),
            scratch_bytes_per_task=1024,
            graph_index=0,
        )])
        ex.run([_graph(
            kernel=Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=1),
            scratch_bytes_per_task=4096,
            graph_index=0,
        )])
    finally:
        ex.close()


@pytest.mark.parametrize("runtime", PROCESS_RUNTIMES)
def test_unchanged_graphs_reuse_pool(runtime):
    """Equal graphs across runs must not re-fork the pool (METG sweeps
    re-run one executor dozens of times)."""
    ex = make_executor(runtime, workers=2)
    try:
        g = _graph(graph_index=0)
        ex.run([g])
        pool = ex._procs
        assert pool is not None
        ex.run([_graph(graph_index=0)])
        assert ex._procs is pool
    finally:
        ex.close()


# ----------------------------------------------------------------------
# ForkWorkerPool primitive
# ----------------------------------------------------------------------
_PROBE_STATE: dict = {}


def _probe_set(key, value):
    _PROBE_STATE[key] = value


def _probe_chunk(arg):
    if arg == "boom":
        raise ValueError("boom")
    return (os.getpid(), _PROBE_STATE.get("k"), arg)


def test_pool_round_robin_and_order():
    pool = ForkWorkerPool(_probe_chunk, 2)
    try:
        results = pool.run_round(list(range(5)))
        assert [r[2] for r in results] == list(range(5))
        assert len({r[0] for r in results}) == 2  # both workers ran chunks
        assert all(pid != os.getpid() for pid, _, _ in results)
    finally:
        pool.close()


def test_pool_broadcast_reaches_every_worker():
    pool = ForkWorkerPool(_probe_chunk, 2)
    try:
        pool.broadcast(_probe_set, "k", 7)
        results = pool.run_round(list(range(4)))
        assert len({r[0] for r in results}) == 2  # chunks landed on both
        assert all(r[1] == 7 for r in results)  # ...and both saw the broadcast
    finally:
        pool.close()


def test_pool_survives_worker_error():
    """An error reply is drained cleanly: the pipes stay in protocol sync
    and the same pool serves the next round."""
    pool = ForkWorkerPool(_probe_chunk, 2)
    try:
        with pytest.raises(ValueError, match="boom") as excinfo:
            pool.run_round([0, "boom", 2])
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("worker" in n for n in notes)  # remote traceback attached
        results = pool.run_round([10, 11])
        assert [r[2] for r in results] == [10, 11]
    finally:
        pool.close()


@pytest.mark.parametrize("runtime", PROCESS_RUNTIMES)
def test_failed_run_drops_pool(runtime, monkeypatch):
    """After a failed run the executor discards its pool so the next run
    re-forks from a coherent state."""
    ex = make_executor(runtime, workers=2)
    try:
        g = _graph(graph_index=0)
        ex.run([g])
        assert ex._procs is not None

        def boom(graphs, validate):
            raise RuntimeError("induced mid-run failure")

        monkeypatch.setattr(ex, "_execute", boom)
        with pytest.raises(RuntimeError, match="induced"):
            ex.run([g])
        assert ex._procs is None  # failure policy: re-fork next time

        monkeypatch.undo()
        ex.run([_graph(graph_index=0)])  # recovers with a fresh pool
        assert ex._procs is not None
    finally:
        ex.close()
