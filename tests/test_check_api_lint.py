"""Tests for the executor-contract lint (repro.check.api_lint)."""

import textwrap

from repro.check import lint_executor_api, lint_runtime_sources
from repro.core.diagnostics import findings


def lint(source):
    return lint_executor_api(textwrap.dedent(source), "fake.py")


def codes(diags):
    return {d.code for d in diags}


CLEAN = """
    from repro.core.executor_base import Executor

    class GoodExecutor(Executor):
        name = "good"
        cores = 1

        def execute_graphs(self, graphs, *, validate=True):
            for g in graphs:
                pass
"""


def test_clean_executor_passes():
    assert lint(CLEAN) == []


def test_missing_members_reported():
    diags = lint("""
        class BareExecutor(Executor):
            def execute_graphs(self, graphs, *, validate=True):
                pass
    """)
    assert codes(diags) == {"api-missing-member"}
    missing = {d.message.split("'")[1] for d in diags}
    assert missing == {"name", "cores"}


def test_cores_as_property_counts():
    diags = lint("""
        class PropExecutor(Executor):
            name = "prop"

            @property
            def cores(self):
                return 1

            def execute_graphs(self, graphs, *, validate=True):
                pass
    """)
    assert diags == []


def test_kernel_bypass_function_reported():
    diags = lint("""
        class SneakyExecutor(Executor):
            name = "sneaky"
            cores = 1

            def execute_graphs(self, graphs, *, validate=True):
                execute_kernel_compute(100)
    """)
    assert "api-kernel-bypass" in codes(diags)


def test_kernel_bypass_method_reported():
    diags = lint("""
        class SneakyExecutor(Executor):
            name = "sneaky"
            cores = 1

            def execute_graphs(self, graphs, *, validate=True):
                for g in graphs:
                    g.kernel.execute(t=0, i=0)
    """)
    assert "api-kernel-bypass" in codes(diags)


def test_unrelated_execute_call_not_flagged():
    diags = lint("""
        class FineExecutor(Executor):
            name = "fine"
            cores = 1

            def execute_graphs(self, graphs, *, validate=True):
                pool.execute(job)
    """)
    assert "api-kernel-bypass" not in codes(diags)


def test_timing_call_reported():
    diags = lint("""
        import time

        class TimedExecutor(Executor):
            name = "timed"
            cores = 1

            def execute_graphs(self, graphs, *, validate=True):
                t0 = time.perf_counter()
    """)
    assert "api-timing" in codes(diags)


def test_timing_waiver_honored():
    diags = lint("""
        import time

        class OverheadExecutor(Executor):
            name = "overhead"
            cores = 1

            def execute_graphs(self, graphs, *, validate=True):
                t0 = time.perf_counter()  # check: allow[timing]
    """)
    assert "api-timing" not in codes(diags)


def test_timing_outside_executor_not_flagged():
    diags = lint("""
        import time

        def helper():
            return time.perf_counter()
    """)
    assert diags == []


def test_unlocked_shared_mutation_reported():
    diags = lint("""
        class RacyExecutor(Executor):
            name = "racy"
            cores = 1

            def execute_graphs(self, graphs, *, validate=True):
                ready = []

                def worker():
                    ready.append(1)
    """)
    bad = [d for d in diags if d.code == "api-unlocked-mutation"]
    assert bad and "'ready'" in bad[0].message


def test_locked_shared_mutation_passes():
    diags = lint("""
        import threading

        class SafeExecutor(Executor):
            name = "safe"
            cores = 1

            def execute_graphs(self, graphs, *, validate=True):
                lock = threading.Lock()
                ready = []

                def worker():
                    with lock:
                        ready.append(1)
    """)
    assert "api-unlocked-mutation" not in codes(diags)


def test_local_container_mutation_passes():
    diags = lint("""
        class LocalExecutor(Executor):
            name = "local"
            cores = 1

            def execute_graphs(self, graphs, *, validate=True):
                def worker():
                    mine = []
                    mine.append(1)
    """)
    assert "api-unlocked-mutation" not in codes(diags)


def test_shared_mutation_waiver_honored():
    diags = lint("""
        class WaivedExecutor(Executor):
            name = "waived"
            cores = 1

            def execute_graphs(self, graphs, *, validate=True):
                ready = []

                def worker():
                    ready.append(1)  # check: allow[shared-mutation]
    """)
    assert "api-unlocked-mutation" not in codes(diags)


def test_private_base_is_abstract():
    """A ``_``-prefixed executor base need not be complete; its public
    subclass inherits the base's members toward the contract."""
    diags = lint("""
        class _SharedMachinery(Executor):
            @property
            def cores(self):
                return 1

            def execute_graphs(self, graphs, *, validate=True):
                pass

        class RealExecutor(_SharedMachinery):
            name = "real"
    """)
    assert "api-missing-member" not in codes(diags)


def test_incomplete_subclass_of_private_base_reported():
    diags = lint("""
        class _SharedMachinery(Executor):
            def execute_graphs(self, graphs, *, validate=True):
                pass

        class RealExecutor(_SharedMachinery):
            name = "real"
    """)
    bad = [d for d in diags if d.code == "api-missing-member"]
    assert len(bad) == 1 and "'cores'" in bad[0].message
    assert "RealExecutor" in bad[0].message


def test_transitive_subclass_is_linted():
    """Contract rules reach executors that subclass another executor in
    the module, not just direct ``Executor`` subclasses."""
    diags = lint("""
        import time

        class _Base(Executor):
            cores = 1

            def execute_graphs(self, graphs, *, validate=True):
                pass

        class Timed(_Base):
            name = "timed"

            def helper(self):
                return time.perf_counter()
    """)
    assert "api-timing" in codes(diags)


def test_raw_shm_reported():
    diags = lint("""
        from multiprocessing import shared_memory

        def make_segment():
            return shared_memory.SharedMemory(create=True, size=4096)
    """)
    assert "api-raw-shm" in codes(diags)


def test_raw_shm_waiver_honored():
    diags = lint("""
        from multiprocessing import shared_memory

        def make_segment():
            return shared_memory.SharedMemory(create=True, size=4096)  # check: allow[raw-shm]
    """)
    assert "api-raw-shm" not in codes(diags)


def test_ref_leak_reported():
    diags = lint("""
        def run(pool):
            ref = pool.acquire(4096, refs=2)
            return ref
    """)
    bad = [d for d in diags if d.code == "api-ref-leak"]
    assert len(bad) == 1


def test_ref_leak_balanced_passes():
    diags = lint("""
        def run(pool):
            refs = pool.acquire_batch(4096, [1, 1])
            pool.decref_batch(refs)
    """)
    assert "api-ref-leak" not in codes(diags)


def test_ref_leak_close_counts_as_release():
    diags = lint("""
        def run(pool):
            ref = pool.acquire(4096)
            pool.close()
    """)
    assert "api-ref-leak" not in codes(diags)


def test_lock_acquire_not_a_pool_acquisition():
    diags = lint("""
        def run(lock):
            lock.acquire()
    """)
    assert "api-ref-leak" not in codes(diags)


def test_syntax_error_reported():
    diags = lint_executor_api("def broken(:\n", "fake.py")
    assert codes(diags) == {"api-syntax"}
    assert diags[0].location.startswith("fake.py:")


def test_locations_carry_file_and_line():
    diags = lint("""
        class BareExecutor(Executor):
            def execute_graphs(self, graphs, *, validate=True):
                pass
    """)
    assert all(d.location.startswith("fake.py:") for d in diags)


def test_repo_runtimes_pass_clean():
    """The CI gate: this repo's own executors honor their contract."""
    assert findings(lint_runtime_sources()) == []
