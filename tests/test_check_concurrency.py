"""Tests for the concurrency pass (repro.check.concurrency): one test per
static finding kind, the runtime lockset sanitizer against seeded and real
executors, and the self-check gate over the repo's own sources."""

from __future__ import annotations

import textwrap
import threading

import pytest

from tests.buggy_executor import RacyStoreExecutor
from repro.check import (
    active_sanitizer,
    instrument,
    lint_concurrency,
    lint_concurrency_sources,
    sanitized_run,
)
from repro.core import DependenceType, TaskGraph
from repro.core.diagnostics import findings
from repro.faults import FaultSpec, apply_fault
from repro.runtimes import make_executor


def lint(source):
    return lint_concurrency(textwrap.dedent(source), "fake.py")


def codes(diags):
    return {d.code for d in diags}


def _graph(**kw) -> TaskGraph:
    kw.setdefault("dependence", DependenceType.STENCIL_1D)
    kw.setdefault("output_bytes_per_task", 64)
    kw.setdefault("timesteps", 6)
    kw.setdefault("max_width", 8)
    return TaskGraph(**kw)


# ---------------------------------------------------------------------------
# Static half
# ---------------------------------------------------------------------------


def test_clean_module_passes():
    assert lint("""
        import threading

        class Scheduler:
            def __init__(self):
                self.lock = threading.Lock()
                self.cv = threading.Condition(self.lock)

            def next_task(self):
                with self.cv:
                    while not self.ready:
                        self.cv.wait()
                    return self.ready.pop()
    """) == []


def test_lock_order_cycle_reported():
    diags = lint("""
        import threading

        class S:
            def __init__(self):
                self.a = threading.Lock()
                self.b = threading.Lock()

            def f(self):
                with self.a:
                    with self.b:
                        pass

            def g(self):
                with self.b:
                    with self.a:
                        pass
    """)
    assert codes(diags) == {"conc-lock-cycle"}
    assert len(diags) == 1  # one cycle, reported once


def test_self_deadlock_on_plain_lock_reported():
    diags = lint("""
        import threading
        lk = threading.Lock()

        def f():
            with lk:
                with lk:
                    pass
    """)
    assert codes(diags) == {"conc-lock-cycle"}


def test_reentrant_self_nesting_allowed():
    assert lint("""
        import threading
        lk = threading.RLock()

        def f():
            with lk:
                with lk:
                    pass
    """) == []


def test_condition_aliases_its_lock_in_the_order_graph():
    # Mixing `with self.cv` and `with self.lock` spellings must not hide
    # the inversion against self.other.
    diags = lint("""
        import threading

        class S:
            def __init__(self):
                self.lock = threading.Lock()
                self.other = threading.Lock()
                self.cv = threading.Condition(self.lock)

            def f(self):
                with self.cv:
                    with self.other:
                        pass

            def g(self):
                with self.other:
                    with self.lock:
                        pass
    """)
    assert codes(diags) == {"conc-lock-cycle"}


def test_unpaired_acquire_reported():
    diags = lint("""
        import threading
        lk = threading.Lock()

        def f():
            lk.acquire()
            do_work()
            lk.release()
    """)
    assert codes(diags) == {"conc-unpaired-acquire"}


def test_acquire_with_finally_release_passes():
    assert lint("""
        import threading
        lk = threading.Lock()

        def f():
            lk.acquire()
            try:
                do_work()
            finally:
                lk.release()
    """) == []


def test_unguarded_wait_reported():
    diags = lint("""
        import threading

        class S:
            def __init__(self):
                self.cv = threading.Condition()

            def f(self):
                with self.cv:
                    if not self.ready:
                        self.cv.wait()
    """)
    assert codes(diags) == {"conc-unguarded-wait"}


def test_while_guarded_wait_passes():
    assert lint("""
        import threading
        cv = threading.Condition()

        def f():
            with cv:
                while not ready():
                    cv.wait()
    """) == []


def test_blocking_call_under_lock_reported():
    diags = lint("""
        import threading
        lk = threading.Lock()

        def f(sock):
            with lk:
                data = sock.recv(1024)
    """)
    assert codes(diags) == {"conc-blocking-under-lock"}


def test_hinted_blocking_receiver_under_lock_reported():
    diags = lint("""
        import threading
        lk = threading.Lock()

        def f(queue):
            with lk:
                return queue.get()
    """)
    assert codes(diags) == {"conc-blocking-under-lock"}


def test_plain_dict_get_under_lock_passes():
    assert lint("""
        import threading
        lk = threading.Lock()

        def f(cache, key):
            with lk:
                return cache.get(key)
    """) == []


def test_wait_holding_a_second_lock_reported():
    # Condition.wait releases only its own lock; anything else held while
    # the thread sleeps is the deadlock shape.
    diags = lint("""
        import threading

        class S:
            def __init__(self):
                self.outer = threading.Lock()
                self.cv = threading.Condition()

            def f(self):
                with self.outer:
                    with self.cv:
                        while not self.ready:
                            self.cv.wait()
    """)
    assert codes(diags) == {"conc-blocking-under-lock"}


def test_waiver_comment_suppresses_finding():
    assert lint("""
        import threading
        lk = threading.Lock()

        def f(sock):
            with lk:
                return sock.recv(4)  # check: allow[blocking-under-lock]
    """) == []


def test_syntax_error_reported_not_raised():
    assert codes(lint("def broken(:")) == {"conc-syntax"}


def test_self_check_real_codebase_clean():
    """The repo's own sources must pass the concurrency lint — the same
    gate ``task-bench check --self`` applies in CI."""
    diags = lint_concurrency_sources()
    assert findings(diags) == [], [d.render() for d in findings(diags)]
    # The advisory scan summary proves the walk actually covered files.
    assert any(d.code == "conc-scan" for d in diags)


# ---------------------------------------------------------------------------
# Runtime half: the lockset sanitizer
# ---------------------------------------------------------------------------


def test_racy_store_executor_flagged():
    """The seeded fixture validates bytewise and audits clean, but every
    cross-thread read has an empty candidate lockset and no happens-before
    edge — only the sanitizer sees it."""
    result = sanitized_run(RacyStoreExecutor, [_graph()])
    bad = findings(result.diagnostics)
    assert bad, "the racy fixture must be flagged"
    assert codes(bad) == {"conc-lockset-race"}
    # The trace-level audit alone is blind to this bug.
    assert not any(d.code.startswith("hb-") for d in bad)
    assert not result.ok
    assert "Sanitizer" in result.report()


def test_threads_executor_sanitizes_clean():
    result = sanitized_run(
        lambda: make_executor("threads", workers=2), [_graph()]
    )
    assert findings(result.diagnostics) == [], [
        d.render() for d in findings(result.diagnostics)
    ]
    assert result.ok
    assert result.stats.lock_acquires > 0  # instrumentation really ran
    assert result.stats.publishes_seen > 0


def test_dataflow_executor_sanitizes_clean():
    result = sanitized_run(
        lambda: make_executor("dataflow", workers=2), [_graph()]
    )
    assert findings(result.diagnostics) == []


def test_p2p_multi_channel_publish_not_a_false_positive():
    """p2p publishes one output through two channels (mailbox post + local
    store put); a reader synchronized with either must pass."""
    result = sanitized_run(lambda: make_executor("p2p", workers=2), [_graph()])
    assert findings(result.diagnostics) == [], [
        d.render() for d in findings(result.diagnostics)
    ]


def test_instrument_restores_primitives():
    real_lock, real_rlock = threading.Lock, threading.RLock
    with instrument() as san:
        assert active_sanitizer() is san
        assert threading.Lock is not real_lock
        lk = threading.Lock()
        with lk:
            pass
        assert san.stats.lock_acquires >= 1
    assert threading.Lock is real_lock
    assert threading.RLock is real_rlock
    assert active_sanitizer() is None


def test_instrument_does_not_nest():
    with instrument():
        with pytest.raises(RuntimeError, match="already installed"):
            with instrument():
                pass


def test_sanitized_condition_keeps_exact_semantics():
    """A Condition built over a sanitized lock must wake correctly (the
    proxy implements the _release_save/_acquire_restore/_is_owned trio)."""
    with instrument():
        cv = threading.Condition()
        hits = []

        def waiter():
            with cv:
                while not hits:
                    cv.wait(timeout=5.0)
                hits.append("woke")

        th = threading.Thread(target=waiter, daemon=True)
        th.start()
        with cv:
            hits.append("set")
            cv.notify_all()
        th.join(timeout=5.0)
        assert not th.is_alive()
        assert hits == ["set", "woke"]


def test_fault_delay_recorded_under_sanitizer():
    with instrument() as san:
        apply_fault(FaultSpec("delay", 0, 0, 0.001))
        assert san.stats.injected_stalls == 1


def test_fault_crash_refused_under_sanitizer():
    with instrument():
        with pytest.raises(RuntimeError, match="refusing to inject"):
            apply_fault(FaultSpec("crash", 0, 0))


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------


def test_cli_check_self_includes_concurrency_pass(capsys):
    from repro.cli import main

    assert main(["check", "--self"]) == 0
    out = capsys.readouterr().out
    assert "conc-scan" in out  # the concurrency pass really ran


def test_cli_sanitize_run_clean(capsys):
    from repro.cli import main

    code = main([
        "-steps", "4", "-width", "4", "-type", "stencil_1d",
        "-runtime", "threads", "-workers", "2", "--sanitize",
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "Sanitizer clean" in out
    assert "METG" in out  # the never-report-sanitized-timings warning


def test_cli_sanitize_rejects_metg(capsys):
    from repro.cli import main

    code = main([
        "-steps", "4", "-width", "4", "-runtime", "threads",
        "-metg", "--sanitize",
    ])
    assert code == 2
