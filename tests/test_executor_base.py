"""Unit tests for the Executor base class contract."""

import pytest

from repro.core import DependenceType, Executor, Kernel, KernelType, TaskGraph


class CountingExecutor(Executor):
    """Minimal conforming executor for contract tests."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    @property
    def cores(self):
        return 2

    def execute_graphs(self, graphs, *, validate=True):
        from repro.runtimes._common import OutputStore, ScratchPool, run_point, task_keys

        self.calls += 1
        by_index = {g.graph_index: g for g in graphs}
        store, scratch = OutputStore(), ScratchPool(graphs)
        for gi, t, i in task_keys(graphs):
            run_point(store, scratch, by_index[gi], t, i, validate=validate)


def graph(**kw):
    base = dict(
        timesteps=4, max_width=3, dependence=DependenceType.STENCIL_1D,
        kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=2),
    )
    base.update(kw)
    return TaskGraph(**base)


class TestRunContract:
    def test_run_invokes_execute_graphs_once(self):
        ex = CountingExecutor()
        ex.run([graph()])
        assert ex.calls == 1

    def test_result_carries_executor_name_and_cores(self):
        r = CountingExecutor().run([graph()])
        assert r.executor == "counting"
        assert r.cores == 2

    def test_accounting_from_graphs(self):
        g = graph()
        r = CountingExecutor().run([g])
        assert r.total_tasks == g.total_tasks()
        assert r.total_flops == g.total_flops()

    def test_graph_index_positions_enforced(self):
        gs = [graph(graph_index=0), graph(graph_index=0)]
        with pytest.raises(ValueError, match="graph_index"):
            CountingExecutor().run(gs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CountingExecutor().run([])

    def test_validate_flag_recorded(self):
        r = CountingExecutor().run([graph()], validate=False)
        assert r.validated is False

    def test_repr(self):
        assert "counting" in repr(CountingExecutor())

    def test_elapsed_positive(self):
        r = CountingExecutor().run([graph()])
        assert r.elapsed_seconds > 0

    def test_abstract_base_unusable(self):
        with pytest.raises(TypeError):
            Executor()
