"""Differential tests for the fast path (:mod:`repro.core.fastpath`).

The fast path must be *invisible* except in speed: every compiled
dependence-table query must agree bit-exactly with the original
:class:`~repro.core.dependence.DependenceSpec` interval math, the memoized
validation patterns must equal the original cached-bytes patterns, and the
batched wire framing must deliver exactly what per-message framing would.
These tests pin that equivalence across every dependence pattern, plus the
two satellite regressions (put-time consumer counts, kernel buffer reuse).
"""

import pickle
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import wire
from repro.core import DependenceType, Kernel, KernelType, TaskGraph, fastpath
from repro.core.dependence import DependenceSpec, count_points
from repro.core.fastpath import DependenceTable, table_for
from repro.core.kernels import execute_kernel_compute, execute_kernel_compute2
from repro.core.validation import (
    ValidationError,
    _output_bytes,
    expected_inputs,
    task_output,
    validate_inputs,
    write_task_output,
)
from repro.runtimes._common import consumer_count


@pytest.fixture
def fastpath_off():
    prev = fastpath.set_enabled(False)
    yield
    fastpath.set_enabled(prev)


def _with_fastpath(flag, fn, *args, **kwargs):
    prev = fastpath.set_enabled(flag)
    try:
        return fn(*args, **kwargs)
    finally:
        fastpath.set_enabled(prev)


specs = st.builds(
    DependenceSpec,
    st.sampled_from(list(DependenceType)),
    st.integers(min_value=1, max_value=64),  # width (issue: 1-64)
    st.integers(min_value=1, max_value=10),  # height
    radix=st.integers(min_value=0, max_value=8),
    period=st.sampled_from([-1, 1, 2, 3, 4]),
    fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32),
)


def _all_points(s):
    for t in range(s.height):
        off = s.offset_at_timestep(t)
        for i in range(off, off + s.width_at_timestep(t)):
            yield t, i


class TestDependenceTableEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(specs)
    def test_intervals_match_spec(self, s):
        """Forward and reverse intervals agree with the spec at every point
        of every pattern (including random_nearest edge hashing, where the
        structure differs per timestep)."""
        table = DependenceTable(s)
        for t, i in _all_points(s):
            assert table.dependencies(t, i) == s.dependencies(t, i)
            assert table.reverse_dependencies(t, i) == s.reverse_dependencies(t, i)

    @settings(max_examples=50, deadline=None)
    @given(specs)
    def test_columns_and_counts_match_spec(self, s):
        table = DependenceTable(s)
        for t, i in _all_points(s):
            assert table.dependency_columns(t, i) == tuple(
                s.dependency_points(t, i)
            )
            assert table.reverse_dependency_columns(t, i) == tuple(
                s.reverse_dependency_points(t, i)
            )
            assert table.num_dependencies(t, i) == s.num_dependencies(t, i)
            assert table.consumer_count(t, i) == count_points(
                s.reverse_dependencies(t, i)
            )

    @settings(max_examples=30, deadline=None)
    @given(specs)
    def test_taskgraph_delegation_matches_both_modes(self, s):
        """TaskGraph's dependence API gives identical answers with the
        fast path on and off."""
        g = TaskGraph(
            timesteps=s.height,
            max_width=s.width,
            dependence=s.dtype,
            radix=s.radix,
            period=s.period,
            fraction_connected=s.fraction,
            seed=s.seed,
        )
        for t, i in _all_points(g.spec):
            for name in ("dependencies", "reverse_dependencies",
                         "num_dependencies"):
                fast = _with_fastpath(True, getattr(g, name), t, i)
                slow = _with_fastpath(False, getattr(g, name), t, i)
                assert fast == slow, (name, t, i)
            assert _with_fastpath(
                True, lambda: list(g.dependency_points(t, i))
            ) == _with_fastpath(False, lambda: list(g.dependency_points(t, i)))

    def test_out_of_range_point_raises_like_spec(self):
        s = DependenceSpec(DependenceType.TREE, 8, 4)
        table = DependenceTable(s)
        # Timestep 1 of a tree graph has width 2: column 5 exists in the
        # iteration space but not at that timestep.
        with pytest.raises(IndexError):
            table.dependencies(1, 5)
        with pytest.raises(IndexError):
            table.reverse_dependencies(1, 5)
        with pytest.raises(IndexError):
            table.dependencies(99, 0)

    def test_tables_shared_by_value(self):
        a = DependenceSpec(DependenceType.STENCIL_1D, 16, 8)
        b = DependenceSpec(DependenceType.STENCIL_1D, 16, 8)
        assert table_for(a) is table_for(b)
        c = DependenceSpec(DependenceType.STENCIL_1D, 16, 9)
        assert table_for(a) is not table_for(c)

    def test_table_pickles_to_shared_instance(self):
        g = TaskGraph(timesteps=6, max_width=8,
                      dependence=DependenceType.FFT)
        g.dependencies(3, 2)  # materialize the cached table
        clone = pickle.loads(pickle.dumps(g))
        assert clone.dependencies(3, 2) == g.dependencies(3, 2)
        # The reconstructed table is the receiving process's shared one.
        assert clone._table is table_for(g.spec)

    def test_hit_and_compile_counters_advance(self):
        s = DependenceSpec(DependenceType.STENCIL_1D, 8, 20, period=1)
        table = DependenceTable(s)
        fastpath.reset_counters()
        for t, i in _all_points(s):
            table.dependencies(t, i)
        hits, compiles = fastpath.counters()
        # One steady-state structure compiled; every later timestep hits.
        assert compiles == 1
        assert hits >= 8 * 17


class TestValidationEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=300),
        st.sampled_from([1, 5, 16, 31, 32, 33, 64, 100, 4096]),
    )
    def test_memoized_pattern_equals_cached_bytes(self, seed, gi, t, i, nbytes):
        """The stamped-template array is byte-identical to the original
        tiled-header bytes for any (seed, graph, task, size)."""
        from repro.core.validation import _expected_array

        assert (_expected_array(seed, gi, t, i, nbytes).tobytes()
                == _output_bytes(seed, gi, t, i, nbytes))

    def test_task_output_identical_in_both_modes(self):
        g = TaskGraph(timesteps=5, max_width=4,
                      dependence=DependenceType.STENCIL_1D,
                      output_bytes_per_task=40, seed=99)
        for t in range(5):
            for i in range(4):
                fast = _with_fastpath(True, task_output, g, t, i)
                slow = _with_fastpath(False, task_output, g, t, i)
                assert fast.tobytes() == slow.tobytes()
                dest_f = np.zeros(40, dtype=np.uint8)
                dest_s = np.zeros(40, dtype=np.uint8)
                _with_fastpath(True, write_task_output, g, t, i, dest_f)
                _with_fastpath(False, write_task_output, g, t, i, dest_s)
                assert dest_f.tobytes() == dest_s.tobytes() == fast.tobytes()

    def test_task_output_returns_fresh_mutable_array(self):
        g = TaskGraph(timesteps=3, max_width=2,
                      dependence=DependenceType.TRIVIAL,
                      output_bytes_per_task=16)
        a = task_output(g, 1, 0)
        a[:] = 0  # must not poison the cache
        assert task_output(g, 1, 0).tobytes() != a.tobytes()

    @pytest.mark.parametrize("bulk", [True, False])
    def test_validate_inputs_accepts_and_pinpoints(self, bulk):
        nbytes = 64 if bulk else (1 << 16)  # force bulk vs per-input path
        g = TaskGraph(timesteps=4, max_width=6,
                      dependence=DependenceType.STENCIL_1D,
                      output_bytes_per_task=nbytes)
        inputs = expected_inputs(g, 2, 3)
        validate_inputs(g, 2, 3, inputs)
        inputs[1][nbytes // 2] ^= 0xFF
        with pytest.raises(ValidationError) as exc:
            validate_inputs(g, 2, 3, inputs)
        assert "slot 1" in str(exc.value)

    def test_validate_inputs_wrong_count_and_size(self):
        g = TaskGraph(timesteps=4, max_width=6,
                      dependence=DependenceType.STENCIL_1D,
                      output_bytes_per_task=16)
        with pytest.raises(ValidationError):
            validate_inputs(g, 2, 3, expected_inputs(g, 2, 3)[:-1])
        bad = expected_inputs(g, 2, 3)
        bad[0] = np.zeros(7, dtype=np.uint8)
        with pytest.raises(ValidationError):
            validate_inputs(g, 2, 3, bad)

    def test_fast_and_slow_agree_on_stale_timestep_input(self, fastpath_off):
        """A stale buffer (right producer column, wrong timestep) is
        rejected identically by both paths."""
        g = TaskGraph(timesteps=5, max_width=4,
                      dependence=DependenceType.STENCIL_1D,
                      output_bytes_per_task=32)
        stale = expected_inputs(g, 1, 1)  # outputs of timestep 0
        with pytest.raises(ValidationError):
            validate_inputs(g, 2, 1, stale)  # slow path
        fastpath.set_enabled(True)
        with pytest.raises(ValidationError):
            validate_inputs(g, 2, 1, stale)  # fast path


class TestConsumerCountRegression:
    @settings(max_examples=40, deadline=None)
    @given(specs)
    def test_put_time_count_matches_graph_level(self, s):
        """The count used by OutputStore.put / slab acquisition (via
        ``consumer_count``) equals the graph-level reverse-dependence count
        in both modes — the PR's satellite bugfix pin."""
        g = TaskGraph(
            timesteps=s.height,
            max_width=s.width,
            dependence=s.dtype,
            radix=s.radix,
            period=s.period,
            fraction_connected=s.fraction,
            seed=s.seed,
        )
        for t, i in _all_points(g.spec):
            truth = count_points(g.spec.reverse_dependencies(t, i))
            assert _with_fastpath(True, consumer_count, g, t, i) == truth
            assert _with_fastpath(False, consumer_count, g, t, i) == truth


class TestKernelBufferReuse:
    def test_compute_kernels_do_not_allocate_per_call(self):
        """After warmup, the compute kernels run out of per-thread reusable
        buffers — no per-task ndarray allocation (satellite fix)."""
        execute_kernel_compute(4)
        execute_kernel_compute2(4)
        tracemalloc.start()
        try:
            base, _ = tracemalloc.get_traced_memory()
            for _ in range(200):
                execute_kernel_compute(4)
                execute_kernel_compute2(4)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # 400 calls x 512-byte vectors would exceed 200 KB if each call
        # allocated; reused buffers keep the loop's footprint trivial.
        assert peak - base < 16_384, f"kernel loop allocated {peak - base} B"

    def test_compute_kernel_values_unchanged(self):
        """Buffer reuse must not change the arithmetic: a = a*a + a from
        1.2345, elementwise, same as the original allocation-per-call
        form."""
        a = np.full(64, 1.2345)
        for _ in range(3):
            a = a * a + a
        assert np.array_equal(execute_kernel_compute(3), a)


class TestWireBatchFraming:
    def _payload(self, n, fill):
        return np.full(n, fill, dtype=np.uint8)

    def test_batch_roundtrip(self):
        items = [
            ((0, 3, 1), self._payload(16, 7)),
            ((0, 3, 2), self._payload(0, 0)),  # empty payload survives
            ((1, 4, 0), self._payload(33, 9)),
        ]
        header, views = wire.encode_data_batch(5, items)
        frame = bytearray(header)
        for v in views:
            frame += v
        kind, decoded = wire.decode(memoryview(bytes(frame)))
        assert kind == wire.MSG_DATA_BATCH
        assert [tag for tag, _ in decoded] == [
            (5, 0, 3, 1), (5, 0, 3, 2), (5, 1, 4, 0)
        ]
        for (_, payload), (_, original) in zip(decoded, items):
            assert np.array_equal(payload, original)

    def test_truncated_batch_rejected(self):
        header, views = wire.encode_data_batch(
            1, [((0, 0, 0), self._payload(8, 1))]
        )
        frame = bytes(header) + bytes(views[0])
        with pytest.raises(wire.WireError):
            wire.decode(memoryview(frame[:-1]))
        with pytest.raises(wire.WireError):
            wire.decode(memoryview(frame + b"x"))

    def test_counters_track_batched_payloads(self):
        c = wire.WireCounters()
        c.count_sent(100, 0.0, batched=3)
        c.count_received(100, 0.0, batched=3)
        c.count_sent(40, 0.0)  # plain DATA frame
        snap = c.snapshot()
        assert snap.messages_sent == 2
        assert snap.batched_payloads_sent == 3
        assert snap.batched_payloads_received == 3
        merged = snap.merged(snap)
        assert merged.batched_payloads_sent == 6


class TestStatsSurface:
    def test_fastpath_counters_fold_into_data_plane(self):
        """An instrumented executor's report gains the fastpath line; the
        serial executor stays 'not instrumented' (see test_cli)."""
        from repro.runtimes import make_executor

        def body():
            fastpath.reset_counters()
            ex = make_executor("threads", workers=2)
            try:
                # A seed no other test uses: the table cache is keyed by
                # spec value, so a shared shape could be compiled before
                # the reset above and leave this run with zero compiles.
                g = TaskGraph(timesteps=10, max_width=4,
                              dependence=DependenceType.STENCIL_1D,
                              output_bytes_per_task=16, seed=0xFA57)
                return ex.run([g])
            finally:
                getattr(ex, "close", lambda: None)()

        result = _with_fastpath(True, body)
        stats = result.data_plane
        assert stats is not None
        assert stats.fastpath_hits > 0
        assert stats.fastpath_compiles >= 1
        assert any("Fastpath" in line for line in stats.report_lines())


class TestModeParity:
    @pytest.mark.parametrize("runtime", ["serial", "threads", "futures"])
    def test_executors_produce_identical_results_off_and_on(self, runtime):
        """End-to-end differential: same graph, both modes, validated runs
        succeed and agree on the accounting."""
        from repro.runtimes import make_executor

        def run(flag):
            def body():
                ex = make_executor(runtime, workers=2)
                try:
                    g = TaskGraph(timesteps=8, max_width=4,
                                  dependence=DependenceType.FFT,
                                  output_bytes_per_task=24)
                    return ex.run([g], validate=True)
                finally:
                    getattr(ex, "close", lambda: None)()
            return _with_fastpath(flag, body)

        fast, slow = run(True), run(False)
        assert fast.total_tasks == slow.total_tasks
        assert fast.total_dependencies == slow.total_dependencies
